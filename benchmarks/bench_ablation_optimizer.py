"""Ablations of the optimizer's design choices (DESIGN.md §5).

1. **Predicate ordering** — selectivity-ordered evaluation vs the worst
   (reversed) order on a query with one very selective and one barely
   selective predicate; the selection vector should shrink early.
2. **Filter vs probe crossover** — sweep the dimension size and compare
   predicate-vector probing against direct AIR probing, locating the
   region where the optimizer's cache-fit decision matters.
3. **Dictionary compression** — the same dimension predicate on a
   dictionary-encoded vs a heap string column.
"""

import numpy as np
import pytest

from conftest import write_report
from repro.bench import format_table, ms
from repro.core import Database
from repro.engine import AStoreEngine, EngineOptions
from repro.plan import CacheModel

RESULTS: dict = {}


def _sized_star(dim_rows: int, fact_rows: int = 200_000,
                dict_encode: bool = True) -> Database:
    rng = np.random.default_rng(7)
    db = Database(f"sized_{dim_rows}")
    labels = [f"label_{i % 97}" for i in range(dim_rows)]
    db.create_table("dim", {
        "d_key": np.arange(dim_rows, dtype=np.int64),
        "d_label": labels,
        "d_bucket": rng.integers(0, 100, dim_rows).astype(np.int32),
    }, dict_threshold=1.0 if dict_encode else 0.0)
    db.create_table("fact", {
        "f_d": rng.integers(0, dim_rows, fact_rows),
        "f_value": rng.integers(0, 1000, fact_rows).astype(np.int64),
    })
    db.add_reference("fact", "f_d", "dim", "d_key")
    db.airify()
    return db


SELECTIVE_SQL = """
    SELECT count(*) AS n, sum(f_value) AS s FROM fact
    WHERE f_value < 10 AND f_value % 2 = 0
"""


@pytest.mark.parametrize("ordering", ["optimized", "reversed"])
def bench_predicate_ordering(benchmark, ordering):
    db = _sized_star(1000)
    engine = AStoreEngine(db)
    physical = engine.plan(SELECTIVE_SQL)
    if ordering == "reversed":
        physical.fact_conjuncts = tuple(reversed(physical.fact_conjuncts))

    benchmark.pedantic(lambda: engine.execute(physical), rounds=3,
                       iterations=1, warmup_rounds=1)
    RESULTS[("ordering", ordering)] = ms(benchmark.stats.stats.min)


DIM_SIZES = (1_000, 10_000, 100_000, 1_000_000)


@pytest.mark.parametrize("mode", ["filter", "probe"])
@pytest.mark.parametrize("dim_rows", DIM_SIZES)
def bench_filter_vs_probe(benchmark, dim_rows, mode):
    db = _sized_star(dim_rows)
    sql = ("SELECT count(*) AS n FROM fact, dim "
           "WHERE d_bucket < 30")
    if mode == "filter":
        options = EngineOptions(use_predicate_filter=True,
                                cache=CacheModel(llc_bytes=1 << 30))
    else:
        options = EngineOptions(use_predicate_filter=False)
    engine = AStoreEngine(db, options)
    result = benchmark.pedantic(lambda: engine.query(sql), rounds=3,
                                iterations=1, warmup_rounds=1)
    expected_mode = "vector" if mode == "filter" else "probe"
    assert result.stats.filter_modes == {"dim": expected_mode}
    RESULTS[("fvp", dim_rows, mode)] = ms(benchmark.stats.stats.min)


@pytest.mark.parametrize("encoding", ["dictionary", "heap"])
def bench_dictionary_compression(benchmark, encoding):
    db = _sized_star(50_000, dict_encode=(encoding == "dictionary"))
    sql = ("SELECT count(*) AS n FROM fact, dim "
           "WHERE d_label = 'label_13'")
    engine = AStoreEngine(db, EngineOptions(use_predicate_filter=False))
    benchmark.pedantic(lambda: engine.query(sql), rounds=3, iterations=1,
                       warmup_rounds=1)
    RESULTS[("dict", encoding)] = ms(benchmark.stats.stats.min)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sections = []
    if ("ordering", "optimized") in RESULTS:
        sections.append(format_table(
            "Ablation 1: predicate evaluation order",
            ["order", "ms"],
            [["selectivity-ordered", RESULTS[("ordering", "optimized")]],
             ["reversed", RESULTS[("ordering", "reversed")]]]))
    rows = []
    for dim_rows in DIM_SIZES:
        if ("fvp", dim_rows, "filter") in RESULTS:
            rows.append([dim_rows,
                         RESULTS[("fvp", dim_rows, "filter")],
                         RESULTS[("fvp", dim_rows, "probe")]])
    if rows:
        sections.append(format_table(
            "Ablation 2: predicate vector vs direct probe by dim size",
            ["dim rows", "filter ms", "probe ms"], rows))
    if ("dict", "dictionary") in RESULTS:
        sections.append(format_table(
            "Ablation 3: dictionary compression on predicate columns",
            ["encoding", "ms"],
            [["dictionary", RESULTS[("dict", "dictionary")]],
             ["string heap", RESULTS[("dict", "heap")]]]))
    text = "\n".join(sections)
    write_report("ablation_optimizer", text)
    # ordered evaluation must not lose to the reversed order
    if ("ordering", "optimized") in RESULTS:
        assert (RESULTS[("ordering", "optimized")]
                <= RESULTS[("ordering", "reversed")] * 1.1)
    # dictionary encoding must beat heap strings for predicate evaluation
    if ("dict", "dictionary") in RESULTS:
        assert RESULTS[("dict", "dictionary")] < RESULTS[("dict", "heap")]

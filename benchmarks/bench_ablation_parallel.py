"""Ablation: multicore parallelization (Section 5), backend x workers.

Sweeps every execution backend (``serial``, ``thread``, ``process``)
across worker counts on scan-heavy SSB queries (Q4.1-style: three
dimension filters, grouped profit sum) so the paper's §5 speedup curve
can be reproduced with real cores.  The ``thread`` backend serializes
the Python-level kernel glue behind the GIL; the ``process`` backend
shards the fact table over spawned workers attached to a shared-memory
column arena, so its scaling is bounded by cores, not by the GIL.

Every cell's rows are checked against the serial reference — the sweep
doubles as a cross-backend differential.  ``astore bench`` runs the same
sweep from the CLI.
"""

import os

from conftest import BENCH_SF, write_report
from repro.bench import backend_scaling_sweep, format_table, scaling_rows

BACKENDS = ("serial", "thread", "process")
WORKER_COUNTS = (1, 2, 4)
QUERY_IDS = ("Q3.1", "Q4.1")

RESULTS: dict = {}


def bench_backend_sweep(benchmark, ssb_air):
    # one sweep call spanning every backend, so check_rows compares each
    # cell against the shared serial reference (cross-backend differential)
    def sweep():
        return backend_scaling_sweep(
            backends=BACKENDS, worker_counts=WORKER_COUNTS,
            query_ids=QUERY_IDS, repeat=3, db=ssb_air, check_rows=True)

    RESULTS.update(benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = format_table(
        f"Ablation: backend x workers over {', '.join(QUERY_IDS)} "
        f"(sf={BENCH_SF}, best of 3, host cores={os.cpu_count()})",
        ["backend", "workers"] + list(QUERY_IDS)
        + ["AVG ms", "speedup vs serial"],
        scaling_rows(RESULTS))
    text += ("\nEvery cell verified row-identical to the serial reference."
             "\nProcess-backend scaling is bounded by physical cores; on a"
             f" {os.cpu_count()}-core host the sweep measures overhead, not"
             " speedup — rerun on a multi-core machine for the §5 curve.")
    write_report("ablation_parallel", text)
    # correctness is asserted inside backend_scaling_sweep (check_rows);
    # here only sanity-check that overhead stays bounded
    serial_avg = next((sum(cell.values()) / len(cell)
                       for (b, _), cell in RESULTS.items() if b == "serial"),
                      None)
    for (backend, workers), cell in RESULTS.items():
        avg = sum(cell.values()) / len(cell)
        assert avg < (serial_avg or avg) * 60, (backend, workers)

"""Ablation: multicore parallelization (Section 5).

Sweeps the worker count on a heavy SSB query (Q4.1-style: three dimension
filters, grouped profit sum) and reports scaling.  NumPy already uses the
whole machine inside single kernels, so the expected Python-level shape is
modest: no correctness drift, bounded overhead at higher worker counts,
and identical merged results (checked against the serial run).
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.bench import format_table, ms
from repro.engine import AStoreEngine, EngineOptions
from repro.workloads import SSB_QUERIES

WORKER_COUNTS = (1, 2, 4, 8)
RESULTS: dict = {}
ROWS: dict = {}

SQL = SSB_QUERIES["Q4.1"]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def bench_worker_sweep(benchmark, ssb_air, workers):
    engine = AStoreEngine(ssb_air, EngineOptions(workers=workers))
    result = benchmark.pedantic(lambda: engine.query(SQL), rounds=3,
                                iterations=1, warmup_rounds=1)
    ROWS[workers] = result.rows()
    RESULTS[workers] = ms(benchmark.stats.stats.min)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    base = RESULTS.get(1)
    for workers in WORKER_COUNTS:
        if workers not in RESULTS:
            continue
        speedup = base / RESULTS[workers] if base else float("nan")
        rows.append([workers, RESULTS[workers], speedup])
    text = format_table(
        f"Ablation: partition-parallel execution of SSB Q4.1 (sf={BENCH_SF})",
        ["workers", "ms", "speedup vs serial"], rows)
    text += ("\nNumPy kernels already release the GIL; gains are bounded by "
             "kernel-internal parallelism (see DESIGN.md substitutions)")
    write_report("ablation_parallel", text)
    # correctness: every worker count produced identical rows
    reference = ROWS.get(1)
    for workers, rows_w in ROWS.items():
        assert rows_w == reference, f"workers={workers} changed the result"
    # sanity: parallel overhead stays bounded
    if base and 8 in RESULTS:
        assert RESULTS[8] < base * 3

"""Fig. 10 — per-stage breakdown for the column-wise query processors.

For AIRScan_C, AIRScan_C_P and AIRScan_C_P_G, each SSB query's execution
time is split into the paper's three stages: (1) leaf-table processing
(predicate + group vectors), (2) fact scan / Measure Index generation,
(3) measure-column aggregation.  Expected shape: the leaf stage is a small
fraction; array aggregation (C_P_G) shrinks the aggregation stage by close
to an order of magnitude versus the hash-aggregating variants.
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.bench import format_table, ms
from repro.engine import AStoreEngine
from repro.workloads import SSB_QUERIES

VARIANTS3 = ("AIRScan_C", "AIRScan_C_P", "AIRScan_C_P_G")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def engine_map(ssb_air):
    return {name: AStoreEngine.variant(ssb_air, name).query
            for name in VARIANTS3}


@pytest.mark.parametrize("variant", ("AIRScan_C_P", "AIRScan_C_P_G"))
def bench_aggregation_stage_full_scan(benchmark, engine_map, variant):
    """Array vs hash aggregation with 100% selectivity (99 groups).

    The SSB queries are highly selective, so at bench scale their
    aggregation stages are tiny; this unselective grouping query isolates
    the paper's array-vs-hash contrast directly.
    """
    from repro.workloads import GROUPING_QUERY

    run = engine_map[variant]
    result = benchmark.pedantic(lambda: run(GROUPING_QUERY), rounds=3,
                                iterations=1, warmup_rounds=1)
    RESULTS[("fullscan-agg", variant)] = ms(result.stats.aggregation_seconds)


@pytest.mark.parametrize("variant", VARIANTS3)
@pytest.mark.parametrize("query_id", list(SSB_QUERIES))
def bench_stage_breakdown(benchmark, engine_map, variant, query_id):
    run = engine_map[variant]
    sql = SSB_QUERIES[query_id]
    result = benchmark.pedantic(lambda: run(sql), rounds=3, iterations=1,
                                warmup_rounds=1)
    stats = result.stats
    RESULTS[(query_id, variant)] = (
        ms(stats.leaf_seconds), ms(stats.scan_seconds),
        ms(stats.aggregation_seconds))


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["variant", "leaf ms", "scan ms", "aggregation ms", "total ms"]
    rows = []
    totals = {}
    for variant in VARIANTS3:
        stages = [RESULTS[(q, variant)] for q in SSB_QUERIES
                  if (q, variant) in RESULTS]
        if not stages:
            continue
        n = len(stages)
        leaf = sum(s[0] for s in stages) / n
        scan = sum(s[1] for s in stages) / n
        agg = sum(s[2] for s in stages) / n
        totals[variant] = (leaf, scan, agg)
        rows.append([variant, leaf, scan, agg, leaf + scan + agg])
    text = format_table(
        f"Fig. 10: average stage breakdown across SSB (sf={BENCH_SF})",
        headers, rows)
    hash_agg = RESULTS.get(("fullscan-agg", "AIRScan_C_P"))
    array_agg = RESULTS.get(("fullscan-agg", "AIRScan_C_P_G"))
    if hash_agg is not None and array_agg is not None:
        text += (f"\nfull-scan grouping (99 groups): hash agg "
                 f"{hash_agg:.2f} ms vs array agg {array_agg:.2f} ms "
                 f"({hash_agg / array_agg:.1f}x)")
    write_report("fig10_breakdown", text)
    if hash_agg is not None and array_agg is not None:
        # array aggregation beats hash aggregation clearly when the
        # selection is wide (the paper's near-order-of-magnitude gap)
        assert array_agg < hash_agg
    if "AIRScan_C_P_G" in totals:
        # leaf processing is a small fraction of the total
        leaf, scan, agg = totals["AIRScan_C_P_G"]
        assert leaf < 0.5 * (leaf + scan + agg)

"""Fig. 1 — denormalization versus normal MMDBs on SSB (average times).

The motivating experiment: each engine's SSB average, normalized and
denormalized, plus hand-coded denormalization and A-Store (virtual
denormalization).  Expected shape: ``*_D`` variants beat their normalized
engines (except the MonetDB-like baseline, whose full-column predicate
passes dominate on the wide table); A-Store lands next to hand-coded
denormalization at the front.
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.bench import format_ratio_note, format_table, ms
from repro.engine import AStoreEngine
from repro.workloads import SSB_QUERIES, denormalize_query

BARS = ("MonetDB-like", "MonetDB-like_D", "Vectorwise-like",
        "Vectorwise-like_D", "Hyper-like", "Hyper-like_D",
        "Denormalization", "A-Store")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def engine_map(ssb_air, ssb_raw, ssb_wide, denorm_engine):
    return {
        "MonetDB-like": lambda q: MaterializingEngine(ssb_raw).query(
            SSB_QUERIES[q]),
        "MonetDB-like_D": lambda q: MaterializingEngine(ssb_wide).query(
            denormalize_query(q, ssb_air)),
        "Vectorwise-like": lambda q: VectorizedPipelineEngine(ssb_raw).query(
            SSB_QUERIES[q]),
        "Vectorwise-like_D": lambda q: VectorizedPipelineEngine(
            ssb_wide).query(denormalize_query(q, ssb_air)),
        "Hyper-like": lambda q: FusedEngine(ssb_raw).query(SSB_QUERIES[q]),
        "Hyper-like_D": lambda q: FusedEngine(ssb_wide).query(
            denormalize_query(q, ssb_air)),
        "Denormalization": lambda q: denorm_engine.query(SSB_QUERIES[q]),
        "A-Store": lambda q: AStoreEngine(ssb_air).query(SSB_QUERIES[q]),
    }


@pytest.mark.parametrize("bar", BARS)
def bench_ssb_average(benchmark, engine_map, bar):
    run = engine_map[bar]

    def sweep():
        for query_id in SSB_QUERIES:
            run(query_id)

    benchmark.pedantic(sweep, rounds=2, iterations=1, warmup_rounds=1)
    RESULTS[bar] = ms(benchmark.stats.stats.min) / len(SSB_QUERIES)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[bar, RESULTS.get(bar, float("nan"))] for bar in BARS]
    text = format_table(
        f"Fig. 1: SSB average per engine (sf={BENCH_SF})",
        ["engine", "avg ms/query"], rows)
    notes = []
    for engine in ("Vectorwise-like", "Hyper-like"):
        if engine in RESULTS and f"{engine}_D" in RESULTS:
            notes.append(format_ratio_note(
                f"{engine}_D", RESULTS[f"{engine}_D"],
                engine, RESULTS[engine]))
    if "A-Store" in RESULTS and "Denormalization" in RESULTS:
        notes.append(format_ratio_note(
            "A-Store", RESULTS["A-Store"],
            "Denormalization", RESULTS["Denormalization"]))
    text += "\n" + "\n".join(notes)
    write_report("fig1_denorm_effect", text)
    # shape: denormalization helps the pipelining engines
    assert RESULTS["Hyper-like_D"] < RESULTS["Hyper-like"] * 1.1
    assert RESULTS["Vectorwise-like_D"] < RESULTS["Vectorwise-like"] * 1.1
    # and A-Store sits near the hand-coded denormalized front-runner
    assert RESULTS["A-Store"] < min(
        RESULTS["MonetDB-like"], RESULTS["Vectorwise-like"],
        RESULTS["Hyper-like"])

"""Fig. 8 — FK–PK column joins on SSB and TPC-H across systems/algorithms.

The paper's join queries are all of the form ``select count(*) from A, B
where A.fk = B.pk``.  We run them through the engines (A-Store with AIR;
the MonetDB/Vectorwise/Hyper-like baselines with hash joins) and, for the
raw-algorithm comparison, directly through NPO / PRO / sort-merge on the
extracted key columns.  Expected shape: AIR-based A-Store at or near the
top on every join, with the largest margins on large dimensions.
"""

import numpy as np
import pytest

from conftest import BENCH_SF, write_report
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.bench import format_table, ns_per_tuple
from repro.datagen import generate_tpch
from repro.engine import AStoreEngine
from repro.joins import npo_hash_join, pro_hash_join, sort_merge_join
from repro.workloads import fkpk_join_query

SSB_JOIN_CASES = [
    ("lineorder-date", "lineorder", "lo_orderdate", "date", "d_datekey"),
    ("lineorder-supplier", "lineorder", "lo_suppkey", "supplier", "s_suppkey"),
    ("lineorder-part", "lineorder", "lo_partkey", "part", "p_partkey"),
    ("lineorder-customer", "lineorder", "lo_custkey", "customer", "c_custkey"),
]
TPCH_JOIN_CASES = [
    ("lineitem-supplier", "lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("lineitem-part", "lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem-orders", "lineitem", "l_orderkey", "orders", "o_orderkey"),
]

ENGINES = ("A-Store", "MonetDB-like", "Vectorwise-like", "Hyper-like")
ALGORITHMS = ("NPO", "PRO", "SortMerge")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def tpch_air():
    return generate_tpch(sf=BENCH_SF, seed=42, airify=True)


@pytest.fixture(scope="module")
def tpch_raw():
    return generate_tpch(sf=BENCH_SF, seed=42, airify=False)


def _engine_for(name, air_db, raw_db):
    if name == "A-Store":
        return AStoreEngine(air_db).query
    if name == "MonetDB-like":
        return MaterializingEngine(raw_db).query
    if name == "Vectorwise-like":
        return VectorizedPipelineEngine(raw_db).query
    return FusedEngine(raw_db).query


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize(
    "case", SSB_JOIN_CASES + TPCH_JOIN_CASES, ids=lambda c: c[0])
def bench_engine_join(benchmark, case, engine_name, ssb_air, ssb_raw,
                      tpch_air, tpch_raw):
    name, fact, fk, dim, pk = case
    is_ssb = fact == "lineorder"
    air_db = ssb_air if is_ssb else tpch_air
    raw_db = ssb_raw if is_ssb else tpch_raw
    run = _engine_for(engine_name, air_db, raw_db)
    sql = fkpk_join_query(fact, fk, dim, pk)
    result = benchmark.pedantic(lambda: run(sql), rounds=3, iterations=1,
                                warmup_rounds=1)
    nrows = air_db.table(fact).num_rows
    assert result.scalar() == nrows
    RESULTS[(name, engine_name)] = ns_per_tuple(
        benchmark.stats.stats.min, nrows)


@pytest.mark.parametrize("algo", ALGORITHMS)
@pytest.mark.parametrize(
    "case", SSB_JOIN_CASES + TPCH_JOIN_CASES, ids=lambda c: c[0])
def bench_raw_algorithm(benchmark, case, algo, ssb_raw, tpch_raw):
    name, fact, fk, dim, pk = case
    raw_db = ssb_raw if fact == "lineorder" else tpch_raw
    fact_keys = np.asarray(raw_db.table(fact)[fk].values(), np.int64)
    dim_keys = np.asarray(raw_db.table(dim)[pk].values(), np.int64)
    fn = {
        "NPO": lambda: npo_hash_join(fact_keys, dim_keys),
        "PRO": lambda: pro_hash_join(fact_keys, dim_keys),
        "SortMerge": lambda: sort_merge_join(fact_keys, dim_keys),
    }[algo]
    result = benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
    assert result.matches == len(fact_keys)
    RESULTS[(name, algo)] = ns_per_tuple(
        benchmark.stats.stats.min, len(fact_keys))


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    columns = list(ENGINES) + list(ALGORITHMS)
    headers = ["join"] + [f"{c} ns/t" for c in columns]
    rows = []
    astore_wins = 0
    for case in SSB_JOIN_CASES + TPCH_JOIN_CASES:
        name = case[0]
        row = [name] + [RESULTS.get((name, c), float("nan")) for c in columns]
        rows.append(row)
        times = {c: RESULTS.get((name, c)) for c in columns}
        if times["A-Store"] is not None:
            others = [v for k, v in times.items()
                      if k != "A-Store" and v is not None]
            if others and times["A-Store"] <= min(others) * 1.15:
                astore_wins += 1
    text = format_table(
        f"Fig. 8: FK-PK column joins, SSB+TPC-H (sf={BENCH_SF})",
        headers, rows)
    text += (f"\nA-Store (AIR) at/near the top in {astore_wins}/"
             f"{len(rows)} joins")
    write_report("fig8_fkpk_joins", text)

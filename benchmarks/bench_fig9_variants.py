"""Fig. 9 — the five AIRScan variants (Table 6) across all SSB queries.

AIRScan_R (row-wise) → +predicate vectors (R_P) → column-wise selection
vectors (C) → +predicate vectors (C_P) → +array aggregation (C_P_G).
Expected shape: average time strictly improves along that sequence, with
column-wise scan the largest single step (the paper: 752.68 → 675.49 →
513.40 → 322.61 ms).
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.bench import format_table, ms
from repro.engine import AStoreEngine, VARIANTS
from repro.workloads import SSB_QUERIES

RESULTS: dict = {}
VARIANT_ORDER = ("AIRScan_R", "AIRScan_R_P", "AIRScan_C", "AIRScan_C_P",
                 "AIRScan_C_P_G")


@pytest.fixture(scope="module")
def engine_map(ssb_air):
    return {name: AStoreEngine.variant(ssb_air, name).query
            for name in VARIANTS}


@pytest.mark.parametrize("variant", VARIANT_ORDER)
@pytest.mark.parametrize("query_id", list(SSB_QUERIES))
def bench_variant_query(benchmark, engine_map, variant, query_id):
    run = engine_map[variant]
    sql = SSB_QUERIES[query_id]
    benchmark.pedantic(lambda: run(sql), rounds=2, iterations=1,
                       warmup_rounds=1)
    RESULTS[(query_id, variant)] = ms(benchmark.stats.stats.min)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["query"] + [f"{v} ms" for v in VARIANT_ORDER]
    rows = []
    for query_id in SSB_QUERIES:
        if (query_id, VARIANT_ORDER[0]) not in RESULTS:
            continue
        rows.append([query_id] + [RESULTS.get((query_id, v), float("nan"))
                                  for v in VARIANT_ORDER])
    if not rows:
        return
    avgs = {v: sum(RESULTS[(q, v)] for q in SSB_QUERIES
                   if (q, v) in RESULTS) / 13 for v in VARIANT_ORDER}
    rows.append(["AVG"] + [avgs[v] for v in VARIANT_ORDER])
    text = format_table(
        f"Fig. 9: AIRScan variants on SSB (sf={BENCH_SF}); paper AVG ms: "
        "R=752.7, R_P=675.5, C_P=513.4, C_P_G=322.6",
        headers, rows)
    write_report("fig9_variants", text)
    # shape: every optimization step helps on average
    assert avgs["AIRScan_C_P_G"] <= avgs["AIRScan_C_P"] * 1.05
    assert avgs["AIRScan_C_P"] <= avgs["AIRScan_C"] * 1.05
    assert avgs["AIRScan_C_P_G"] < avgs["AIRScan_R"]

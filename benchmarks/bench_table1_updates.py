"""Table 1 — update mechanisms: append, deletion vector + slot reuse,
in-place update, consolidation.

The paper's Table 1 is qualitative; this bench quantifies each mechanism
on A-Store's storage: append-insert throughput, lazy deletion, insertion
into reused slots, in-place updates, consolidation (including the AIR
rewrite that makes it expensive), and the overhead a pinned MVCC snapshot
adds to a query.  Expected shape: appends/deletes/updates are cheap and
O(batch); consolidation is the expensive maintenance operation.
"""

import numpy as np
import pytest

from conftest import BENCH_SF, write_report
from repro.bench import format_table, ns_per_tuple
from repro.datagen import generate_ssb
from repro.engine import AStoreEngine
from repro.updates import TransactionManager

BATCH = 10_000
RESULTS: dict = {}


def fresh_db():
    return generate_ssb(sf=max(0.005, BENCH_SF / 2), seed=7, airify=True)


def sample_rows(db, n):
    lineorder = db.table("lineorder")
    positions = np.arange(n) % lineorder.num_rows
    return {name: list(col.take(positions))
            for name, col in lineorder.columns.items()}


def bench_append_insert(benchmark):
    db = fresh_db()
    rows = sample_rows(db, BATCH)

    def run():
        db.table("lineorder").insert(rows)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    RESULTS["append insert"] = ns_per_tuple(benchmark.stats.stats.min, BATCH)


def bench_lazy_delete(benchmark):
    db = fresh_db()
    state = {"next": 0}

    def run():
        start = state["next"]
        db.table("lineorder").delete(np.arange(start, start + BATCH))
        state["next"] = start + BATCH

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    RESULTS["lazy delete"] = ns_per_tuple(benchmark.stats.stats.min, BATCH)


def bench_slot_reuse_insert(benchmark):
    db = fresh_db()
    rows = sample_rows(db, BATCH)
    lineorder = db.table("lineorder")

    def setup():
        lineorder.delete(np.arange(BATCH))
        return (), {}

    def run():
        positions = lineorder.insert(rows)
        assert positions.max() < BATCH  # all reused, no growth

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    RESULTS["slot-reuse insert"] = ns_per_tuple(
        benchmark.stats.stats.min, BATCH)


def bench_in_place_update(benchmark):
    db = fresh_db()
    positions = np.arange(BATCH)
    values = np.arange(BATCH, dtype=np.int64)

    def run():
        db.table("lineorder").update(positions, {"lo_revenue": values})

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    RESULTS["in-place update"] = ns_per_tuple(benchmark.stats.stats.min, BATCH)


def bench_consolidation_with_air_rewrite(benchmark):
    def setup():
        db = generate_ssb(sf=max(0.005, BENCH_SF / 2), seed=7, airify=True)
        customer = db.table("customer")
        # delete customers nobody references any more: repoint every fact
        # row at customer 0, free the rest
        lineorder = db.table("lineorder")
        lineorder.update(
            np.arange(lineorder.num_rows),
            {"lo_custkey": np.zeros(lineorder.num_rows, dtype=np.int64)})
        customer.delete(np.arange(1, customer.num_rows))
        return (db,), {}

    def run(db):
        db.consolidate("customer")

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    db = fresh_db()
    RESULTS["consolidation"] = ns_per_tuple(
        benchmark.stats.stats.min, db.table("lineorder").num_rows)


def bench_snapshot_query_overhead(benchmark):
    db = generate_ssb(sf=max(0.005, BENCH_SF / 2), seed=7, airify=True)
    # rebuild lineorder with MVCC enabled
    from repro.core import Table

    lineorder = db.table("lineorder")
    data = {name: col.values() for name, col in lineorder.columns.items()}
    mvcc_table = Table.from_arrays("lineorder_mvcc", data, mvcc=True)
    db.tables["lineorder"] = mvcc_table
    mvcc_table.name = "lineorder"
    txn = TransactionManager(db)
    snapshot = txn.snapshot()
    engine = AStoreEngine(db)
    sql = "SELECT sum(lo_revenue) AS s FROM lineorder"

    def run():
        engine.query(sql, snapshot=snapshot)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    RESULTS["snapshot query"] = ns_per_tuple(
        benchmark.stats.stats.min, mvcc_table.num_rows)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    order = ["append insert", "lazy delete", "slot-reuse insert",
             "in-place update", "consolidation", "snapshot query"]
    rows = [[op, RESULTS[op]] for op in order if op in RESULTS]
    text = format_table(
        "Table 1: update mechanism costs (A-Store storage model)",
        ["operation", "ns/tuple"], rows)
    text += ("\nconsolidation is the expensive maintenance path (AIR "
             "rewrite of every referencing column), as in the paper; its "
             "ns/tuple is per *referencing fact row*, i.e. it touches the "
             "whole fact table to compact one small dimension")
    write_report("table1_updates", text)
    # consolidating a dimension costs more per referencing tuple than an
    # in-place write, because every AIR reference must be rewritten
    if "consolidation" in RESULTS and "in-place update" in RESULTS:
        assert RESULTS["consolidation"] > RESULTS["in-place update"]

"""Table 2 — AIR vs NPO vs PRO hash join (cycles/tuple → ns/tuple).

Reproduces the paper's join microbenchmark: the 19 PK–FK joins from SSB,
TPC-H, TPC-DS plus workloads A/B of [7], at ``REPRO_BENCH_JOIN_SCALE`` of
the paper's SF=100 cardinalities.  Expected shape: AIR fastest everywhere;
NPO beats PRO on small dimensions and degrades as the dimension (and its
hash table) grows; PRO stays roughly flat.
"""

import pytest

from conftest import JOIN_SCALE, write_report
from repro.bench import format_table, ns_per_tuple
from repro.joins import air_join, npo_hash_join, pro_hash_join
from repro.workloads import TABLE2_JOINS, generate_join_inputs

ALGORITHMS = ("NPO", "PRO", "AIR")
RESULTS: dict = {}

_case_ids = [c.name for c in TABLE2_JOINS]


def _join_fn(algo, data):
    if algo == "AIR":
        return lambda: air_join(data["fact_refs"], len(data["dim_keys"]))
    if algo == "NPO":
        return lambda: npo_hash_join(data["fact_keys"], data["dim_keys"])
    return lambda: pro_hash_join(data["fact_keys"], data["dim_keys"])


@pytest.mark.parametrize("algo", ALGORITHMS)
@pytest.mark.parametrize("case", TABLE2_JOINS, ids=_case_ids)
def bench_join(benchmark, case, algo):
    data = generate_join_inputs(case, scale=JOIN_SCALE)
    fn = _join_fn(algo, data)
    result = benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
    assert result.matches == len(data["fact_keys"])  # FK integrity holds
    RESULTS[(case.name, algo)] = ns_per_tuple(
        benchmark.stats.stats.min, len(data["fact_keys"]))


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["join", "benchmark", "fact(paper)", "dim(paper)",
               "NPO ns/t", "PRO ns/t", "AIR ns/t"]
    rows = []
    air_wins = 0
    measured = 0
    for case in TABLE2_JOINS:
        values = [RESULTS.get((case.name, algo)) for algo in ALGORITHMS]
        if any(v is None for v in values):
            continue
        measured += 1
        npo, pro, air = values
        if air <= npo and air <= pro:
            air_wins += 1
        rows.append([case.name, case.benchmark, case.fact_rows,
                     case.dim_rows, npo, pro, air])
    text = format_table(
        f"Table 2: AIR vs NPO vs PRO (scale={JOIN_SCALE} of SF=100)",
        headers, rows)
    text += f"\nAIR fastest in {air_wins}/{measured} joins (paper: 19/19)"
    write_report("table2_air_vs_hash", text)
    # the headline claim: AIR wins (nearly) everywhere
    assert air_wins >= int(0.8 * measured)

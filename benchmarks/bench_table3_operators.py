"""Table 3 — key OLAP operators in SSB.

Three operator families, each across A-Store and the three baseline
engines:

* predicate processing at combined selectivities (1/2)^4 … (1/16)^4;
* grouping & aggregation (``group by lo_discount, lo_tax`` — 99 groups);
* star-join forms of Q1.1–Q4.3 (count(*), no GROUP BY).

Expected shape: A-Store ≈ Hyper-like on predicate processing (both use a
short-circuiting selection vector), clearly ahead of the MonetDB-like
full-materialization engine; A-Store ahead on grouping thanks to array
aggregation; A-Store ahead on most star-joins, with pipelining engines
competitive on the most selective queries.
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.bench import format_table, ms
from repro.engine import AStoreEngine
from repro.workloads import (
    GROUPING_QUERY,
    PREDICATE_SELECTIVITIES,
    SSB_QUERIES,
    predicate_workload,
    star_join_query,
)

ENGINES = ("A-Store", "Hyper-like", "Vectorwise-like", "MonetDB-like")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def engine_map(ssb_air, ssb_raw):
    return {
        "A-Store": AStoreEngine(ssb_air).query,
        "Hyper-like": FusedEngine(ssb_raw).query,
        "Vectorwise-like": VectorizedPipelineEngine(ssb_raw).query,
        "MonetDB-like": MaterializingEngine(ssb_raw).query,
    }


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("k", PREDICATE_SELECTIVITIES)
def bench_predicate_processing(benchmark, engine_map, engine_name, k):
    run = engine_map[engine_name]
    sql = predicate_workload(k)
    benchmark.pedantic(lambda: run(sql), rounds=3, iterations=1,
                       warmup_rounds=1)
    RESULTS[(f"(1/{k})^4", engine_name)] = ms(benchmark.stats.stats.min)


@pytest.mark.parametrize("engine_name", ENGINES)
def bench_grouping_aggregate(benchmark, engine_map, engine_name):
    run = engine_map[engine_name]
    result = benchmark.pedantic(lambda: run(GROUPING_QUERY), rounds=3,
                                iterations=1, warmup_rounds=1)
    assert len(result) == 99
    RESULTS[("Grouping&Aggregate", engine_name)] = ms(
        benchmark.stats.stats.min)


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("query_id", list(SSB_QUERIES))
def bench_star_join(benchmark, engine_map, engine_name, query_id):
    run = engine_map[engine_name]
    stmt = star_join_query(query_id)
    benchmark.pedantic(lambda: run(stmt), rounds=3, iterations=1,
                       warmup_rounds=1)
    RESULTS[(f"star {query_id}", engine_name)] = ms(benchmark.stats.stats.min)


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["operator"] + [f"{e} ms" for e in ENGINES]
    row_keys = ([f"(1/{k})^4" for k in PREDICATE_SELECTIVITIES]
                + ["Grouping&Aggregate"]
                + [f"star {qid}" for qid in SSB_QUERIES])
    rows = []
    for key in row_keys:
        if (key, ENGINES[0]) not in RESULTS:
            continue
        rows.append([key] + [RESULTS.get((key, e), float("nan"))
                             for e in ENGINES])
    star_rows = [r for r in rows if str(r[0]).startswith("star")]
    if star_rows:
        avg = ["star AVG"] + [
            sum(r[i] for r in star_rows) / len(star_rows)
            for i in range(1, len(ENGINES) + 1)]
        rows.append(avg)
    text = format_table(
        f"Table 3: key OLAP operators in SSB (sf={BENCH_SF})", headers, rows)
    write_report("table3_operators", text)
    # shape: A-Store beats the MonetDB-like engine on predicate processing
    for k in PREDICATE_SELECTIVITIES:
        key = f"(1/{k})^4"
        if (key, "A-Store") in RESULTS and (key, "MonetDB-like") in RESULTS:
            assert RESULTS[(key, "A-Store")] < RESULTS[(key, "MonetDB-like")]

"""Table 4 — predicate processing and grouping&aggregation on the
denormalized (universal) table, per baseline engine.

The 13 SSB queries are rewritten for the materialized universal table and
run through the MonetDB-like, Vectorwise-like, and Hyper-like engines;
each engine's stage timers provide the paper's two-column breakdown.

Expected shape: the Hyper-like engine leads predicate processing (fused
short-circuit scan), the MonetDB-like engine trails badly on both stages
(full-column bitmaps over the wide table + sort-based grouping over every
selected row).
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.bench import format_table, ms
from repro.workloads import SSB_QUERIES, denormalize_query

ENGINES = ("MonetDB-like", "Vectorwise-like", "Hyper-like")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def engine_map(ssb_wide):
    return {
        "MonetDB-like": MaterializingEngine(ssb_wide).query,
        "Vectorwise-like": VectorizedPipelineEngine(ssb_wide).query,
        "Hyper-like": FusedEngine(ssb_wide).query,
    }


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("query_id", list(SSB_QUERIES))
def bench_denormalized_query(benchmark, engine_map, ssb_air, engine_name,
                             query_id):
    run = engine_map[engine_name]
    stmt = denormalize_query(query_id, ssb_air)
    result = benchmark.pedantic(lambda: run(stmt), rounds=3, iterations=1,
                                warmup_rounds=1)
    stats = result.stats
    RESULTS[(query_id, engine_name)] = (
        ms(stats.leaf_seconds + stats.scan_seconds),
        ms(stats.aggregation_seconds),
    )


def bench_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = (["query"]
               + [f"{e} pred ms" for e in ENGINES]
               + [f"{e} group&agg ms" for e in ENGINES])
    rows = []
    for query_id in SSB_QUERIES:
        if (query_id, ENGINES[0]) not in RESULTS:
            continue
        pred = [RESULTS[(query_id, e)][0] for e in ENGINES]
        agg = [RESULTS[(query_id, e)][1] for e in ENGINES]
        rows.append([query_id] + pred + agg)
    if rows:
        n = len(rows)
        avg = ["AVG"] + [sum(r[i] for r in rows) / n
                         for i in range(1, 2 * len(ENGINES) + 1)]
        rows.append(avg)
    text = format_table(
        f"Table 4: denormalized-table stage breakdown (sf={BENCH_SF})",
        headers, rows)
    write_report("table4_denorm_breakdown", text)
    # shape: MonetDB-like predicate processing is the slowest on average
    if rows:
        avg_row = rows[-1]
        assert avg_row[1] >= max(avg_row[2], avg_row[3]) * 0.8

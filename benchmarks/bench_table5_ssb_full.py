"""Table 5 — full SSB across every engine and its denormalized variant.

Engine line-up, mirroring the paper's columns:

* ``MonetDB-like_D`` / ``Vectorwise-like_D`` / ``Hyper-like_D`` — the
  baseline executors over the materialized universal table;
* ``MonetDB-like`` / ``Vectorwise-like`` / ``Hyper-like`` — the same
  executors over the normalized star schema (hash joins);
* ``A-Store`` — AIRScan_C_P_G over the AIR-loaded star schema (virtual
  denormalization);
* ``Denormalization`` — the hand-coded comparison point: A-Store's scan
  machinery over the real universal table.

Also reports the memory-footprint ratio (the paper: 262 GB vs 46 GB).
Expected shape: A-Store faster than all baselines, within ~2x of real
denormalization, at a fraction of the memory.
"""

import pytest

from conftest import BENCH_SF, write_report
from repro.baselines import (
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from repro.bench import format_table, ms
from repro.engine import AStoreEngine
from repro.workloads import SSB_QUERIES, denormalize_query

ENGINES = ("MonetDB-like_D", "MonetDB-like", "Vectorwise-like_D",
           "Vectorwise-like", "Hyper-like_D", "Hyper-like", "A-Store",
           "Denormalization")
RESULTS: dict = {}


@pytest.fixture(scope="module")
def engine_map(ssb_air, ssb_raw, ssb_wide, denorm_engine):
    def wide_runner(engine):
        def run(query_id):
            return engine.query(denormalize_query(query_id, ssb_air))
        return run

    def normal_runner(engine):
        def run(query_id):
            return engine.query(SSB_QUERIES[query_id])
        return run

    return {
        "MonetDB-like_D": wide_runner(MaterializingEngine(ssb_wide)),
        "MonetDB-like": normal_runner(MaterializingEngine(ssb_raw)),
        "Vectorwise-like_D": wide_runner(VectorizedPipelineEngine(ssb_wide)),
        "Vectorwise-like": normal_runner(VectorizedPipelineEngine(ssb_raw)),
        "Hyper-like_D": wide_runner(FusedEngine(ssb_wide)),
        "Hyper-like": normal_runner(FusedEngine(ssb_raw)),
        "A-Store": normal_runner(AStoreEngine(ssb_air)),
        "Denormalization": lambda qid: denorm_engine.query(SSB_QUERIES[qid]),
    }


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("query_id", list(SSB_QUERIES))
def bench_ssb_query(benchmark, engine_map, engine_name, query_id):
    run = engine_map[engine_name]
    benchmark.pedantic(lambda: run(query_id), rounds=2, iterations=1,
                       warmup_rounds=1)
    RESULTS[(query_id, engine_name)] = ms(benchmark.stats.stats.min)


def bench_zz_report(benchmark, ssb_air, ssb_wide):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["query"] + [f"{e} ms" for e in ENGINES]
    rows = []
    for query_id in SSB_QUERIES:
        if (query_id, ENGINES[0]) not in RESULTS:
            continue
        rows.append([query_id] + [RESULTS.get((query_id, e), float("nan"))
                                  for e in ENGINES])
    if not rows:
        return
    avgs = {e: sum(RESULTS[(q, e)] for q in SSB_QUERIES
                   if (q, e) in RESULTS) / 13 for e in ENGINES}
    rows.append(["AVG"] + [avgs[e] for e in ENGINES])
    text = format_table(
        f"Table 5: full SSB, all engines (sf={BENCH_SF})", headers, rows)
    ratio = ssb_wide.nbytes / ssb_air.nbytes
    text += (f"\nmemory: universal table {ssb_wide.nbytes / 1e6:.1f} MB vs "
             f"A-Store {ssb_air.nbytes / 1e6:.1f} MB "
             f"({ratio:.2f}x; paper: 262.08 GB vs 45.82 GB = 5.7x)")
    write_report("table5_ssb_full", text)
    # headline shapes: A-Store beats every normalized baseline on average,
    # and virtual denormalization is within 2x of real denormalization.
    assert avgs["A-Store"] < avgs["MonetDB-like"]
    assert avgs["A-Store"] < avgs["Vectorwise-like"]
    assert avgs["A-Store"] < avgs["Hyper-like"]
    assert avgs["A-Store"] < 2.5 * avgs["Denormalization"]

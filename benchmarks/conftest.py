"""Shared fixtures for the experiment benchmarks.

Scale is controlled by ``REPRO_BENCH_SF`` (SSB scale factor, default 0.02
≈ 120k fact rows) and ``REPRO_BENCH_JOIN_SCALE`` (fraction of the paper's
Table 2 cardinalities, default 1e-3).  Every bench module both feeds
pytest-benchmark and writes a paper-style summary table to
``benchmarks/results/<experiment>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.baselines import DenormalizedEngine, materialize_universal
from repro.datagen import generate_ssb

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.02"))
JOIN_SCALE = float(os.environ.get("REPRO_BENCH_JOIN_SCALE", "1e-3"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_sf():
    return BENCH_SF


@pytest.fixture(scope="session")
def ssb_air():
    """AIR-loaded SSB at benchmark scale (A-Store engines)."""
    return generate_ssb(sf=BENCH_SF, seed=42, airify=True)


@pytest.fixture(scope="session")
def ssb_raw():
    """Key-valued SSB at benchmark scale (baseline engines)."""
    return generate_ssb(sf=BENCH_SF, seed=42, airify=False)


@pytest.fixture(scope="session")
def ssb_wide(ssb_air):
    """The materialized universal table (the ``*_D`` substrate)."""
    return materialize_universal(ssb_air)


@pytest.fixture(scope="session")
def denorm_engine(ssb_air):
    return DenormalizedEngine(ssb_air)


def write_report(name: str, text: str) -> None:
    """Print a summary table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)


@pytest.fixture(scope="session")
def report_writer():
    """The report sink shared by all bench modules."""
    return write_report

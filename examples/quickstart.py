"""Quickstart: build a small star schema, load it with AIR, run queries.

Run:  python examples/quickstart.py
"""

from repro import AStoreEngine, Database


def build_database() -> Database:
    """A small sales star schema defined by hand."""
    db = Database("shop")

    db.create_table("products", {
        "p_id": [1, 2, 3, 4],
        "p_name": ["laptop", "phone", "tablet", "monitor"],
        "p_class": ["computing", "mobile", "mobile", "peripherals"],
    }, dict_threshold=1.0)

    db.create_table("stores", {
        "s_id": [10, 20, 30],
        "s_city": ["Berlin", "Paris", "Berlin"],
    }, dict_threshold=1.0)

    db.create_table("sales", {
        "sale_id": list(range(1, 13)),
        "product_id": [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        "store_id": [10, 10, 20, 20, 30, 30, 10, 20, 30, 10, 20, 30],
        "amount": [1200, 800, 450, 300, 1150, 820, 480, 280, 1250, 790,
                   430, 310],
        "quantity": [1, 2, 1, 3, 1, 1, 2, 1, 1, 2, 1, 2],
    })

    # Declare the foreign keys; airify() turns them into array index
    # references — after this, joins are positional lookups.
    db.add_reference("sales", "product_id", "products", "p_id")
    db.add_reference("sales", "store_id", "stores", "s_id")
    db.airify()
    return db


def main() -> None:
    db = build_database()
    engine = AStoreEngine(db)

    print("== revenue by product class and city ==")
    result = engine.query("""
        SELECT p_class, s_city, sum(amount) AS revenue, count(*) AS n
        FROM sales, products, stores
        WHERE product_id = p_id AND store_id = s_id
        GROUP BY p_class, s_city
        ORDER BY revenue DESC
    """)
    for row in result.to_dicts():
        print(f"  {row}")

    print("\n== the optimizer's plan for that query ==")
    print(engine.explain("""
        SELECT p_class, sum(amount) AS revenue
        FROM sales, products, stores
        WHERE product_id = p_id AND store_id = s_id
          AND s_city = 'Berlin'
        GROUP BY p_class
    """))

    print("\n== execution statistics ==")
    result = engine.query("""
        SELECT p_class, sum(amount) AS revenue FROM sales, products, stores
        WHERE s_city = 'Berlin' GROUP BY p_class ORDER BY revenue DESC
    """)
    stats = result.stats
    print(f"  scanned {stats.rows_scanned} fact rows, "
          f"selected {stats.rows_selected}, "
          f"{stats.groups} groups, "
          f"array aggregation: {stats.used_array_aggregation}")
    for row in result.rows():
        print(f"  {row}")


if __name__ == "__main__":
    main()

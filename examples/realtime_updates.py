"""Real-time analytics: concurrent-style updates with MVCC snapshots
(Section 4.4 of the paper).

A writer inserts/deletes/updates lineorder rows while analytical queries
pin snapshots; lazy deletion, slot reuse, and consolidation are all
demonstrated on a live database.

Run:  python examples/realtime_updates.py
"""

import numpy as np

from repro import AStoreEngine, Database
from repro.updates import TransactionManager, WriteBatch


def build_database() -> Database:
    db = Database("realtime")
    db.create_table("sensors", {
        "sensor_id": [0, 1, 2],
        "location": ["hall-A", "hall-B", "hall-A"],
    }, dict_threshold=1.0, mvcc=True)
    db.create_table("readings", {
        "reading_id": list(range(9)),
        "sensor": [0, 1, 2, 0, 1, 2, 0, 1, 2],
        "value": [10.0, 20.0, 30.0, 11.0, 21.0, 31.0, 12.0, 22.0, 32.0],
    }, mvcc=True)
    db.add_reference("readings", "sensor", "sensors", "sensor_id")
    db.airify()
    return db


SQL = ("SELECT location, sum(value) AS total, count(*) AS n "
       "FROM readings, sensors GROUP BY location ORDER BY location")


def show(engine, label, snapshot=None):
    result = engine.query(SQL, snapshot=snapshot)
    print(f"  {label}:")
    for row in result.to_dicts():
        print(f"    {row}")


def main() -> None:
    db = build_database()
    engine = AStoreEngine(db)
    txn = TransactionManager(db)

    print("== initial state ==")
    show(engine, "live")

    # An analyst pins a snapshot; a writer keeps changing the data.
    analyst_snapshot = txn.snapshot()
    print(f"\nanalyst pinned snapshot v{analyst_snapshot}")

    print("\n== writer: batch of inserts and a delete ==")
    with WriteBatch(txn) as batch:
        batch.insert("readings", {
            "reading_id": [100, 101],
            "sensor": [0, 1],
            "value": [99.0, 88.0],
        })
        batch.delete("readings", [0])
    show(engine, "live after batch")
    show(engine, f"analyst snapshot v{analyst_snapshot} (unchanged)",
         snapshot=analyst_snapshot)

    print("\n== writer: in-place correction of a mis-read value ==")
    txn.update("readings", [4], {"value": [210.0]})
    show(engine, "live after in-place update")

    print("\n== lazy deletion and slot reuse ==")
    lineorder = db.table("readings")
    print(f"  physical rows before churn: {lineorder.num_rows}")
    txn.release(analyst_snapshot)  # unpin so slots can be recycled
    txn.delete("readings", [1, 2])
    positions = txn.insert("readings", {
        "reading_id": [200], "sensor": [2], "value": [55.0]})
    print(f"  reinserted into slot {positions.tolist()} "
          f"(physical rows now: {lineorder.num_rows})")

    print("\n== consolidation (the expensive maintenance path) ==")
    live_before = lineorder.num_live
    txn.consolidate("readings")
    print(f"  compacted to {lineorder.num_rows} rows "
          f"(live before: {live_before}); AIR references rewritten")
    show(engine, "live after consolidation")


if __name__ == "__main__":
    main()

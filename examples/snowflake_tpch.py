"""Snowflake-schema analytics on the TPC-H subset (the paper's Fig. 3).

Demonstrates reference-path chains: predicates on ``region`` fold through
``nation → customer → orders`` onto a single first-level predicate filter,
and the scan follows ``lineitem → orders → … → region`` with positional
lookups only.

Run:  python examples/snowflake_tpch.py [scale_factor]
"""

import sys

from repro import AStoreEngine, generate_tpch

PAPER_Q3 = """
    SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
    FROM customer, lineitem, orders, nation, region
    WHERE o_custkey = c_custkey
      AND l_orderkey = o_orderkey
      AND c_nationkey = n_nationkey
      AND n_regionkey = r_regionkey
      AND r_name = 'ASIA'
      AND o_price >= 800
    GROUP BY n_name
    ORDER BY revenue DESC
"""


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"generating TPC-H subset at sf={sf}...")
    db = generate_tpch(sf=sf, seed=42)
    engine = AStoreEngine(db)

    print("\n== reference paths from the fact table ==")
    for path in db.reference_paths("lineitem"):
        print(f"  {path}")

    print("\n== the paper's Q3 adaptation (Fig. 3) ==")
    print(engine.explain(PAPER_Q3))

    result = engine.query(PAPER_Q3)
    print(f"\nresults ({len(result)} nations):")
    for row in result.to_dicts():
        print(f"  {row['n_name']:<12} revenue={row['revenue']:,.2f}")

    stats = result.stats
    print(f"\nscanned {stats.rows_scanned:,} lineitem rows, "
          f"selected {stats.rows_selected:,} "
          f"({100 * stats.selectivity:.2f}%) in "
          f"{stats.total_seconds * 1e3:.2f} ms")

    print("\n== deep grouping: revenue by region through the whole chain ==")
    result = engine.query("""
        SELECT r_name, count(*) AS lineitems,
               sum(l_extendedprice) AS gross
        FROM lineitem, orders, customer, nation, region
        GROUP BY r_name ORDER BY gross DESC
    """)
    for row in result.to_dicts():
        print(f"  {row['r_name']:<12} lineitems={row['lineitems']:>8,} "
              f"gross={row['gross']:,.0f}")


if __name__ == "__main__":
    main()

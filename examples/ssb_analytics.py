"""Star Schema Benchmark analytics: run the paper's 13 SSB queries and
compare A-Store against a conventional hash-join engine.

Run:  python examples/ssb_analytics.py [scale_factor]
"""

import sys

from repro import AStoreEngine, generate_ssb
from repro.baselines import FusedEngine
from repro.bench import best_of, format_table, ms
from repro.workloads import SSB_QUERIES


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"generating SSB at sf={sf} "
          f"(~{int(6_000_000 * sf):,} lineorder rows)...")
    air_db = generate_ssb(sf=sf, seed=42, airify=True)
    raw_db = generate_ssb(sf=sf, seed=42, airify=False)

    astore = AStoreEngine(air_db)
    baseline = FusedEngine(raw_db)

    rows = []
    for query_id, sql in SSB_QUERIES.items():
        t_astore, result = best_of(lambda: astore.query(sql), repeat=3)
        t_baseline, check = best_of(lambda: baseline.query(sql), repeat=3)
        assert result.rows() == check.rows(), f"{query_id}: engines disagree"
        rows.append([query_id, len(result), ms(t_astore), ms(t_baseline),
                     t_baseline / t_astore])

    avg_a = sum(r[2] for r in rows) / len(rows)
    avg_b = sum(r[3] for r in rows) / len(rows)
    rows.append(["AVG", "", avg_a, avg_b, avg_b / avg_a])
    print(format_table(
        "SSB: A-Store (virtual denormalization) vs hash-join engine",
        ["query", "groups", "A-Store ms", "hash-join ms", "speedup"],
        rows))

    print("\nsample output of Q3.1 (top 5 rows):")
    result = astore.query(SSB_QUERIES["Q3.1"])
    for row in result.to_dicts()[:5]:
        print(f"  {row}")


if __name__ == "__main__":
    main()

"""A-Store: virtual denormalization via array index reference for
main-memory OLAP — a full reproduction of Zhang et al. (ICDE/TKDE 2016).

Quickstart::

    from repro import AStoreEngine, generate_ssb

    db = generate_ssb(sf=0.01)          # seeded SSB data, AIR-loaded
    engine = AStoreEngine(db)
    result = engine.query(
        "SELECT d_year, sum(lo_revenue) AS revenue "
        "FROM lineorder, date WHERE lo_orderdate = d_datekey "
        "AND d_year >= 1993 GROUP BY d_year ORDER BY d_year"
    )
    for row in result.to_dicts():
        print(row)
"""

from .core import (
    AIRColumn,
    Bitmap,
    Column,
    Database,
    DataType,
    DictColumn,
    Dictionary,
    FixedColumn,
    Reference,
    SelectionVector,
    StringColumn,
    Table,
)
from .core.statistics import collect_statistics, validate_references
from .datagen import generate_ssb, generate_tpcds, generate_tpch
from .io import dump_csv, load_csv, load_database, save_database
from .engine import AStoreEngine, EngineOptions, ExecutionStats, QueryResult, VARIANTS
from .errors import (
    AStoreError,
    BindError,
    ExecutionError,
    ParseError,
    PlanError,
    SchemaError,
    StorageError,
    UpdateError,
)
from .plan import CacheModel, LogicalPlan, PhysicalPlan, bind, optimize
from .sqlparser import parse

__version__ = "1.0.0"

__all__ = [
    "AIRColumn", "AStoreEngine", "AStoreError", "bind", "BindError",
    "Bitmap", "CacheModel", "Column", "Database", "DataType", "DictColumn",
    "Dictionary", "EngineOptions", "ExecutionError", "ExecutionStats",
    "FixedColumn", "generate_ssb", "generate_tpcds", "generate_tpch",
    "load_csv", "load_database", "LogicalPlan", "optimize", "parse", "ParseError", "PhysicalPlan",
    "PlanError", "QueryResult", "Reference", "SchemaError",
    "save_database", "SelectionVector", "StorageError", "StringColumn", "Table",
    "UpdateError", "validate_references", "VARIANTS",
]

"""Static invariant analysis (``astore lint``).

Nine PRs of engine growth rest on conventions that, until now, lived
only in docs/architecture.md and review memory: registry state is only
touched under its declared lock (PR 5 fixed three races born from
violating this), everything reachable from a portable bound plan must
pickle (PR 2), every data mutation bumps the ``(table,
mutation_count)`` stamps (PRs 3/6/8), every network I/O path passes a
chaos site (PR 8), and ``async def`` bodies never block the event loop
(PR 5).  This package turns those conventions into machine-checked
rules over Python's ``ast``:

* :mod:`~repro.analysis.loader` — source loading: parse trees with
  parent links, a ``with``-context tracker, ``# astore: ...`` marker
  comments, and the ``GUARDED_BY`` declarations the lock checker reads;
* :mod:`~repro.analysis.model` — the :class:`Finding` model and the
  committed :class:`Baseline`;
* :mod:`~repro.analysis.framework` — the :class:`Checker` protocol and
  :func:`run_lint`;
* :mod:`~repro.analysis.checkers` — the five project rules:
  ``lock-discipline``, ``plan-portability``, ``stamp-protocol``,
  ``chaos-coverage``, ``async-hygiene``.

Suppress a single finding with a trailing ``# astore: ignore[rule-id]``
comment; declare a function that runs with a lock already held with
``# astore: holds[lock-expr]`` on its ``def`` line.  Findings that
predate the analyzer live in ``analysis/baseline.json`` (rewritten via
``astore lint --baseline``); CI fails on any finding outside it.
"""

from .framework import (
    LintReport,
    default_baseline_path,
    default_root,
    explain_rule,
    rule_ids,
    run_lint,
)
from .model import Baseline, Finding

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "default_baseline_path",
    "default_root",
    "explain_rule",
    "rule_ids",
    "run_lint",
]

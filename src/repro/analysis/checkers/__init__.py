"""The five project invariant checkers."""

from typing import List

from ..framework import Checker
from .async_hygiene import AsyncHygieneChecker
from .chaos import ChaosCoverageChecker
from .locks import LockDisciplineChecker
from .portability import PlanPortabilityChecker
from .stamps import StampProtocolChecker


def all_checkers() -> List[Checker]:
    return [
        LockDisciplineChecker(),
        PlanPortabilityChecker(),
        StampProtocolChecker(),
        ChaosCoverageChecker(),
        AsyncHygieneChecker(),
    ]

"""async-hygiene: no blocking calls inside ``async def`` bodies."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..framework import Checker
from ..loader import ModuleSource, Project
from ..model import Finding

# module-qualified blocking calls: (root name, attr or None for any)
_BLOCKED_QUALIFIED = {
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("os", "system"),
    ("os", "waitpid"),
    ("socket", "create_connection"),
    ("fcntl", None),
    ("select", "select"),
}

# blocking methods on arbitrary objects (sockets, pipes, futures)
_BLOCKED_METHOD_ATTRS = {
    "recv",
    "recvfrom",
    "recv_into",
    "sendall",
    "sendto",
    "accept",
    "connect",
}

_SYNC_SCOPES = (ast.FunctionDef, ast.Lambda)


class AsyncHygieneChecker(Checker):
    rule_id = "async-hygiene"
    title = "async def bodies never block the event loop"
    contract = """
    One event loop multiplexes every connected client (AsyncEngine,
    astore serve); a single blocking call inside an `async def` —
    time.sleep, a raw socket recv/sendall/connect/accept,
    subprocess.run, an fcntl wait, select.select — stalls all of them
    for its full duration.  Blocking work belongs behind
    run_in_executor, asyncio primitives (asyncio.sleep, open_connection),
    or a sync helper invoked from a worker thread.  Nested synchronous
    `def` and lambdas inside an async function are not checked: they
    run wherever they are later called.
    """
    prevents = """
    PR 5's serving layer is single-loop by design; the three races it
    fixed were found exactly because the loop must never stall.  A
    blocking call in an async handler reintroduces the head-of-line
    blocking the morsel/async split exists to avoid.
    """
    example_bad = """
    async def _respond(self, payload):
        time.sleep(0.05)          # stalls every connected client
        return self.engine.run(payload)
    """
    example_fix = """
    async def _respond(self, payload):
        await asyncio.sleep(0.05)
        return await loop.run_in_executor(None, self.engine.run, payload)
    """

    def check(self, module: ModuleSource, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: ModuleSource, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in _async_scope_calls(func):
            why = _blocking_reason(call)
            if why is not None:
                yield self.finding(
                    module,
                    call.lineno,
                    f"blocking call {why} inside async function "
                    f"{func.name!r} stalls the event loop for every "
                    f"connected client; use the asyncio equivalent or "
                    f"run_in_executor",
                    symbol=func.name,
                )


def _async_scope_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically in *func*'s own async scope: nested sync defs,
    lambdas, and nested async defs (checked separately) are skipped."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SYNC_SCOPES + (ast.AsyncFunctionDef,)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        root = _root_name(func)
        for mod, attr in _BLOCKED_QUALIFIED:
            if root == mod and (attr is None or func.attr == attr):
                return f"{root}.{func.attr}"
        if func.attr in _BLOCKED_METHOD_ATTRS and root not in ("self", "asyncio"):
            return f".{func.attr}() (raw socket/pipe I/O)"
    return None


def _root_name(node: ast.Attribute) -> Optional[str]:
    cur: ast.AST = node
    while isinstance(cur, ast.Attribute):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id
    return None

"""chaos-coverage: every network I/O path passes a chaos site."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..framework import Checker
from ..loader import FUNC_NODES, ModuleSource, Project, ancestors
from ..model import Finding

# Modules forming the network surface the chaos harness must dominate.
_TARGET_BASENAMES = {"distributed.py", "membership.py", "serve.py", "fleet.py"}

# Raw I/O operations (socket / pipe / fd-handoff) that must only be
# reachable through chaos-covered code.
_RAW_METHOD_ATTRS = {
    "send",
    "sendall",
    "sendto",
    "recv",
    "recvfrom",
    "recv_into",
    "connect",
    "connect_ex",
    "send_handle",
    "recv_handle",
}
_RAW_FUNC_NAMES = {"create_connection"}

_CHAOS_CALLS = {"chaos_point", "chaos_point_async"}


class ChaosCoverageChecker(Checker):
    rule_id = "chaos-coverage"
    title = "network I/O is dominated by a chaos_point site"
    contract = """
    The deterministic chaos harness (ASTORE_CHAOS=kill|delay|drop|
    corrupt|error|flap@site) can only exercise failure paths that pass
    through a chaos_point()/chaos_point_async() call.  In the network
    modules (engine/distributed.py, membership.py, serve.py, fleet.py
    — or any module declaring CHAOS_SCOPE = True), every raw socket /
    pipe / fd-handoff operation (send*/recv*/connect/create_connection/
    send_handle/recv_handle) must sit in a function that contains a
    chaos site or calls a chaos-bearing helper, or be reachable only
    through callers that are covered.  Frame helpers taking a `site`
    parameter (send_frame/recv_frame) only extend coverage to call
    sites that actually pass one — a site-less frame call is
    statically chaos-bearing but dynamically dead.
    """
    prevents = """
    PR 8's harness pins every distributed failure path in tests; a raw
    I/O call outside a chaos site silently shrinks that coverage — the
    path exists in production but no test can inject its failure.
    PR 10's analyzer found the membership join/refresh client socket
    and the fleet fd-handoff path uncovered, which is why the
    membership.request and fleet.handoff sites exist.
    """
    example_bad = """
    def _membership_request(address, message):
        with socket.create_connection(address) as sock:   # no site
            send_frame(sock, message)                     # site-less
            return recv_frame(sock)
    """
    example_fix = """
    def _membership_request(address, message):
        chaos_point("membership.request", payload=message)
        with socket.create_connection(address) as sock:
            send_frame(sock, message)
            return recv_frame(sock)
    """

    def check(self, module: ModuleSource, project: Project) -> Iterator[Finding]:
        if not self._applies(module):
            return
        graph = _FunctionGraph(module)
        covered = graph.covered_functions()
        for func_id, info in graph.functions.items():
            if func_id in covered:
                continue
            for node, op in info.raw_ops:
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw I/O operation {op!r} in {info.qualname!r} is not "
                    f"dominated by a chaos_point site (neither this function "
                    f"nor all of its callers have one); add a site or route "
                    f"through a covered helper so the chaos harness can "
                    f"reach this path",
                    symbol=info.qualname,
                )
        for node, op in graph.module_level_raw_ops:
            yield self.finding(
                module,
                node.lineno,
                f"raw I/O operation {op!r} at module level can never be "
                f"chaos-covered; move it into a function with a chaos_point",
                symbol=op,
            )

    @staticmethod
    def _applies(module: ModuleSource) -> bool:
        basename = module.relpath.rsplit("/", 1)[-1]
        if basename in _TARGET_BASENAMES and "analysis/" not in module.relpath:
            return True
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "CHAOS_SCOPE":
                        return bool(isinstance(node.value, ast.Constant) and node.value.value)
        return False


class _FuncInfo:
    __slots__ = ("node", "qualname", "has_chaos", "site_param", "raw_ops", "callers")

    def __init__(self, node: ast.AST, qualname: str):
        self.node = node
        self.qualname = qualname
        self.has_chaos = False
        self.site_param = False
        self.raw_ops: List[Tuple[ast.AST, str]] = []
        self.callers: Set[int] = set()


class _FunctionGraph:
    """Name-based caller graph over one module's functions.

    An edge ``G -> F`` exists when G's body mentions F's name (a call,
    a Thread target, an add_reader callback, ...) or when F is
    lexically nested inside G (the closure runs on G's behalf).  A
    function is *covered* when it contains a chaos site, calls a
    chaos-bearing helper (passing a site, if the helper takes one), or
    has callers that are all covered — domination, not reachability.
    """

    def __init__(self, module: ModuleSource):
        self.module = module
        self.functions: Dict[int, _FuncInfo] = {}
        self.by_name: Dict[str, List[int]] = {}
        self.module_level_raw_ops: List[Tuple[ast.AST, str]] = []
        self._collect()
        self._link()

    def _collect(self) -> None:
        for node in ast.walk(self.module.tree):
            if isinstance(node, FUNC_NODES):
                info = _FuncInfo(node, self._qualname(node))
                info.site_param = "site" in {
                    arg.arg for arg in node.args.args + node.args.kwonlyargs
                }
                self.functions[id(node)] = info
                self.by_name.setdefault(node.name, []).append(id(node))
        for node in ast.walk(self.module.tree):
            owner = self._owner(node)
            if isinstance(node, ast.Call) and _call_name(node) in _CHAOS_CALLS:
                if owner is not None:
                    self.functions[id(owner)].has_chaos = True
            op = _raw_op(node)
            if op is not None:
                if owner is None:
                    self.module_level_raw_ops.append((node, op))
                else:
                    self.functions[id(owner)].raw_ops.append((node, op))

    def _link(self) -> None:
        for func_id, info in self.functions.items():
            owner = self._owner(info.node)
            if owner is not None:
                info.callers.add(id(owner))
        for func_id, info in self.functions.items():
            for node in ast.walk(info.node):
                if node is info.node:
                    continue
                name = _mention_name(node)
                if name is None or name == getattr(info.node, "name", None):
                    continue
                for callee_id in self.by_name.get(name, []):
                    self.functions[callee_id].callers.add(func_id)

    def covered_functions(self) -> Set[int]:
        covered: Set[int] = set()
        for func_id, info in self.functions.items():
            if info.has_chaos or self._calls_covering_helper(info):
                covered.add(func_id)
        changed = True
        while changed:
            changed = False
            for func_id, info in self.functions.items():
                if func_id in covered:
                    continue
                if info.callers and all(c in covered for c in info.callers):
                    covered.add(func_id)
                    changed = True
        return covered

    def _calls_covering_helper(self, info: _FuncInfo) -> bool:
        """True when *info* calls a chaos-bearing helper such that the
        helper's site actually fires on this path."""
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            for callee_id in self.by_name.get(name, []):
                callee = self.functions[callee_id]
                if not callee.has_chaos:
                    continue
                if callee.site_param and not _call_has_site_arg(node, callee):
                    continue
                return True
        return False

    def _owner(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in ancestors(node):
            if isinstance(anc, FUNC_NODES):
                return anc
        return None

    def _qualname(self, node: ast.AST) -> str:
        parts = [getattr(node, "name", "<anon>")]
        for anc in ancestors(node):
            if isinstance(anc, (ast.ClassDef,) + FUNC_NODES):
                parts.append(anc.name)
        return ".".join(reversed(parts))


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mention_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_has_site_arg(node: ast.Call, info: _FuncInfo) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "site":
            return True
    positional = [arg.arg for arg in info.node.args.args]
    if "site" in positional and len(node.args) > positional.index("site"):
        return True
    return False


def _raw_op(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _RAW_METHOD_ATTRS:
        return func.attr
    name = _call_name(node)
    if name in _RAW_FUNC_NAMES:
        return name
    return None

"""lock-discipline: guarded state is only touched under its lock."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..framework import Checker
from ..loader import (
    ModuleSource,
    Project,
    enclosing_class,
    enclosing_function,
    held_context_exprs,
    in_branch_test,
)
from ..model import Finding

_CONSTRUCTORS = ("__init__", "__new__")


class LockDisciplineChecker(Checker):
    rule_id = "lock-discipline"
    title = "state declared in GUARDED_BY is only touched under its lock"
    contract = """
    A module declares its shared mutable state in a module-level
    GUARDED_BY dict mapping names ("_SHARED_BACKENDS" for globals,
    "QueryCache._tiers" for instance attributes) to the lock expression
    that guards them ("_REGISTRY_LOCK", "self._lock").  Every read or
    write of a declared name must be lexically inside `with <lock>:` —
    or inside a function whose def line carries `# astore:
    holds[<lock>]`, documenting that its callers already hold it.
    Accesses in the test of an if/while are additionally labelled
    check-then-act, the race shape where the decision goes stale the
    moment the lock-free check completes.  `self.<attr>` writes inside
    __init__/__new__ are exempt: the object is not yet published.
    """
    prevents = """
    PR 5 fixed three latent races of exactly this class (result-tier
    aliasing, scratch-buffer aliasing under asyncio, shard-backend
    lifecycle races); PR 10's analyzer caught two more (an unlocked
    check-then-act on the cache registry and a duplicate-link race in
    the remote backend's membership refresh).
    """
    example_bad = """
    GUARDED_BY = {"_CACHES": "_CACHES_LOCK"}

    def query_cache_for(db):
        cache = _CACHES.get(db)       # unguarded check ...
        if cache is None:
            cache = _CACHES[db] = QueryCache()   # ... then act
        return cache
    """
    example_fix = """
    def query_cache_for(db):
        with _CACHES_LOCK:
            cache = _CACHES.get(db)
            if cache is None:
                cache = _CACHES[db] = QueryCache()
            return cache
    """

    def check(self, module: ModuleSource, project: Project) -> Iterator[Finding]:
        bare: Dict[str, str] = dict(project.global_guarded)
        attr: Dict[str, str] = {}
        for key, lock in module.guarded_by.items():
            if "." in key:
                attr[key.split(".", 1)[1]] = lock
            else:
                bare[key] = lock
        if not bare and not attr:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and node.id in bare:
                yield from self._check_access(module, node, node.id, bare[node.id], base=None)
            elif isinstance(node, ast.Attribute):
                base = _unparse(node.value)
                if node.attr in attr:
                    yield from self._check_access(
                        module,
                        node,
                        f"{base}.{node.attr}",
                        attr[node.attr],
                        base=base,
                    )
                elif node.attr in bare and isinstance(node.value, (ast.Name, ast.Attribute)):
                    # qualified cross-module access, e.g. _sharding._SHARED_BACKENDS
                    yield from self._check_access(
                        module, node, f"{base}.{node.attr}", bare[node.attr], base=base
                    )

    def _check_access(
        self,
        module: ModuleSource,
        node: ast.AST,
        symbol: str,
        lock: str,
        base: Optional[str],
    ) -> Iterator[Finding]:
        func = enclosing_function(node)
        if func is None:
            return  # module-level initialisation runs single-threaded at import
        if (
            base == "self"
            and func.name in _CONSTRUCTORS
            and enclosing_class(func) is not None
        ):
            return  # the object under construction is not yet published
        if _held(lock, base, held_context_exprs(node, module)):
            return
        message = f"{symbol} is declared guarded by {lock!r} but is accessed outside it"
        if in_branch_test(node):
            message += " (check-then-act: a decision is taken on unguarded state)"
        yield self.finding(module, node.lineno, message, symbol=symbol)


def _held(lock: str, base: Optional[str], held: Set[str]) -> bool:
    if lock.startswith("self."):
        attr = lock[len("self.") :]
        owner = base if base else "self"
        return f"{owner}.{attr}" in held or lock in held
    return any(expr == lock or expr.endswith("." + lock) for expr in held)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"

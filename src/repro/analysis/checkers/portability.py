"""plan-portability: portable plan classes stay picklable."""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..framework import Checker
from ..loader import FUNC_NODES, ModuleSource, Project
from ..model import Finding

# Type names that are runtime handles: annotating a portable field with
# one of these means the object cannot cross a pickle boundary.
_BLOCKED_TYPE_NAMES = {
    "Callable",
    "socket",
    "Thread",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Popen",
    "Process",
    "Queue",
    "Pipe",
    "Connection",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "Future",
    "IO",
    "TextIO",
    "BinaryIO",
    "TextIOWrapper",
    "BufferedReader",
    "BufferedWriter",
    "FileIO",
    "StreamReader",
    "StreamWriter",
    "AbstractEventLoop",
}

# Modules whose members are runtime state; storing anything produced by
# them on a portable instance breaks pickling.
_BLOCKED_MODULES = {
    "threading",
    "socket",
    "subprocess",
    "multiprocessing",
    "asyncio",
    "selectors",
    "fcntl",
    "queue",
    "weakref",
    "contextvars",
}


class PlanPortabilityChecker(Checker):
    rule_id = "plan-portability"
    title = "classes marked __portable__ must not reach unpicklable state"
    contract = """
    A class carrying `__portable__ = True` (BoundQuery, OpSpec,
    LeafFilterSpec, the bound-expression tree, ...) crosses process and
    node boundaries by pickle.  Its annotated fields may only reference
    portable classes, builtins/typing/numpy shapes — never runtime
    handles (Callable, Thread, Lock, socket, file objects) or project
    classes not themselves marked portable.  Methods of a portable
    class may not store lambdas, locally defined closures, or values
    produced by threading/socket/subprocess/asyncio/weakref on self.
    Fields popped in __getstate__ are exempt: they are runtime-only by
    declaration and never serialized.
    """
    prevents = """
    PR 2's contract that queries compile to picklable BoundQuery
    artifacts is what lets PR 6's fleet and PR 8's remote nodes ship
    plans instead of SQL; one stray lambda on a spec breaks every
    backend beyond serial at once.
    """
    example_bad = """
    class LeafFilterSpec:
        __portable__ = True
        predicate: Callable[[np.ndarray], np.ndarray]   # runtime handle
    """
    example_fix = """
    class LeafFilterSpec:
        __portable__ = True
        predicate: BoundExpression   # data, rebuilt into a callable on arrival
    """

    def check(self, module: ModuleSource, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in project.portable:
                yield from self._check_class(module, project, node)

    def _check_class(
        self, module: ModuleSource, project: Project, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        exempt = _getstate_popped(cls)
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if name in exempt:
                    continue
                for bad, why in _bad_type_names(stmt.annotation, project):
                    yield self.finding(
                        module,
                        stmt.lineno,
                        f"portable class {cls.name} field {name!r} is annotated "
                        f"with {bad!r} ({why}); mark {bad} __portable__ or pop "
                        f"the field in __getstate__",
                        symbol=f"{cls.name}.{name}",
                    )
        for func in cls.body:
            if not isinstance(func, FUNC_NODES):
                continue
            local_defs = {
                sub.name
                for sub in ast.walk(func)
                if isinstance(sub, FUNC_NODES) and sub is not func
            }
            for sub in ast.walk(func):
                value = None
                targets: List[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    if getattr(sub, "value", None) is None:
                        continue
                    targets, value = [sub.target], sub.value
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if target.attr in exempt:
                        continue
                    for why, bad_line in _bad_values(value, local_defs):
                        yield self.finding(
                            module,
                            bad_line,
                            f"portable class {cls.name} stores {why} on "
                            f"self.{target.attr}; portable instances must "
                            f"hold only picklable data (or pop the field in "
                            f"__getstate__)",
                            symbol=f"{cls.name}.{target.attr}",
                        )

    def explain_extra(self) -> str:  # pragma: no cover - doc helper
        return ", ".join(sorted(_BLOCKED_MODULES))


def _getstate_popped(cls: ast.ClassDef) -> Set[str]:
    """Field names removed from state in __getstate__ (runtime-only)."""
    popped: Set[str] = set()
    for func in cls.body:
        if isinstance(func, FUNC_NODES) and func.name == "__getstate__":
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                ):
                    popped.add(str(node.args[0].value))
    return popped


def _bad_type_names(
    annotation: ast.expr, project: Project,
) -> Iterator[Tuple[str, str]]:
    for name in _annotation_names(annotation):
        if name in _BLOCKED_TYPE_NAMES:
            yield name, "a runtime handle that cannot pickle"
        elif name in project.class_index and name not in project.portable:
            yield name, "a project class not marked __portable__"


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    stack: List[ast.expr] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # forward reference: "BoundExpression"
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                yield node.value
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id
            elif isinstance(sub, ast.Attribute):
                yield sub.attr
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if sub is not node:
                    stack.append(sub)


def _bad_values(value: ast.expr, local_defs: Set[str]) -> Iterator[Tuple[str, int]]:
    for node in ast.walk(value):
        if isinstance(node, ast.Lambda):
            yield "a lambda", node.lineno
        elif isinstance(node, ast.Name) and node.id in local_defs:
            yield f"the locally defined closure {node.id!r}", node.lineno
        elif isinstance(node, ast.Name) and node.id in _BLOCKED_MODULES:
            yield f"state produced by the {node.id!r} module", node.lineno
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            yield "an open file handle", node.lineno

"""stamp-protocol: mutation buffers change only via stamped entry points."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import Checker
from ..loader import ModuleSource, Project, enclosing_function
from ..model import Finding

# The per-table mutation state every cache/arena/fleet freshness check
# hangs off.  _mutation_count is itself a buffer: nobody outside the
# consecrated modules may forge a stamp either.
BUFFER_ATTRS = {
    "_deleted",
    "_free_slots",
    "_insert_version",
    "_delete_version",
    "_nrows",
    "_mutation_count",
}

# Method calls that mutate a buffer in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "fill",
    "sort",
    "resize",
    "add",
    "update",
    "discard",
}

# Files whose job is mutating these buffers; inside them the rule flips
# to "every public entry point that writes buffers must bump the stamp".
_CONSECRATED_BASENAMES = {"table.py", "compaction.py"}

_EXEMPT_DECORATORS = {"classmethod", "staticmethod", "property"}


class StampProtocolChecker(Checker):
    rule_id = "stamp-protocol"
    title = "mutation buffers change only via entry points that bump the stamp"
    contract = """
    Every freshness decision in the system — the QueryCache tiers, the
    shared-memory fleet store, arena revalidation, remote StampLane
    fencing — compares (table, mutation_count) stamps.  The deletion /
    free-slot / MVCC-version / row-count buffers (and the stamp itself)
    may therefore only be written inside the consecrated mutation
    modules (core/table.py, core/compaction.py); and within those, any
    public entry point that writes a buffer must also bump
    _mutation_count before returning.  A write that skips the bump
    serves stale answers fleet-wide; a write outside the entry points
    bypasses MVCC versioning entirely.
    """
    prevents = """
    The stamp protocol is load-bearing since PR 3 (QueryCache), and
    doubly so since PR 6 (cross-process shared store) and PR 8 (remote
    stamp fencing).  PR 10's analyzer caught Table.add_column mutating
    row bookkeeping without a bump — a schema change every cache tier
    would have ignored.
    """
    example_bad = """
    def add_column(self, name, column):        # in core/table.py
        self.columns[name] = column
        self._nrows = len(column)              # buffer write, no bump
    """
    example_fix = """
    def add_column(self, name, column):
        self.columns[name] = column
        self._nrows = len(column)
        self._mutation_count += 1
    """

    def check(self, module: ModuleSource, project: Project) -> Iterator[Finding]:
        basename = module.relpath.rsplit("/", 1)[-1]
        if basename in _CONSECRATED_BASENAMES:
            yield from self._check_entry_points(module)
        else:
            yield from self._check_foreign_writes(module)

    def _check_foreign_writes(self, module: ModuleSource) -> Iterator[Finding]:
        for node, attr in _buffer_writes(module.tree):
            yield self.finding(
                module,
                node.lineno,
                f"direct write to mutation buffer {attr!r} outside the "
                f"consecrated entry points (core/table.py, "
                f"core/compaction.py); route this through a Table mutation "
                f"method so the stamp protocol sees it",
                symbol=attr,
            )

    def _check_entry_points(self, module: ModuleSource) -> Iterator[Finding]:
        for func, writes in _writes_by_function(module.tree):
            if func is None:
                continue  # module-level statements
            if not _is_public_entry_point(func):
                continue
            written = sorted({attr for _, attr in writes})
            if written == ["_mutation_count"]:
                continue  # the bump itself
            if _bumps_stamp(func):
                continue
            yield self.finding(
                module,
                func.lineno,
                f"mutation entry point {func.name!r} writes "
                f"{', '.join(written)} but never bumps _mutation_count; "
                f"every cache tier and remote stamp fence will miss this "
                f"mutation",
                symbol=func.name,
            )


def _buffer_writes(tree: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in BUFFER_ATTRS
            ):
                yield node, func.value.attr
            continue
        for target in targets:
            attr = _buffer_target(target)
            if attr is not None:
                yield node, attr


def _buffer_target(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Attribute) and target.attr in BUFFER_ATTRS:
        return target.attr
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute) and value.attr in BUFFER_ATTRS:
            return value.attr
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            attr = _buffer_target(element)
            if attr is not None:
                return attr
    return None


def _writes_by_function(
    tree: ast.AST,
) -> Iterator[Tuple[Optional[ast.AST], List[Tuple[ast.AST, str]]]]:
    grouped: Dict[Optional[int], Tuple[Optional[ast.AST], List]] = {}
    for node, attr in _buffer_writes(tree):
        owner = enclosing_function(node)
        key = id(owner) if owner is not None else None
        grouped.setdefault(key, (owner, []))[1].append((node, attr))
    for owner, writes in grouped.values():
        yield owner, writes


def _is_public_entry_point(func: ast.AST) -> bool:
    name = getattr(func, "name", "_")
    if name.startswith("_"):
        return False
    for decorator in getattr(func, "decorator_list", []):
        root = decorator
        while isinstance(root, (ast.Attribute, ast.Call)):
            root = root.func if isinstance(root, ast.Call) else root.value
        if isinstance(root, ast.Name) and root.id in _EXEMPT_DECORATORS:
            return False
    return True


def _bumps_stamp(func: ast.AST) -> bool:
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "_mutation_count":
                return True
    return False

"""Checker protocol and the lint runner."""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from .loader import ModuleSource, Project
from .model import Baseline, Finding


class Checker:
    """One invariant rule.

    Subclasses set the identity/explain fields and implement
    :meth:`check`, yielding :class:`Finding` objects; suppression and
    baseline handling happen in :func:`run_lint`.
    """

    rule_id = "abstract"
    severity = "error"
    title = ""
    contract = ""
    prevents = ""
    example_bad = ""
    example_fix = ""

    def check(
        self, module: ModuleSource, project: Project
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, line: int, message: str, symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.relpath,
            line=line,
            message=message,
            symbol=symbol,
            snippet=module.line_text(line),
        )

    def explain(self) -> str:
        parts = [f"{self.rule_id} — {self.title}", ""]
        parts.append(textwrap.dedent(self.contract).strip())
        if self.prevents:
            parts += ["", "History: " + textwrap.dedent(self.prevents).strip()]
        if self.example_bad:
            parts += ["", "Violation:", _indent(self.example_bad)]
        if self.example_fix:
            parts += ["", "Fix:", _indent(self.example_fix)]
        parts += [
            "",
            f"Suppress a single line with:  # astore: ignore[{self.rule_id}]",
        ]
        return "\n".join(parts)


def _indent(block: str) -> str:
    return textwrap.indent(textwrap.dedent(block).strip("\n"), "    ")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    rules: List[str]
    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.new

    def to_json(self) -> dict:
        return {
            "root": str(self.root),
            "rules": self.rules,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
            },
            "new": [f.to_json() for f in self.new],
            "baselined": [f.to_json() for f in self.baselined],
        }


def default_root() -> Path:
    """The installed ``repro`` package — what ``astore lint`` scans by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path() -> Path:
    return default_root() / "analysis" / "baseline.json"


def rule_ids() -> List[str]:
    from .checkers import all_checkers

    return [checker.rule_id for checker in all_checkers()]


def explain_rule(rule_id: str) -> Optional[str]:
    from .checkers import all_checkers

    for checker in all_checkers():
        if checker.rule_id == rule_id:
            return checker.explain()
    return None


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    baseline_path: object = "auto",
    update_baseline: bool = False,
) -> LintReport:
    """Run the checkers over *root* and reconcile against the baseline.

    With no explicit *root* the installed ``repro`` package is scanned
    and the committed ``analysis/baseline.json`` applies; an explicit
    *root* (fixture trees, other projects) gets no implicit baseline.
    """
    from .checkers import all_checkers

    explicit_root = root is not None
    scan_root = Path(root) if explicit_root else default_root()
    if baseline_path == "auto":
        baseline_file: Optional[Path] = (
            None if explicit_root else default_baseline_path()
        )
    else:
        baseline_file = Path(baseline_path) if baseline_path else None

    checkers = list(all_checkers())
    if rules:
        wanted = set(rules)
        known = {checker.rule_id for checker in checkers}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                "unknown rule(s): %s (known: %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known)))
            )
        checkers = [c for c in checkers if c.rule_id in wanted]

    project = Project.load(scan_root)
    findings: List[Finding] = []
    suppressed = 0
    for module in project.modules:
        for checker in checkers:
            for finding in checker.check(module, project):
                if module.suppressed(finding.line, finding.rule):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if update_baseline and baseline_file is not None:
        Baseline.save(baseline_file, findings)
    baseline = Baseline.load(baseline_file)
    new, old = baseline.partition(findings)
    return LintReport(
        root=scan_root,
        rules=[c.rule_id for c in checkers],
        findings=findings,
        new=new,
        baselined=old,
        suppressed=suppressed,
        files=len(project.modules),
    )

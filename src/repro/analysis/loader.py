"""Source loading and shared AST infrastructure.

Every checker consumes :class:`ModuleSource` (one parsed file: tree
with parent links, ``# astore: ...`` marker comments, the module's
``GUARDED_BY`` declaration) and :class:`Project` (the scanned file set
plus cross-module indexes: class definitions, portable classes, and
globally guarded names).

Marker grammar, scanned per physical line:

``# astore: ignore[rule-id]``
    suppress findings of that rule anchored to this line
    (``ignore[*]`` suppresses every rule);
``# astore: holds[lock-expr]``
    on a ``def`` signature line: the function is documented to run with
    *lock-expr* already held by the caller, so guarded accesses inside
    it are considered covered.

Guarded state is declared in a module-level dict of string constants::

    GUARDED_BY = {
        "_SHARED_BACKENDS": "_REGISTRY_LOCK",       # module global
        "QueryCache._tiers": "self._lock",          # instance attribute
    }
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

_MARKER = re.compile(r"#\s*astore:\s*(ignore|holds)\[([^\]]+)\]")
_PARENT = "_astore_parent"

FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class ModuleSource:
    """One parsed source file with the metadata checkers need."""

    def __init__(self, path: Path, root: Path):
        self.path = Path(path)
        self.root = Path(root)
        try:
            self.relpath = self.path.relative_to(self.root).as_posix()
        except ValueError:
            self.relpath = self.path.name
        self.text = self.path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(self.path))
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, _PARENT, node)
        self.suppressions: Dict[int, Set[str]] = {}
        self.holds_lines: Dict[int, List[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            for kind, body in _MARKER.findall(line):
                names = [part.strip() for part in body.split(",") if part.strip()]
                if kind == "ignore":
                    self.suppressions.setdefault(lineno, set()).update(names)
                else:
                    self.holds_lines.setdefault(lineno, []).extend(names)
        self.guarded_by = self._extract_guarded()

    def _extract_guarded(self) -> Dict[str, str]:
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "GUARDED_BY"
                    and isinstance(value, ast.Dict)
                ):
                    out: Dict[str, str] = {}
                    for key, val in zip(value.keys, value.values):
                        if isinstance(key, ast.Constant) and isinstance(
                            val, ast.Constant,
                        ):
                            out[str(key.value)] = str(val.value)
                    return out
        return {}

    def suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.suppressions.get(lineno)
        return bool(rules) and (rule in rules or "*" in rules)

    def line_text(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def holds_for(self, func: ast.AST) -> List[str]:
        """Lock expressions declared held on *func*'s signature lines."""
        body = getattr(func, "body", None)
        start = getattr(func, "lineno", 0)
        end = body[0].lineno if body else start
        out: List[str] = []
        for lineno in range(start, end + 1):
            out.extend(self.holds_lines.get(lineno, []))
        return out


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = parent(node)
    while cur is not None:
        yield cur
        cur = parent(cur)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for anc in ancestors(node):
        if isinstance(anc, FUNC_NODES):
            return anc
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
        if isinstance(anc, FUNC_NODES) and enclosing_function(node) is not anc:
            break
    return None


def in_branch_test(node: ast.AST) -> bool:
    """True when *node* sits inside the test of an if/while/ternary."""
    prev: ast.AST = node
    for anc in ancestors(node):
        if isinstance(anc, (ast.If, ast.While, ast.IfExp)) and prev is anc.test:
            return True
        if isinstance(anc, FUNC_NODES):
            return False
        prev = anc
    return False


def local_aliases(func: ast.AST) -> Dict[str, str]:
    """Map simple local names to the unparsed expression assigned to them."""
    out: Dict[str, str] = {}
    for stmt in ast.walk(func):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            out[stmt.targets[0].id] = ast.unparse(stmt.value)
    return out


def held_context_exprs(node: ast.AST, module: ModuleSource) -> Set[str]:
    """Context expressions held at *node*: enclosing ``with`` statements
    within the innermost function (a ``with`` in an outer frame is not
    held when a nested function later runs), plus the function's
    ``astore: holds[...]`` declarations, with one round of local-alias
    expansion so ``lock = self._lock; with lock:`` still matches.
    """
    held: Set[str] = set()
    for anc in ancestors(node):
        if isinstance(anc, FUNC_NODES):
            break
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                held.add(ast.unparse(item.context_expr))
    func = enclosing_function(node)
    if func is not None:
        held.update(module.holds_for(func))
        aliases = local_aliases(func)
        for expr in list(held):
            if expr in aliases:
                held.add(aliases[expr])
    return held


class Project:
    """The scanned file set plus cross-module indexes."""

    def __init__(self, root: Path, modules: List[ModuleSource]):
        self.root = Path(root)
        self.modules = modules
        self.class_index: Dict[str, Tuple[ModuleSource, ast.ClassDef]] = {}
        self.portable: Set[str] = set()
        self.global_guarded: Dict[str, str] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.class_index.setdefault(node.name, (module, node))
                    if _is_portable(node):
                        self.portable.add(node.name)
            for key, lock in module.guarded_by.items():
                if "." not in key:
                    self.global_guarded[key] = lock

    @classmethod
    def load(cls, root: Path) -> "Project":
        root = Path(root).resolve()
        if root.is_file():
            files, base = [root], root.parent
        else:
            files, base = sorted(root.rglob("*.py")), root
        modules = [ModuleSource(path, base) for path in files]
        return cls(base, modules)


def _is_portable(cls_node: ast.ClassDef) -> bool:
    for stmt in cls_node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__portable__":
                return bool(isinstance(value, ast.Constant) and value.value)
    return False

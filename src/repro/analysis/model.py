"""Finding model, fingerprints, and the committed baseline.

A :class:`Finding` anchors one rule violation to a ``file:line``; its
*fingerprint* is content-addressed (rule, file, symbol, and the text of
the anchor line) so pure line drift — inserting unrelated code above a
baselined finding — neither resurrects it nor orphans the baseline
entry.  The :class:`Baseline` is the committed ledger of accepted
findings: ``astore lint`` fails only on findings outside it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source line."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    symbol: str = ""
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        basis = "|".join((self.rule, self.path, self.symbol, self.snippet))
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class Baseline:
    """Accepted findings, matched by fingerprint with multiplicity.

    A fingerprint carried twice absolves at most two live findings, so
    quietly adding a third identical violation on an already-baselined
    line still fails the gate.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self.counts: Dict[str, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not Path(path).exists():
            return cls()
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        counts: Dict[str, int] = {}
        for entry in payload.get("findings", []):
            fp = entry["fingerprint"]
            counts[fp] = counts.get(fp, 0) + 1
        return cls(counts)

    @staticmethod
    def save(path: Path, findings: Iterable[Finding]) -> None:
        payload = {
            "version": 1,
            "tool": "astore lint",
            "findings": [f.to_json() for f in findings],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(
        self, findings: Iterable[Finding],
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into ``(new, baselined)``, consuming multiplicity."""
        budget = dict(self.counts)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

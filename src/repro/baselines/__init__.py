"""Baseline engines: MonetDB/Vectorwise/Hyper-like executors and
materialized denormalization."""

from .common import HashJoinProvider, build_hash_tables
from .denormalized import DenormalizedEngine, materialize_universal
from .engines import (
    BaselineEngine,
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)

__all__ = [
    "BaselineEngine",
    "build_hash_tables",
    "DenormalizedEngine",
    "FusedEngine",
    "HashJoinProvider",
    "materialize_universal",
    "MaterializingEngine",
    "VectorizedPipelineEngine",
]

"""Shared machinery for the baseline (non-AIR) engines.

The baselines execute the same bound SPJGA plans as A-Store but join on
*key values* with hash tables, the way a conventional MMDB does.  They are
run against databases loaded with ``airify=False`` so foreign-key columns
still hold key values.

:class:`HashJoinProvider` mirrors the AIR engine's positional provider —
``(table, column)`` resolution along reference chains — but every hop is a
hash-table probe instead of a positional gather.  Because both engines
share the expression evaluator, the operator layer
(:mod:`repro.engine.operators`), and the aggregation kernels, measured
differences between A-Store and a baseline isolate exactly what the paper
varies: the join mechanism and the scan strategy.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import Database
from ..core.schema import Reference
from ..engine.aggregate import finalize
from ..engine.expression import evaluate_predicate
from ..engine.grouping import GroupAxis, decode_group_columns
from ..engine.orderby import sort_indices
from ..engine.result import ExecutionStats, QueryResult
from ..engine.slice import ArraySlice, DictSlice, chain_map
from ..errors import ExecutionError
from ..joins.hashtable import IntHashTable
from ..plan.binder import LogicalPlan, bind


class HashJoinProvider:
    """Positional provider whose reference hops are hash-table probes."""

    def __init__(self, db: Database, base: str,
                 chains: Dict[str, List[Reference]],
                 hash_tables: Dict[Reference, IntHashTable],
                 positions: Optional[np.ndarray] = None):
        self._db = db
        self._base = base
        self._chains = chains
        self._hash_tables = hash_tables
        self._positions = positions
        self._cache: Dict[str, Optional[np.ndarray]] = {base: positions}

    @property
    def length(self) -> int:
        if self._positions is not None:
            return len(self._positions)
        return self._db.table(self._base).num_rows

    def positions_for(self, table: str) -> Optional[np.ndarray]:
        """Parent positions per base row, resolved by hash probes."""
        if table in self._cache:
            return self._cache[table]
        if table not in self._chains:
            raise ExecutionError(
                f"table {table!r} not reachable from {self._base!r}")
        refs = self._chains[table]
        prefix = refs[:-1]
        prev_table = prefix[-1].parent_table if prefix else self._base
        prev = self.positions_for(prev_table) if prefix else self._positions
        last = refs[-1]
        column = self._db.table(last.child_table)[last.child_column]
        fk_values = column.values() if prev is None else column.take(prev)
        pos = self._hash_tables[last].probe(np.asarray(fk_values, np.int64))
        self._cache[table] = pos
        return pos

    def fetch(self, table: str, column_name: str):
        column = self._db.table(table)[column_name]
        pos = self.positions_for(table)
        from ..core.column import DictColumn

        if isinstance(column, DictColumn):
            codes = column.codes() if pos is None else column.take_codes(pos)
            return DictSlice(codes, column.dictionary)
        values = column.values() if pos is None else column.take(pos)
        return ArraySlice(values)

    def rebase(self, positions: np.ndarray) -> "HashJoinProvider":
        if self._positions is not None:
            positions = self._positions[positions]
        return HashJoinProvider(self._db, self._base, self._chains,
                                self._hash_tables, positions)


def build_hash_tables(db: Database,
                      logical: LogicalPlan) -> Dict[Reference, IntHashTable]:
    """One hash table per reference edge used by the plan (PK → position)."""
    tables: Dict[Reference, IntHashTable] = {}
    for path in logical.paths:
        for ref in path.references:
            if ref in tables:
                continue
            parent = db.table(ref.parent_table)
            if ref.parent_key is None:
                keys = np.arange(parent.num_rows, dtype=np.int64)
            else:
                keys = np.asarray(parent[ref.parent_key].values(), np.int64)
            tables[ref] = IntHashTable(keys)
    return tables


def fact_provider(db: Database, logical: LogicalPlan,
                  hash_tables: Dict[Reference, IntHashTable],
                  positions: Optional[np.ndarray]) -> HashJoinProvider:
    """A provider over the fact table resolving dims by hash joins."""
    return HashJoinProvider(db, logical.root,
                            chain_map(logical.paths, logical.root),
                            hash_tables, positions)


def dim_provider(db: Database, logical: LogicalPlan, first_dim: str,
                 hash_tables: Dict[Reference, IntHashTable],
                 positions: Optional[np.ndarray] = None) -> HashJoinProvider:
    """A provider rooted at a first-level dimension (chain folding)."""
    relevant = [p for p in logical.paths if first_dim in p.tables]
    return HashJoinProvider(db, first_dim, chain_map(relevant, first_dim),
                            hash_tables, positions)


def dim_pass_mask(db: Database, logical: LogicalPlan, first_dim: str,
                  predicates: Sequence, hash_tables) -> np.ndarray:
    """Evaluate the folded dimension predicate over all first-dim rows."""
    provider = dim_provider(db, logical, first_dim, hash_tables)
    mask = np.ones(db.table(first_dim).num_rows, dtype=bool)
    for predicate in predicates:
        mask &= evaluate_predicate(predicate, provider)
    return mask


def assemble(logical: LogicalPlan, axes: Sequence[GroupAxis], state,
             stats: ExecutionStats) -> QueryResult:
    """Shared result assembly: decode groups, order, limit."""
    ids, aggs = finalize(state)
    if not logical.group_keys and len(ids) == 0:
        ids = np.zeros(1, dtype=np.int64)
        aggs = {
            spec.name: (np.zeros(1, dtype=np.int64)
                        if spec.func in ("COUNT", "SUM")
                        else np.array([np.nan]))
            for spec in logical.aggregates
        }
    columns: Dict[str, np.ndarray] = {}
    if axes:
        columns.update(decode_group_columns(axes, ids))
    columns.update(aggs)
    stats.groups = len(ids)
    ordered = {name: columns[name] for name in logical.output_order}
    if logical.order_by and len(ids) > 1:
        perm = sort_indices(ordered, logical.order_by)
        ordered = {name: values[perm] for name, values in ordered.items()}
    if logical.limit is not None:
        ordered = {name: values[: logical.limit]
                   for name, values in ordered.items()}
    return QueryResult(logical.output_order, ordered, stats)


class Timer:
    """Tiny helper to attribute elapsed time to stats fields."""

    def __init__(self):
        self._t = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._t
        self._t = now
        return elapsed


def bind_for_baseline(query, db: Database) -> LogicalPlan:
    """Bind a query for a baseline engine (same binder as A-Store)."""
    return bind(query, db)

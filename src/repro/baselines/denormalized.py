"""Fully materialized denormalization (the paper's ``*_D`` variants and the
hand-coded "Denormalization" column of Table 5).

:func:`materialize_universal` joins an AIR-loaded star/snowflake database
into one wide table; any engine can then run the rewritten single-table
queries on it.  Dictionary-compressed dimension columns keep their
dictionaries (only the code arrays are widened), matching WideTable-style
denormalization; the footprint blow-up reported in the paper's Section 6.2
is measured from the returned database's ``nbytes``.
"""

from __future__ import annotations

from typing import Optional

from ..core import Database, Table
from ..core.column import AIRColumn, DictColumn, FixedColumn, StringColumn
from ..engine.executor import AStoreEngine, EngineOptions
from ..engine.result import QueryResult
from ..errors import SchemaError
from ..workloads.ssb_queries import denormalize_query


def materialize_universal(db: Database, root: Optional[str] = None,
                          table_name: str = "universal") -> Database:
    """Join every reference path of *db* into one wide table.

    *db* must be AIR-loaded (``db.airify()``): the gathers that build the
    wide columns are positional.  Foreign-key (AIR) columns are dropped —
    a denormalized table has no use for them — and dimension key columns
    are kept (queries may still filter on them).
    """
    roots = [root] if root is not None else db.roots()
    if len(roots) != 1:
        raise SchemaError(
            f"need exactly one root table to denormalize, found {roots}")
    root_name = roots[0]
    paths = db.reference_paths(root_name)

    from ..engine.slice import universal_provider

    provider = universal_provider(db, root_name, paths)
    universal = Table(table_name)

    def add(table: str, source_name: str) -> None:
        column = db.table(table)[source_name]
        if isinstance(column, AIRColumn):
            return
        name = source_name
        if name in universal.columns:
            name = f"{table}_{source_name}"
        positions = provider.positions_for(table)
        if isinstance(column, DictColumn):
            codes = (column.codes() if positions is None
                     else column.take_codes(positions))
            universal.add_column(
                DictColumn(name, dictionary=column.dictionary, codes=codes))
        elif isinstance(column, StringColumn):
            values = (column.values() if positions is None
                      else column.take(positions))
            universal.add_column(StringColumn(name, values=list(values)))
        else:
            values = (column.values() if positions is None
                      else column.take(positions))
            universal.add_column(FixedColumn(name, column.dtype, data=values))

    for source_name in db.table(root_name).column_names:
        add(root_name, source_name)
    for path in paths:
        leaf = path.leaf
        for source_name in db.table(leaf).column_names:
            add(leaf, source_name)

    wide = Database(f"{db.name}_denormalized")
    wide.add_table(universal)
    return wide


class DenormalizedEngine:
    """A-Store's scan machinery over a fully materialized universal table.

    This is the paper's hand-coded denormalization comparison point: the
    same vectorized scan, selection vectors, dictionary compression, and
    array aggregation — but reading a real wide table instead of following
    AIR references.  Pass normalized SSB SQL; it is rewritten with
    :func:`~repro.workloads.ssb_queries.denormalize_query` automatically.
    """

    name = "denormalized"

    def __init__(self, db: Database, options: Optional[EngineOptions] = None,
                 already_wide: bool = False):
        self.source = db
        self.wide = db if already_wide else materialize_universal(db)
        opts = options or EngineOptions(variant_name="Denormalization")
        self._engine = AStoreEngine(self.wide, opts)

    @property
    def nbytes(self) -> int:
        """Footprint of the materialized universal table."""
        return self.wide.nbytes

    def query(self, query) -> QueryResult:
        """Execute a (normalized or already-rewritten) SSB-style query."""
        rewritten = denormalize_query(query, self.source)
        return self._engine.query(rewritten)

    def close(self) -> None:
        """Release the wrapped engine's process-backend resources."""
        self._engine.close()

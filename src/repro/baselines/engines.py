"""The three comparison engines of the paper's Section 6.

Each models the execution style of one evaluated MMDB, over the same
storage and with the same expression/aggregation kernels as A-Store, so
the measured deltas isolate the execution-model differences:

* :class:`MaterializingEngine` (MonetDB-like) — operator-at-a-time with
  **full materialization**: every predicate is evaluated over the whole
  column into a bitmap (no selection-vector short-circuit), every join
  materializes its position map for all fact rows, and bitmaps are
  combined at the end.  This reproduces MonetDB's BAT-algebra cost
  profile, including its poor predicate-processing behaviour on wide
  scans (the paper's Tables 3–5).
* :class:`VectorizedPipelineEngine` (Vectorwise-like) — block-at-a-time
  pipeline: dimension predicates are pushed into the dimension hash
  tables (semi-join reduction), fact blocks stream through
  filter→probe→aggregate with an in-block selection vector.
* :class:`FusedEngine` (Hyper-like) — one fused pass over the fact table
  (the Python analogue of a JIT-compiled pipeline): a single
  selection-vector scan with short-circuiting, hash joins resolved only
  for surviving rows, then hash aggregation.

All three aggregate with the sort-based hash-aggregation stand-in, as
"traditional OLAP engines usually perform hash based grouping and
aggregation" (Section 4.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import Database
from ..engine.expression import evaluate_predicate
from ..engine.result import ExecutionStats, QueryResult
from ..errors import PlanError
from ..plan.binder import LogicalPlan
from .common import (
    GatherBuffers,
    Timer,
    assemble,
    bind_for_baseline,
    build_hash_tables,
    dim_pass_mask,
    fact_provider,
    gather_groups_and_measures,
    hash_aggregate_buffers,
)


class BaselineEngine:
    """Common driver: bind, execute, assemble."""

    name = "baseline"

    def __init__(self, db: Database):
        self.db = db

    def query(self, query) -> QueryResult:
        """Execute a SQL string or parsed statement."""
        logical = bind_for_baseline(query, self.db)
        if logical.is_projection:
            raise PlanError(
                f"{self.name} implements SPJGA aggregation queries only")
        stats = ExecutionStats(variant=self.name)
        timer = Timer()
        result = self._execute(logical, stats, timer)
        stats.total_seconds = (stats.leaf_seconds + stats.scan_seconds
                               + stats.aggregation_seconds)
        return result

    def _execute(self, logical: LogicalPlan, stats: ExecutionStats,
                 timer: Timer) -> QueryResult:
        raise NotImplementedError

    def _base_mask(self, logical: LogicalPlan) -> Optional[np.ndarray]:
        table = self.db.table(logical.root)
        return table.live_mask() if table.has_deletes else None


class MaterializingEngine(BaselineEngine):
    """MonetDB-like operator-at-a-time execution with full materialization."""

    name = "materializing"

    def _execute(self, logical, stats, timer):
        db = self.db
        hash_tables = build_hash_tables(db, logical)
        nrows = db.table(logical.root).num_rows
        stats.rows_scanned = nrows

        # Dimension side: full predicate masks per first-level dimension.
        dim_masks = {
            first_dim: dim_pass_mask(db, logical, first_dim, preds, hash_tables)
            for first_dim, preds in logical.dim_conjuncts.items()
        }
        stats.leaf_seconds = timer.lap()

        # Fact side, BAT-algebra style: every predicate is evaluated over
        # the full column and materialized as a candidate OID list; the
        # lists are then joined pairwise (sorted intersection), which is
        # the cost profile the paper attributes to MonetDB ("BAT.join()
        # instead of selection vector to integrate multiple results of
        # predicate processing").
        full = fact_provider(db, logical, hash_tables, None)
        base = self._base_mask(logical)
        oid_lists = [] if base is None else [np.flatnonzero(base)]
        for expr in logical.fact_conjuncts:
            mask = evaluate_predicate(expr, full)           # full-column scan
            oid_lists.append(np.flatnonzero(mask))          # materialized OIDs
        for first_dim, mask in dim_masks.items():
            positions = full.positions_for(first_dim)       # full join map
            oid_lists.append(np.flatnonzero(mask[positions]))
        for first_dim in logical.first_level_dims:
            if first_dim in dim_masks:
                continue
            positions = full.positions_for(first_dim)       # join probe
            oid_lists.append(np.flatnonzero(positions >= 0))
        selected = np.arange(nrows, dtype=np.int64)
        for oids in oid_lists:
            selected = np.intersect1d(selected, oids,
                                      assume_unique=True)   # BAT join
        selected = selected.astype(np.int64)
        stats.rows_selected = len(selected)
        stats.scan_seconds = timer.lap()

        buffers = GatherBuffers()
        gather_groups_and_measures(
            logical, full.rebase(selected), buffers)
        axes, state = hash_aggregate_buffers(logical, buffers)
        stats.aggregation_seconds = timer.lap()
        return assemble(logical, axes, state, stats)


class FusedEngine(BaselineEngine):
    """Hyper-like single fused pass with a selection vector."""

    name = "fused"

    def _execute(self, logical, stats, timer):
        db = self.db
        hash_tables = build_hash_tables(db, logical)
        nrows = db.table(logical.root).num_rows
        stats.rows_scanned = nrows
        dim_masks = {
            first_dim: dim_pass_mask(db, logical, first_dim, preds, hash_tables)
            for first_dim, preds in logical.dim_conjuncts.items()
        }
        stats.leaf_seconds = timer.lap()

        base = self._base_mask(logical)
        selected = (np.flatnonzero(base) if base is not None
                    else np.arange(nrows, dtype=np.int64)).astype(np.int64)
        for expr in logical.fact_conjuncts:
            if not len(selected):
                break
            provider = fact_provider(db, logical, hash_tables, selected)
            selected = selected[evaluate_predicate(expr, provider)]
        for first_dim, mask in dim_masks.items():
            if not len(selected):
                break
            provider = fact_provider(db, logical, hash_tables, selected)
            positions = provider.positions_for(first_dim)
            selected = selected[mask[positions]]
        for first_dim in logical.first_level_dims:
            if first_dim in dim_masks or not len(selected):
                continue
            provider = fact_provider(db, logical, hash_tables, selected)
            selected = selected[provider.positions_for(first_dim) >= 0]
        stats.rows_selected = len(selected)
        stats.scan_seconds = timer.lap()

        buffers = GatherBuffers()
        gather_groups_and_measures(
            logical, fact_provider(db, logical, hash_tables, selected), buffers)
        axes, state = hash_aggregate_buffers(logical, buffers)
        stats.aggregation_seconds = timer.lap()
        return assemble(logical, axes, state, stats)


class VectorizedPipelineEngine(BaselineEngine):
    """Vectorwise-like block-at-a-time pipelined execution."""

    name = "vectorized-pipeline"

    def __init__(self, db: Database, block_rows: int = 65536):
        super().__init__(db)
        self.block_rows = block_rows

    def _execute(self, logical, stats, timer):
        db = self.db
        hash_tables = build_hash_tables(db, logical)
        nrows = db.table(logical.root).num_rows
        stats.rows_scanned = nrows
        dim_masks = {
            first_dim: dim_pass_mask(db, logical, first_dim, preds, hash_tables)
            for first_dim, preds in logical.dim_conjuncts.items()
        }
        stats.leaf_seconds = timer.lap()

        base = self._base_mask(logical)
        buffers = GatherBuffers()
        scan_time = 0.0
        for start in range(0, nrows, self.block_rows):
            block = np.arange(start, min(start + self.block_rows, nrows),
                              dtype=np.int64)
            if base is not None:
                block = block[base[block]]
            sel = block
            for expr in logical.fact_conjuncts:
                if not len(sel):
                    break
                provider = fact_provider(db, logical, hash_tables, sel)
                sel = sel[evaluate_predicate(expr, provider)]
            for first_dim, mask in dim_masks.items():
                if not len(sel):
                    break
                provider = fact_provider(db, logical, hash_tables, sel)
                sel = sel[mask[provider.positions_for(first_dim)]]
            for first_dim in logical.first_level_dims:
                if first_dim in dim_masks or not len(sel):
                    continue
                provider = fact_provider(db, logical, hash_tables, sel)
                sel = sel[provider.positions_for(first_dim) >= 0]
            scan_time += timer.lap()
            if len(sel):
                gather_groups_and_measures(
                    logical, fact_provider(db, logical, hash_tables, sel),
                    buffers)
            stats.aggregation_seconds += timer.lap()
        stats.scan_seconds = scan_time
        stats.rows_selected = buffers.selected

        axes, state = hash_aggregate_buffers(logical, buffers)
        stats.aggregation_seconds += timer.lap()
        return assemble(logical, axes, state, stats)

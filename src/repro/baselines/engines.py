"""The three comparison engines of the paper's Section 6.

Each models the execution style of one evaluated MMDB — but all three
are now *DAG shapes* over the shared physical operators of
:mod:`repro.engine.operators`, running on the same storage and with the
same expression/aggregation kernels as A-Store, so the measured deltas
isolate the execution-model differences:

* :class:`MaterializingEngine` (MonetDB-like) — operator-at-a-time with
  **full materialization**: a single whole-table morsel through an
  :class:`~repro.engine.operators.IntersectScan` — every predicate is
  evaluated over the whole column into a candidate OID list (no
  selection-vector short-circuit) and the lists are joined pairwise.
  This reproduces MonetDB's BAT-algebra cost profile, including its
  poor predicate-processing behaviour on wide scans (Tables 3–5).
* :class:`VectorizedPipelineEngine` (Vectorwise-like) — block-at-a-time
  pipeline: dimension predicates are pushed into semi-join reduction
  masks, and fixed-size fact morsels stream through the
  filter→probe→gather chain with an in-block selection vector.
* :class:`FusedEngine` (Hyper-like) — the same operator chain over one
  fused whole-table morsel (the Python analogue of a JIT-compiled
  pipeline): a single selection-vector scan with short-circuiting, hash
  joins resolved only for surviving rows.

All three aggregate with the sort-based hash-aggregation stand-in
(:class:`~repro.engine.operators.ValueGather` + ``value_grouping``), as
"traditional OLAP engines usually perform hash based grouping and
aggregation" (Section 4.3).  The dimension hops are hash-table probes
(:class:`~repro.baselines.common.HashJoinProvider`), not AIR gathers —
that is the variable the paper's comparison isolates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core import Database
from ..engine.operators import (
    AIRProbe,
    Filter,
    FilterLike,
    IntersectScan,
    MaskFilter,
    Morsel,
    MorselDispatcher,
    Operator,
    PredicateFilter,
    ValueGather,
    merge_timings,
    value_grouping,
)
from ..engine.result import ExecutionStats, QueryResult
from ..errors import PlanError
from ..plan.binder import LogicalPlan
from .common import (
    Timer,
    assemble,
    bind_for_baseline,
    build_hash_tables,
    dim_pass_mask,
    fact_provider,
)


class BaselineEngine:
    """Common driver: bind, build the DAG shape, dispatch, assemble."""

    name = "baseline"

    def __init__(self, db: Database):
        self.db = db

    def query(self, query) -> QueryResult:
        """Execute a SQL string or parsed statement."""
        logical = bind_for_baseline(query, self.db)
        if logical.is_projection:
            raise PlanError(
                f"{self.name} implements SPJGA aggregation queries only")
        stats = ExecutionStats(variant=self.name)
        timer = Timer()
        result = self._execute(logical, stats, timer)
        stats.total_seconds = (stats.leaf_seconds + stats.scan_seconds
                               + stats.aggregation_seconds)
        return result

    def _execute(self, logical: LogicalPlan, stats: ExecutionStats,
                 timer: Timer) -> QueryResult:
        hash_tables = build_hash_tables(self.db, logical)
        nrows = self.db.table(logical.root).num_rows
        stats.rows_scanned = nrows

        # Leaf side: full predicate masks per first-level dimension
        # (semi-join reduction), wrapped as predicate vectors.
        dim_filters = {
            first_dim: PredicateFilter(
                dim_pass_mask(self.db, logical, first_dim, preds, hash_tables))
            for first_dim, preds in logical.dim_conjuncts.items()
        }
        stats.leaf_seconds = timer.lap()

        def rebind(positions):
            return fact_provider(self.db, logical, hash_tables, positions)

        morsels = self._morsels(logical, nrows, rebind)
        stats.morsels = len(morsels)

        def pipeline() -> List[Operator]:
            ops = self._shape(logical, dim_filters)
            ops.append(ValueGather(logical))
            return ops

        results = MorselDispatcher("serial").run(morsels, pipeline)
        merge_timings(stats, results)
        gathered = None
        for result in results:
            stats.scan_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if not label.startswith("gather"))
            stats.aggregation_seconds += result.timings.get("gather", 0.0)
            for partial in result.finishes.values():
                gathered = (partial if gathered is None
                            else gathered.merge(partial))
        stats.rows_selected = gathered.selected
        timer.lap()

        axes, state = value_grouping(logical, gathered)
        stats.aggregation_seconds += timer.lap()
        return assemble(logical, axes, state, stats)

    # -- the DAG shape each engine customizes -------------------------------

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        """The morsel layout: whole-table by default."""
        base = self._base_mask(logical)
        positions = (np.flatnonzero(base) if base is not None
                     else np.arange(nrows, dtype=np.int64)).astype(np.int64)
        return [Morsel(positions, rebind(positions))]

    def _shape(self, logical: LogicalPlan,
               dim_filters) -> List[Operator]:
        """The scan-and-filter operator chain (selection-vector style)."""
        return list(self._filter_steps(logical, dim_filters))

    def _filter_steps(self, logical: LogicalPlan,
                      dim_filters) -> List[FilterLike]:
        """Fact predicates, semi-join probes, then existence probes."""
        steps: List[FilterLike] = []
        for expr in logical.fact_conjuncts:
            steps.append(Filter(expr))
        for first_dim, pf in dim_filters.items():
            steps.append(AIRProbe(first_dim, "vector", pf))
        for first_dim in logical.first_level_dims:
            if first_dim not in dim_filters:
                steps.append(AIRProbe(first_dim, "exists"))
        return steps

    def _base_mask(self, logical: LogicalPlan) -> Optional[np.ndarray]:
        table = self.db.table(logical.root)
        return table.live_mask() if table.has_deletes else None


class MaterializingEngine(BaselineEngine):
    """MonetDB-like operator-at-a-time execution with full materialization."""

    name = "materializing"

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        # One whole-table morsel whose provider scans full columns
        # (positions=None — no gather), the BAT-algebra access pattern.
        return [Morsel(np.arange(nrows, dtype=np.int64), rebind(None))]

    def _shape(self, logical: LogicalPlan,
               dim_filters) -> List[Operator]:
        steps: List[FilterLike] = []
        base = self._base_mask(logical)
        if base is not None:
            steps.append(MaskFilter(base, label="mask-filter[live]"))
        steps.extend(self._filter_steps(logical, dim_filters))
        return [IntersectScan(steps)]


class FusedEngine(BaselineEngine):
    """Hyper-like single fused pass with a selection vector."""

    name = "fused"

    # whole-table morsel + short-circuiting filter chain: the defaults


class VectorizedPipelineEngine(BaselineEngine):
    """Vectorwise-like block-at-a-time pipelined execution."""

    name = "vectorized-pipeline"

    def __init__(self, db: Database, block_rows: int = 65536):
        super().__init__(db)
        self.block_rows = block_rows

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        base = self._base_mask(logical)
        morsels = []
        for start in range(0, nrows, self.block_rows):
            block = np.arange(start, min(start + self.block_rows, nrows),
                              dtype=np.int64)
            if base is not None:
                block = block[base[block]]
            morsels.append(Morsel(block, rebind(block)))
        return morsels or [Morsel(np.empty(0, dtype=np.int64),
                                  rebind(np.empty(0, dtype=np.int64)))]

"""The three comparison engines of the paper's Section 6.

Each models the execution style of one evaluated MMDB — but all three
are now *DAG shapes* over the shared physical operators of
:mod:`repro.engine.operators`, running on the same storage and with the
same expression/aggregation kernels as A-Store, so the measured deltas
isolate the execution-model differences:

* :class:`MaterializingEngine` (MonetDB-like) — operator-at-a-time with
  **full materialization**: a single whole-table morsel through an
  :class:`~repro.engine.operators.IntersectScan` — every predicate is
  evaluated over the whole column into a candidate OID list (no
  selection-vector short-circuit) and the lists are joined pairwise.
  This reproduces MonetDB's BAT-algebra cost profile, including its
  poor predicate-processing behaviour on wide scans (Tables 3–5).
* :class:`VectorizedPipelineEngine` (Vectorwise-like) — block-at-a-time
  pipeline: dimension predicates are pushed into semi-join reduction
  masks, and fixed-size fact morsels stream through the
  filter→probe→gather chain with an in-block selection vector.
* :class:`FusedEngine` (Hyper-like) — the same operator chain over one
  fused whole-table morsel (the Python analogue of a JIT-compiled
  pipeline): a single selection-vector scan with short-circuiting, hash
  joins resolved only for surviving rows.

All three aggregate with the sort-based hash-aggregation stand-in
(:class:`~repro.engine.operators.ValueGather` + ``value_grouping``), as
"traditional OLAP engines usually perform hash based grouping and
aggregation" (Section 4.3).  The dimension hops are hash-table probes
(:class:`~repro.baselines.common.HashJoinProvider`), not AIR gathers —
that is the variable the paper's comparison isolates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core import Database
from ..engine.operators import (
    BACKENDS,
    FilterLike,
    IntersectScan,
    MaskFilter,
    Morsel,
    MorselDispatcher,
    Operator,
    PredicateFilter,
    ReorderState,
    ValueGather,
    merge_timings,
    value_grouping,
)
from ..engine.result import ExecutionStats, QueryResult
from ..engine.sharding import (
    BaselineBoundQuery,
    acquire_shard_backend,
    baseline_filter_steps,
    fold_outcomes,
    merge_outcome_states,
    release_shard_backend,
)
from ..errors import PlanError
from ..plan.binder import LogicalPlan
from .common import (
    Timer,
    assemble,
    bind_for_baseline,
    build_hash_tables,
    dim_pass_mask,
    fact_provider,
)


class BaselineEngine:
    """Common driver: bind, build the DAG shape, dispatch, assemble.

    ``backend`` names a :data:`repro.engine.operators.BACKENDS` entry;
    with ``"process"`` the bound baseline plan (semi-join masks + hash
    tables, both dimension-sized) ships to workers that shard the fact
    table horizontally over the shared-memory arena — the same portable
    path the A-Store engine uses.  Engines that served process-backed
    queries hold an arena and pool; release them with :meth:`close`.
    """

    name = "baseline"

    def __init__(self, db: Database, backend: str = "serial",
                 workers: int = 1):
        self.db = db
        self.backend = backend
        self.workers = workers
        self._shard_backend = None

    def close(self) -> None:
        """Release process-backend resources (worker pool + shared arena)."""
        backend, self._shard_backend = self._shard_backend, None
        if backend is not None:
            release_shard_backend(backend)

    def __enter__(self) -> "BaselineEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def query(self, query) -> QueryResult:
        """Execute a SQL string or parsed statement."""
        logical = bind_for_baseline(query, self.db)
        if logical.is_projection:
            raise PlanError(
                f"{self.name} implements SPJGA aggregation queries only")
        stats = ExecutionStats(variant=self.name)
        timer = Timer()
        result = self._execute(logical, stats, timer)
        stats.total_seconds = (stats.leaf_seconds + stats.scan_seconds
                               + stats.aggregation_seconds)
        return result

    def _execute(self, logical: LogicalPlan, stats: ExecutionStats,
                 timer: Timer) -> QueryResult:
        # fresh per query: observed pass-rates for micro-adaptive scans
        self._adapt = ReorderState()
        hash_tables = build_hash_tables(self.db, logical)
        nrows = self.db.table(logical.root).num_rows
        stats.rows_scanned = nrows

        # Leaf side: full predicate masks per first-level dimension
        # (semi-join reduction), wrapped as predicate vectors.
        dim_filters = {
            first_dim: PredicateFilter(
                dim_pass_mask(self.db, logical, first_dim, preds, hash_tables))
            for first_dim, preds in logical.dim_conjuncts.items()
        }
        stats.leaf_seconds = timer.lap()

        if not BACKENDS[self.backend].inline:
            gathered = self._gather_sharded(logical, dim_filters,
                                            hash_tables, stats)
        else:
            gathered = self._gather_inline(logical, dim_filters,
                                           hash_tables, nrows, stats)
        stats.rows_selected = gathered.selected
        timer.lap()

        axes, state = value_grouping(logical, gathered)
        stats.aggregation_seconds += timer.lap()
        stats.filters_reordered = self._adapt.reorders
        return assemble(logical, axes, state, stats)

    def _gather_inline(self, logical: LogicalPlan, dim_filters,
                       hash_tables, nrows: int, stats: ExecutionStats):
        """Run the engine's DAG shape in-process and merge gather states."""
        def rebind(positions):
            return fact_provider(self.db, logical, hash_tables, positions)

        morsels = self._morsels(logical, nrows, rebind)
        stats.morsels = len(morsels)

        def pipeline() -> List[Operator]:
            ops = self._shape(logical, dim_filters)
            ops.append(ValueGather(logical))
            return ops

        results = MorselDispatcher(self.backend).run(morsels, pipeline)
        merge_timings(stats, results)
        gathered = None
        for result in results:
            stats.scan_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if not label.startswith("gather"))
            stats.aggregation_seconds += result.timings.get("gather", 0.0)
            for partial in result.finishes.values():
                gathered = (partial if gathered is None
                            else gathered.merge(partial))
        return gathered

    def _gather_sharded(self, logical: LogicalPlan, dim_filters,
                        hash_tables, stats: ExecutionStats):
        """Ship the portable baseline plan to shard workers and merge."""
        backend = self._shard_backend
        if backend is not None and backend.is_stale(self.db):
            release_shard_backend(backend)
            backend = self._shard_backend = None
        if backend is None:
            self._shard_backend = acquire_shard_backend(self.db, self.workers)
        plan = BaselineBoundQuery(
            shape=self.name, logical=logical, dim_filters=dim_filters,
            hash_tables=hash_tables, block_rows=self._block_rows())
        outcomes = self._shard_backend.run(plan, nshards=self.workers)
        fold_outcomes(outcomes, stats, agg_labels=("gather",))
        return merge_outcome_states(outcomes)

    def _block_rows(self) -> int:
        """Shard-side morsel size (0 = one morsel per shard)."""
        return 0

    # -- the DAG shape each engine customizes -------------------------------

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        """The morsel layout: whole-table by default."""
        base = self._base_mask(logical)
        positions = (np.flatnonzero(base) if base is not None
                     else np.arange(nrows, dtype=np.int64)).astype(np.int64)
        return [Morsel(positions, rebind(positions))]

    def _shape(self, logical: LogicalPlan,
               dim_filters) -> List[Operator]:
        """The scan-and-filter operator chain (selection-vector style)."""
        return list(self._filter_steps(logical, dim_filters))

    def _filter_steps(self, logical: LogicalPlan,
                      dim_filters) -> List[FilterLike]:
        """Fact predicates, semi-join probes, then existence probes —
        shared with the portable baseline plan (same operator chain on
        every backend)."""
        return baseline_filter_steps(logical, dim_filters)

    def _base_mask(self, logical: LogicalPlan) -> Optional[np.ndarray]:
        table = self.db.table(logical.root)
        return table.live_mask() if table.has_deletes else None


class MaterializingEngine(BaselineEngine):
    """MonetDB-like operator-at-a-time execution with full materialization."""

    name = "materializing"

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        # One whole-table morsel whose provider scans full columns
        # (positions=None — no gather), the BAT-algebra access pattern.
        return [Morsel(np.arange(nrows, dtype=np.int64), rebind(None))]

    def _shape(self, logical: LogicalPlan,
               dim_filters) -> List[Operator]:
        steps: List[FilterLike] = []
        base = self._base_mask(logical)
        if base is not None:
            steps.append(MaskFilter(base, label="mask-filter[live]"))
        steps.extend(self._filter_steps(logical, dim_filters))
        return [IntersectScan(steps, adapt=self._adapt)]


class FusedEngine(BaselineEngine):
    """Hyper-like single fused pass with a selection vector."""

    name = "fused"

    # whole-table morsel + short-circuiting filter chain: the defaults


class VectorizedPipelineEngine(BaselineEngine):
    """Vectorwise-like block-at-a-time pipelined execution."""

    name = "vectorized-pipeline"

    def __init__(self, db: Database, block_rows: int = 65536,
                 backend: str = "serial", workers: int = 1):
        super().__init__(db, backend=backend, workers=workers)
        self.block_rows = block_rows

    def _block_rows(self) -> int:
        return self.block_rows

    def _morsels(self, logical: LogicalPlan, nrows: int,
                 rebind) -> List[Morsel]:
        base = self._base_mask(logical)
        morsels = []
        for start in range(0, nrows, self.block_rows):
            block = np.arange(start, min(start + self.block_rows, nrows),
                              dtype=np.int64)
            if base is not None:
                block = block[base[block]]
            morsels.append(Morsel(block, rebind(block)))
        return morsels or [Morsel(np.empty(0, dtype=np.int64),
                                  rebind(np.empty(0, dtype=np.int64)))]

"""Benchmark harness: timing, reporting, and the shared experiment driver."""

from .harness import (
    DEFAULT_REPEAT,
    DEFAULT_SCALE,
    EngineUnderTest,
    QPS_MODES,
    backend_scaling_sweep,
    breakdown_rows,
    close_engines,
    concurrency_payload,
    concurrency_rows,
    concurrency_sweep,
    explain_engines,
    fleet_payload,
    fleet_rows,
    fleet_sweep,
    operator_breakdown,
    pruning_payload,
    pruning_rows,
    pruning_speedups,
    pruning_sweep,
    qps_payload,
    qps_rows,
    qps_sweep,
    run_ssb_suite,
    scaling_rows,
    ssb_database,
    standard_engines,
    suite_rows,
)
from .report import (
    format_ratio_note,
    format_table,
    host_info,
    host_note,
    write_bench_json,
)
from .timing import best_of, median_ms, ms, ns_per_tuple

__all__ = [
    "backend_scaling_sweep", "best_of", "breakdown_rows", "close_engines",
    "concurrency_payload", "concurrency_rows", "concurrency_sweep",
    "DEFAULT_REPEAT", "DEFAULT_SCALE", "EngineUnderTest", "explain_engines",
    "fleet_payload", "fleet_rows", "fleet_sweep",
    "format_ratio_note", "format_table", "host_info", "host_note",
    "median_ms", "ms", "ns_per_tuple", "operator_breakdown",
    "pruning_payload", "pruning_rows", "pruning_speedups", "pruning_sweep",
    "QPS_MODES",
    "qps_payload", "qps_rows", "qps_sweep", "run_ssb_suite", "scaling_rows",
    "ssb_database", "standard_engines", "suite_rows", "write_bench_json",
]

"""Benchmark harness: timing, reporting, and the shared experiment driver."""

from .harness import (
    DEFAULT_REPEAT,
    DEFAULT_SCALE,
    EngineUnderTest,
    run_ssb_suite,
    ssb_database,
    standard_engines,
    suite_rows,
)
from .report import format_ratio_note, format_table
from .timing import best_of, ms, ns_per_tuple

__all__ = [
    "best_of", "DEFAULT_REPEAT", "DEFAULT_SCALE", "EngineUnderTest",
    "format_ratio_note", "format_table", "ms", "ns_per_tuple",
    "run_ssb_suite", "ssb_database", "standard_engines", "suite_rows",
]

"""The experiment driver shared by the ``benchmarks/`` modules.

Centralizes dataset construction (one cached pair of airified and raw SSB
databases per scale), suite execution over multiple engines, and the
paper-style summary emission.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dataclasses_replace
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines import (
    DenormalizedEngine,
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
)
from ..core import Database
from ..datagen import generate_ssb
from ..engine.executor import AStoreEngine, VARIANTS
from ..workloads.ssb_queries import SSB_QUERIES
from .timing import best_of, median_ms, ms

DEFAULT_SCALE = float(__import__("os").environ.get("REPRO_BENCH_SF", "0.02"))
DEFAULT_REPEAT = int(__import__("os").environ.get("REPRO_BENCH_REPEAT", "3"))

_ssb_cache: Dict[tuple, Database] = {}


def ssb_database(sf: float = DEFAULT_SCALE, seed: int = 42,
                 airify: bool = True) -> Database:
    """A cached SSB database (one per (sf, seed, airify) triple)."""
    key = (sf, seed, airify)
    if key not in _ssb_cache:
        _ssb_cache[key] = generate_ssb(sf=sf, seed=seed, airify=airify)
    return _ssb_cache[key]


@dataclass
class EngineUnderTest:
    """A named engine with a uniform ``run(sql) -> QueryResult`` interface.

    ``close`` releases any engine-held resources (the process backend's
    shared-memory arena and worker pool); call it — or
    :func:`close_engines` — when done benchmarking.
    """

    name: str
    run: Callable[[str], object]
    close: Callable[[], None] = lambda: None


def close_engines(engines: Sequence[EngineUnderTest]) -> None:
    """Release every engine's resources (arenas, worker pools)."""
    for engine in engines:
        engine.close()


def standard_engines(sf: float = DEFAULT_SCALE,
                     include: Optional[Sequence[str]] = None,
                     workers: int = 1,
                     backend: Optional[str] = None,
                     use_cache: bool = False) -> List[EngineUnderTest]:
    """The engine line-up of the paper's Section 6.

    Names: ``MonetDB-like``, ``Vectorwise-like``, ``Hyper-like`` (the
    baselines over key-valued data), ``A-Store`` (AIRScan_C_P_G over AIR
    data), ``Denormalized`` (A-Store machinery over the materialized
    universal table), plus the five ``AIRScan_*`` variants.

    ``backend``/``workers`` select the execution backend for *every*
    engine (baselines included), so the Table 2/5/6 harness runs can be
    pointed at any :data:`repro.engine.operators.BACKENDS` entry without
    code edits.  ``backend=None`` keeps each engine's default (serial
    baselines, thread-dispatching A-Store).

    ``use_cache`` defaults to **off** here — deliberately the opposite
    of the engine default.  The paper tables compare engines on their
    full per-query work, and the cache is shared per database: with it
    on, a ``best_of`` repeat measures a warm plan hit and the first
    variant in the line-up would pre-bind dimension scans and axes for
    every later one, collapsing exactly the per-variant leaf-processing
    differences Table 6 isolates.  Serving-throughput measurements
    belong to :func:`qps_sweep`, which controls cache modes explicitly.
    """
    air = ssb_database(sf, airify=True)
    raw = ssb_database(sf, airify=False)
    baseline_backend = backend or "serial"
    astore = {"workers": workers, "use_cache": use_cache}
    if backend is not None:
        astore["parallel_backend"] = backend
    engines: List[EngineUnderTest] = []

    def add(name: str, engine):
        if include is None or name in include:
            engines.append(EngineUnderTest(
                name, engine.query, getattr(engine, "close", lambda: None)))

    add("MonetDB-like",
        MaterializingEngine(raw, backend=baseline_backend, workers=workers))
    add("Vectorwise-like",
        VectorizedPipelineEngine(raw, backend=baseline_backend,
                                 workers=workers))
    add("Hyper-like", FusedEngine(raw, backend=baseline_backend,
                                  workers=workers))
    add("A-Store", AStoreEngine.variant(air, "AIRScan_C_P_G", **astore))
    if include is None or "Denormalized" in include:
        from ..engine import EngineOptions

        denorm_options = EngineOptions(variant_name="Denormalization",
                                       workers=workers, use_cache=use_cache)
        if backend is not None:
            denorm_options = dataclasses_replace(
                denorm_options, parallel_backend=backend)
        add("Denormalized", DenormalizedEngine(air, options=denorm_options))
    for variant in VARIANTS:
        add(variant, AStoreEngine.variant(air, variant, **astore))
    return engines


def run_ssb_suite(engines: Sequence[EngineUnderTest],
                  query_ids: Optional[Sequence[str]] = None,
                  repeat: int = DEFAULT_REPEAT) -> Dict[str, Dict[str, float]]:
    """Best-of-N milliseconds for each (engine, SSB query) pair."""
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    times: Dict[str, Dict[str, float]] = {e.name: {} for e in engines}
    for query_id in ids:
        sql = SSB_QUERIES[query_id]
        for engine in engines:
            seconds, _ = best_of(lambda: engine.run(sql), repeat=repeat)
            times[engine.name][query_id] = ms(seconds)
    return times


def suite_rows(times: Dict[str, Dict[str, float]],
               query_ids: Sequence[str]) -> List[List]:
    """Rows (one per query + AVG) for :func:`repro.bench.format_table`."""
    engines = list(times)
    rows: List[List] = []
    for query_id in query_ids:
        rows.append([query_id] + [times[e][query_id] for e in engines])
    rows.append(
        ["AVG"] + [sum(times[e].values()) / len(times[e]) for e in engines])
    return rows


def explain_engines(sf: float = DEFAULT_SCALE,
                    query_ids: Optional[Sequence[str]] = None,
                    variants: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, str]]:
    """Per-variant ``explain()`` text for the given SSB queries.

    Returns ``{variant: {query_id: explain_text}}`` — the operator DAG
    plus the optimizer's decisions (predicate order, filter-vs-probe,
    array-vs-hash), as rendered by ``PhysicalPlan.explain()`` and the
    variant's DAG rewrite.
    """
    air = ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    names = list(variants) if variants is not None else list(VARIANTS)
    out: Dict[str, Dict[str, str]] = {}
    for name in names:
        engine = AStoreEngine.variant(air, name)
        out[name] = {qid: engine.explain(SSB_QUERIES[qid]) for qid in ids}
    return out


def operator_breakdown(engines: Sequence[EngineUnderTest],
                       query_ids: Optional[Sequence[str]] = None,
                       repeat: int = 1) -> Dict[str, Dict[str, float]]:
    """Per-operator milliseconds per engine, summed over SSB queries.

    Every engine (A-Store variants and baselines alike) runs through the
    shared operator layer, so ``ExecutionStats.operator_seconds`` gives a
    uniform Fig. 10-style breakdown: which physical operator the time
    went to, comparable across engines.  With ``repeat > 1`` each query
    runs that many times and the per-repeat timings are averaged.
    """
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    rounds = max(1, repeat)
    breakdown: Dict[str, Dict[str, float]] = {e.name: {} for e in engines}
    for query_id in ids:
        sql = SSB_QUERIES[query_id]
        for engine in engines:
            per_op = breakdown[engine.name]
            for _ in range(rounds):
                result = engine.run(sql)
                for label, seconds in result.stats.operator_seconds.items():
                    per_op[label] = per_op.get(label, 0.0) + ms(seconds) / rounds
    return breakdown


def backend_scaling_sweep(sf: float = DEFAULT_SCALE,
                          backends: Sequence[str] = ("serial", "thread",
                                                     "process"),
                          worker_counts: Sequence[int] = (1, 2, 4),
                          query_ids: Optional[Sequence[str]] = None,
                          repeat: int = DEFAULT_REPEAT,
                          db: Optional[Database] = None,
                          check_rows: bool = True,
                          use_cache: bool = True) -> Dict[tuple, Dict[str, float]]:
    """Best-of-N milliseconds for every (backend, workers, SSB query) cell.

    This is the Section 5 speedup experiment over real cores: the same
    AIRScan_C_P_G engine swept across :data:`BACKENDS` entries and worker
    counts.  ``serial`` runs only at ``workers=1`` (more workers change
    nothing but partition bookkeeping).  With ``check_rows`` every cell's
    first result is compared against the serial reference, so the sweep
    doubles as a cross-backend differential.  Returns
    ``{(backend, workers): {query_id: ms}}``.
    """
    database = db if db is not None else ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    times: Dict[tuple, Dict[str, float]] = {}
    reference: Dict[str, list] = {}
    for backend in backends:
        for workers in worker_counts:
            if backend == "serial" and workers != min(worker_counts):
                continue
            engine = AStoreEngine.variant(
                database, "AIRScan_C_P_G", workers=workers,
                parallel_backend=backend, use_cache=use_cache)
            try:
                cell: Dict[str, float] = {}
                for query_id in ids:
                    sql = SSB_QUERIES[query_id]
                    seconds, result = best_of(lambda: engine.query(sql),
                                              repeat=repeat)
                    cell[query_id] = ms(seconds)
                    if check_rows:
                        rows = result.rows()
                        expected = reference.setdefault(query_id, rows)
                        if rows != expected:
                            raise AssertionError(
                                f"{backend}/workers={workers} changed the "
                                f"result of {query_id}")
                times[(backend, workers)] = cell
            finally:
                engine.close()
    return times


def scaling_rows(times: Dict[tuple, Dict[str, float]]) -> List[List]:
    """``[backend, workers, query..., AVG ms, speedup]`` rows for
    :func:`repro.bench.format_table`.

    Speedup is relative to the ``serial`` cell when the sweep includes
    one, otherwise to the first swept cell (whatever order the caller
    chose) — so a ``--backends process,thread`` run never silently
    mislabels its baseline.
    """
    averages = {
        key: (sum(cell.values()) / len(cell) if cell else 0.0)
        for key, cell in times.items()
    }
    baseline = next(
        (avg for (backend, _), avg in averages.items()
         if backend == "serial"),
        next(iter(averages.values()), 0.0))
    rows: List[List] = []
    for (backend, workers), cell in times.items():
        avg = averages[(backend, workers)]
        rows.append([backend, workers] + [cell[qid] for qid in cell]
                    + [avg, baseline / avg if avg else float("nan")])
    return rows


#: The three cache configurations a serving workload can run under.
QPS_MODES = ("cold", "compile", "serve")


def qps_sweep(sf: float = DEFAULT_SCALE,
              backends: Sequence[str] = ("serial",),
              worker_counts: Sequence[int] = (1,),
              query_ids: Optional[Sequence[str]] = None,
              rounds: int = 3,
              db: Optional[Database] = None,
              modes: Sequence[str] = QPS_MODES,
              check_rows: bool = True) -> Dict[tuple, dict]:
    """Repeated-SSB-flight throughput, cold vs warm (the serving story).

    For every (backend, workers) cell the flight of SSB queries runs
    under three cache configurations:

    * ``cold`` — caching disabled: every execution re-pays parse, plan,
      and leaf processing (the pre-cache engine);
    * ``compile`` — the plan/leaf/axis tiers are live: repeats skip
      recompilation but still execute scan + aggregation;
    * ``serve`` — additionally the mutation-stamped result tier: exact
      repeats are stamped lookups.

    Every mode runs one unmeasured priming/differential flight, then
    ``rounds`` measured flights of pure ``query`` calls; per-query
    times are medians across the measured flights and ``qps`` is
    aggregate throughput (queries / total measured seconds).  With
    ``check_rows`` every mode's results are compared against the first
    recorded reference, so the sweep doubles as the cache on/off
    differential.  Returns ``{(backend, workers, mode): cell}`` where
    each cell carries ``per_query_ms``, ``flight_ms``, ``qps``,
    ``speedup_vs_cold``, and the per-tier ``hit_rates`` observed during
    the measured flights.
    """
    database = db if db is not None else ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    rounds = max(1, rounds)
    reference: Dict[str, list] = {}
    out: Dict[tuple, dict] = {}
    for backend in backends:
        for workers in worker_counts:
            if backend == "serial" and workers != min(worker_counts):
                continue
            for mode in modes:
                engine = AStoreEngine.variant(
                    database, "AIRScan_C_P_G", workers=workers,
                    parallel_backend=backend,
                    use_cache=(mode != "cold"),
                    cache_results=(mode == "serve"))
                try:
                    out[(backend, workers, mode)] = _qps_cell(
                        engine, ids, rounds, mode, reference, check_rows)
                finally:
                    engine.close()
    for (backend, workers, mode), cell in out.items():
        cold = out.get((backend, workers, "cold"))
        cell["speedup_vs_cold"] = (
            cell["qps"] / cold["qps"] if cold and cold["qps"] else
            float("nan"))
    return out


def _qps_cell(engine, ids: Sequence[str], rounds: int, mode: str,
              reference: Dict[str, list], check_rows: bool) -> dict:
    """Prime + differential-check (unmeasured), then timed flights.

    Every mode runs one unmeasured flight first: it warms the cache
    tiers for the warm modes, provides the rows for the cache on/off
    differential in all modes, and keeps ``rows()`` materialization and
    row comparison out of the timed window — the measured flights
    contain nothing but ``engine.query`` calls.
    """
    from ..engine.cache import QueryCache

    for query_id in ids:  # priming + differential flight (not measured)
        result = engine.query(SSB_QUERIES[query_id])
        _check_reference(reference, query_id, result, mode, check_rows)
    before = engine.cache.counters() if engine.cache else {}
    per_query: Dict[str, List[float]] = {query_id: [] for query_id in ids}
    flight_seconds: List[float] = []
    for _ in range(rounds):
        t_flight = time.perf_counter()
        for query_id in ids:
            t0 = time.perf_counter()
            engine.query(SSB_QUERIES[query_id])
            per_query[query_id].append(time.perf_counter() - t0)
        flight_seconds.append(time.perf_counter() - t_flight)
    after = engine.cache.counters() if engine.cache else {}
    total = sum(flight_seconds)
    return {
        "per_query_ms": {query_id: median_ms(samples)
                         for query_id, samples in per_query.items()},
        "flight_ms": median_ms(flight_seconds),
        "qps": (len(ids) * rounds / total) if total else float("inf"),
        "hit_rates": QueryCache.hit_rates(before, after),
    }


def _check_reference(reference: Dict[str, list], query_id: str, result,
                     mode: str, check_rows: bool) -> None:
    if not check_rows:
        return
    rows = result.rows()
    expected = reference.setdefault(query_id, rows)
    if rows != expected:
        raise AssertionError(
            f"cache mode {mode!r} changed the result of {query_id}")


def pruning_sweep(sf: float = DEFAULT_SCALE,
                  backends: Sequence[str] = ("serial",),
                  query_ids: Optional[Sequence[str]] = None,
                  rounds: int = 5,
                  workers: int = 1,
                  db: Optional[Database] = None,
                  check_rows: bool = True) -> Dict[tuple, dict]:
    """Cold execution with data skipping on vs off (the zone-map story).

    Every (backend, mode) cell runs each query cold — caching disabled,
    so parse, plan, and leaf processing are re-paid per execution; only
    the zone maps themselves persist, as they are data statistics shared
    per database — ``rounds`` times and records the median, together
    with the skipped / fully-accepted / scanned block counts and the
    cost-gate counter from ``ExecutionStats``.  The pruned and unpruned
    rounds of one query *interleave* (on/off/on/off…), so slow host
    drift — frequency scaling, a noisy neighbour — lands evenly on both
    modes instead of biasing whichever cell ran second; the per-query
    speedups this feeds are what the CI regression floor judges.  With
    ``check_rows`` the pruned rows must equal the unpruned reference,
    so the sweep doubles as the pruning on/off differential.  Returns
    ``{(backend, mode): {query_id: cell}}`` with per-query
    ``median_ms``, ``morsels_skipped``, ``morsels_accepted``,
    ``morsels_scanned``, ``morsels_gated`` and ``morsels``;
    flight-level speedups come from :func:`pruning_speedups` and
    per-SSB-family aggregates from :func:`pruning_families`.
    """
    database = db if db is not None else ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    rounds = max(1, rounds)
    modes = ("pruned", "unpruned")
    out: Dict[tuple, dict] = {}
    for backend in backends:
        engines = {
            mode: AStoreEngine.variant(
                database, "AIRScan_C_P_G", workers=workers,
                parallel_backend=backend, use_cache=False,
                use_pruning=(mode == "pruned"))
            for mode in modes}
        try:
            cells = {mode: {} for mode in modes}
            for query_id in ids:
                sql = SSB_QUERIES[query_id]
                reference = None
                last = {}
                samples = {mode: [] for mode in modes}
                for mode in modes:  # warm zone maps, not timed
                    result = engines[mode].query(sql)
                    if check_rows:
                        rows = result.rows()
                        if reference is None:
                            reference = rows
                        elif rows != reference:
                            raise AssertionError(
                                f"pruning mode {mode!r} changed the "
                                f"result of {query_id}")
                for _ in range(rounds):
                    for mode in modes:
                        t0 = time.perf_counter()
                        last[mode] = engines[mode].query(sql)
                        samples[mode].append(time.perf_counter() - t0)
                for mode in modes:
                    stats = last[mode].stats
                    cells[mode][query_id] = {
                        "median_ms": median_ms(samples[mode]),
                        "morsels_skipped": stats.morsels_skipped,
                        "morsels_accepted": stats.morsels_accepted,
                        "morsels_scanned": stats.morsels_scanned,
                        "morsels_gated": stats.prune_gated,
                        "morsels": stats.morsels,
                    }
            for mode in modes:
                out[(backend, mode)] = cells[mode]
        finally:
            for engine in engines.values():
                engine.close()
    return out


def pruning_speedups(times: Dict[tuple, dict]) -> Dict[str, float]:
    """Per-backend flight speedup (unpruned total / pruned total)."""
    speedups: Dict[str, float] = {}
    for backend in {backend for backend, _ in times}:
        pruned = sum(q["median_ms"]
                     for q in times[(backend, "pruned")].values())
        unpruned = sum(q["median_ms"]
                       for q in times[(backend, "unpruned")].values())
        speedups[backend] = unpruned / pruned if pruned else float("nan")
    return speedups


def pruning_rows(times: Dict[tuple, dict],
                 query_ids: Sequence[str]) -> List[List]:
    """``[backend, query, pruned ms, unpruned ms, speedup, skipped,
    accepted, gated, morsels]`` rows for
    :func:`repro.bench.format_table`."""
    rows: List[List] = []
    backends = sorted({backend for backend, _ in times})
    for backend in backends:
        pruned = times[(backend, "pruned")]
        unpruned = times[(backend, "unpruned")]
        for query_id in query_ids:
            p, u = pruned[query_id], unpruned[query_id]
            rows.append([
                backend, query_id, p["median_ms"], u["median_ms"],
                u["median_ms"] / p["median_ms"] if p["median_ms"] else
                float("nan"),
                p["morsels_skipped"], p["morsels_accepted"],
                p.get("morsels_gated", 0), p["morsels"],
            ])
    return rows


def ssb_family(query_id: str) -> str:
    """The SSB query family of *query_id* (``"Q2.1"`` → ``"Q2"``)."""
    return query_id.split(".", 1)[0]


def pruning_families(times: Dict[tuple, dict],
                     query_ids: Sequence[str]) -> Dict[str, Dict[str, dict]]:
    """Per-SSB-family pruning aggregates, per backend.

    Sums the pruned cells' block counters over each family
    (``Q1.1``/``Q1.2``/``Q1.3`` → ``Q1``) and computes the family's
    flight speedup (unpruned family total ms / pruned family total ms).
    Returns ``{backend: {family: {"skipped", "accepted", "scanned",
    "gated", "morsels", "pruned_ms", "unpruned_ms", "speedup"}}}``.
    """
    out: Dict[str, Dict[str, dict]] = {}
    for backend in sorted({backend for backend, _ in times}):
        pruned = times[(backend, "pruned")]
        unpruned = times[(backend, "unpruned")]
        families: Dict[str, dict] = {}
        for query_id in query_ids:
            agg = families.setdefault(ssb_family(query_id), {
                "skipped": 0, "accepted": 0, "scanned": 0, "gated": 0,
                "morsels": 0, "pruned_ms": 0.0, "unpruned_ms": 0.0,
            })
            p = pruned[query_id]
            agg["skipped"] += p["morsels_skipped"]
            agg["accepted"] += p["morsels_accepted"]
            agg["scanned"] += p.get("morsels_scanned", 0)
            agg["gated"] += p.get("morsels_gated", 0)
            agg["morsels"] += p["morsels"]
            agg["pruned_ms"] += p["median_ms"]
            agg["unpruned_ms"] += unpruned[query_id]["median_ms"]
        for agg in families.values():
            agg["speedup"] = (agg["unpruned_ms"] / agg["pruned_ms"]
                              if agg["pruned_ms"] else float("nan"))
        out[backend] = families
    return out


def pruning_family_rows(times: Dict[tuple, dict],
                        query_ids: Sequence[str]) -> List[List]:
    """``[backend, family, skipped, accepted, scanned, gated, morsels,
    speedup]`` rows for :func:`repro.bench.format_table`."""
    rows: List[List] = []
    for backend, families in pruning_families(times, query_ids).items():
        for family in sorted(families):
            agg = families[family]
            rows.append([
                backend, family, agg["skipped"], agg["accepted"],
                agg["scanned"], agg["gated"], agg["morsels"],
                agg["speedup"],
            ])
    return rows


def pruning_payload(times: Dict[tuple, dict], query_ids: Sequence[str],
                    rounds: Optional[int] = None) -> dict:
    """The ``BENCH_*.json`` payload for a pruning sweep (per-query cells
    plus the per-SSB-family breakdown of :func:`pruning_families`)."""
    speedups = pruning_speedups(times)
    families = pruning_families(times, query_ids)
    cells = []
    for (backend, mode), cell in times.items():
        cells.append({
            "backend": backend,
            "mode": mode,
            "speedup_vs_unpruned": (speedups[backend] if mode == "pruned"
                                    else None),
            "per_query": {query_id: cell[query_id]
                          for query_id in query_ids},
            "families": (families[backend] if mode == "pruned" else None),
        })
    payload = {"queries": list(query_ids), "cells": cells}
    if rounds is not None:
        payload["rounds"] = rounds
    return payload


def concurrency_sweep(sf: float = DEFAULT_SCALE,
                      client_counts: Sequence[int] = (1, 8, 64),
                      query_ids: Optional[Sequence[str]] = None,
                      rounds: int = 2,
                      backend: str = "serial",
                      workers: int = 1,
                      max_concurrency: Optional[int] = None,
                      db: Optional[Database] = None,
                      check_rows: bool = True) -> Dict[int, dict]:
    """Serve-mode throughput and latency under concurrent clients.

    For every client count an :class:`~repro.engine.serve.AsyncEngine`
    (serving tier on, over *backend*/*workers*) runs N client
    coroutines on one event loop; each client awaits the SSB flight
    ``rounds`` times, with a per-client offset into the query order so
    distinct queries are genuinely in flight together.  One unmeasured
    warm-up flight primes the cache tiers (and provides the reference
    rows for the differential); the measured window then contains
    nothing but ``await engine.query`` calls.  Returns ``{clients:
    cell}`` with aggregate ``qps``, latency percentiles ``p50_ms`` /
    ``p95_ms`` / ``p99_ms``, the executed/served/coalesced counters,
    and ``speedup_vs_1`` (aggregate qps relative to the 1-client cell).
    """
    import asyncio

    import numpy as np

    from ..engine.executor import AStoreEngine, EngineOptions
    from ..engine.serve import AsyncEngine

    database = db if db is not None else ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    rounds = max(1, rounds)
    reference: Dict[str, list] = {}
    out: Dict[int, dict] = {}

    async def client(engine: AsyncEngine, offset: int,
                     latencies: List[float]) -> None:
        for round_no in range(rounds):
            for i in range(len(ids)):
                sql = SSB_QUERIES[ids[(i + offset) % len(ids)]]
                t0 = time.perf_counter()
                await engine.query(sql)
                latencies.append(time.perf_counter() - t0)

    async def run_cell(nclients: int) -> dict:
        options = EngineOptions(parallel_backend=backend, workers=workers,
                                cache_results=True)
        async with AsyncEngine(database, options=options,
                               max_concurrency=max_concurrency) as engine:
            for query_id in ids:  # warm-up + differential (not measured)
                result = await engine.query(SSB_QUERIES[query_id])
                if check_rows:
                    rows = result.rows()
                    expected = reference.setdefault(query_id, rows)
                    if rows != expected:
                        raise AssertionError(
                            f"{nclients} concurrent clients changed the "
                            f"result of {query_id}")
            before = engine.stats.snapshot()
            latencies: List[float] = []
            t0 = time.perf_counter()
            await asyncio.gather(*(client(engine, offset, latencies)
                                   for offset in range(nclients)))
            wall = time.perf_counter() - t0
            after = engine.stats.snapshot()
        lat_ms = np.asarray(latencies) * 1e3
        return {
            "clients": nclients,
            "queries": len(latencies),
            "qps": len(latencies) / wall if wall else float("inf"),
            "wall_ms": wall * 1e3,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p95_ms": float(np.percentile(lat_ms, 95)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
            "peak_inflight": after["peak_inflight"],
            "served_on_loop": after["served_on_loop"] - before["served_on_loop"],
            "coalesced": after["coalesced"] - before["coalesced"],
            "executed": after["executed"] - before["executed"],
        }

    # serial reference for the differential comes from a plain engine
    if check_rows:
        probe = AStoreEngine(database, EngineOptions(
            parallel_backend="serial", use_cache=False))
        for query_id in ids:
            reference[query_id] = probe.query(SSB_QUERIES[query_id]).rows()

    for nclients in client_counts:
        out[int(nclients)] = asyncio.run(run_cell(int(nclients)))
    if not out:
        return out
    # speedups are honest about their baseline: the 1-client cell when
    # swept, else the smallest swept client count (recorded per cell)
    base_clients = 1 if 1 in out else min(out)
    base_qps = out[base_clients]["qps"]
    for cell in out.values():
        cell["baseline_clients"] = base_clients
        cell["speedup_vs_base"] = (cell["qps"] / base_qps if base_qps
                                   else float("nan"))
    return out


def concurrency_rows(times: Dict[int, dict]) -> List[List]:
    """``[clients, queries, qps, p50, p95, p99, x vs baseline, served,
    coalesced, executed]`` rows for :func:`repro.bench.format_table`
    (the baseline client count is recorded in every cell)."""
    rows: List[List] = []
    for nclients in sorted(times):
        cell = times[nclients]
        rows.append([
            nclients, cell["queries"], cell["qps"], cell["p50_ms"],
            cell["p95_ms"], cell["p99_ms"], cell["speedup_vs_base"],
            cell["served_on_loop"], cell["coalesced"], cell["executed"],
        ])
    return rows


def concurrency_payload(times: Dict[int, dict], query_ids: Sequence[str],
                        rounds: Optional[int] = None,
                        backend: Optional[str] = None,
                        workers: Optional[int] = None) -> dict:
    """The ``BENCH_*.json`` payload for a concurrency sweep."""
    payload = {
        "queries": list(query_ids),
        "cells": [times[nclients] for nclients in sorted(times)],
    }
    if rounds is not None:
        payload["rounds"] = rounds
    if backend is not None:
        payload["backend"] = backend
    if workers is not None:
        payload["workers"] = workers
    return payload


def fleet_sweep(sf: float = DEFAULT_SCALE,
                worker_counts: Sequence[int] = (1, 2, 4),
                client_counts: Sequence[int] = (1, 8, 64),
                query_ids: Optional[Sequence[str]] = None,
                rounds: int = 2,
                db: Optional[Database] = None,
                database_path: str = "",
                max_concurrency: Optional[int] = None,
                check_rows: bool = True) -> Dict[tuple, dict]:
    """Multi-process serving-fleet throughput over real TCP clients.

    For every fleet size a :class:`~repro.engine.fleet.ServeFleet`
    exports the database into a shared-memory arena once and spawns N
    server processes over one listening socket and one cross-process
    query store.  Per fleet, a differential pass first visits as many
    distinct worker pids as it can reach and checks every query's rows
    against a serial no-cache ground truth (JSON round-tripped, so the
    comparison sees exactly what a client would).  Each ``(workers,
    clients)`` cell then runs *clients* concurrent TCP connections,
    each awaiting the flight ``rounds`` times with a per-client query
    offset; the measured window contains nothing but request/response
    round trips.  The fleet is stopped with a SHUTDOWN admin line (the
    fan-out drain path, not a local teardown) between fleet sizes.

    Returns ``{(workers, clients): cell}`` with ``qps``, latency
    percentiles, distinct ``pids`` observed, cumulative cross-process
    ``shared_hits``, and ``speedup_vs_base_workers`` (same client
    count, smallest swept fleet).  Cells additionally record the
    fleet's ``clean_exit`` flag once it is known.
    """
    import asyncio
    import json as _json
    import threading

    import numpy as np

    from ..engine.executor import AStoreEngine, EngineOptions
    from ..engine.fleet import ServeFleet

    database = db if db is not None else ssb_database(sf, airify=True)
    ids = list(query_ids) if query_ids is not None else list(SSB_QUERIES)
    rounds = max(1, rounds)
    out: Dict[tuple, dict] = {}

    reference: Dict[str, list] = {}
    if check_rows:
        probe = AStoreEngine(database, EngineOptions(
            parallel_backend="serial", use_cache=False))
        for query_id in ids:
            reference[query_id] = _json.loads(
                _json.dumps(probe.query(SSB_QUERIES[query_id]).rows()))

    async def rpc(reader, writer, line: str) -> dict:
        writer.write((line + "\n").encode())
        await writer.drain()
        raw = await reader.readline()
        if not raw:
            raise AssertionError("fleet closed the connection mid-request")
        resp = _json.loads(raw)
        if isinstance(resp, dict) and "error" in resp:
            raise AssertionError(f"fleet error: {resp['error']}")
        return resp

    async def differential(host: str, port: int, nworkers: int) -> set:
        """Visit up to *nworkers* distinct pids; full checked flight each."""
        seen: set = set()
        for _ in range(24 * nworkers):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                pid = (await rpc(reader, writer, "STATS"))["pid"]
                if pid in seen:
                    continue
                seen.add(pid)
                for query_id in ids:
                    resp = await rpc(reader, writer, _json.dumps(
                        {"sql": SSB_QUERIES[query_id]}))
                    if check_rows and resp["rows"] != reference[query_id]:
                        raise AssertionError(
                            f"fleet worker {pid} changed the result of "
                            f"{query_id}")
            finally:
                writer.close()
            if len(seen) >= nworkers:
                break
        return seen

    async def collect_stats(host: str, port: int, nworkers: int) -> dict:
        """Cumulative fleet stats: distinct pids + shared-tier hits."""
        per_pid: Dict[int, dict] = {}
        for _ in range(24 * nworkers):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                payload = await rpc(reader, writer, "STATS")
            finally:
                writer.close()
            per_pid[payload["pid"]] = payload
            if len(per_pid) >= nworkers:
                break
        shared_hits = sum(
            tier.get("shared_hits", 0)
            for payload in per_pid.values()
            for tier in payload.get("cache", {}).values())
        store = next((payload.get("shared_store") or {}
                      for payload in per_pid.values()), {})
        return {"pids": sorted(per_pid), "shared_hits": shared_hits,
                "store": store}

    async def run_cell(host: str, port: int, nworkers: int,
                       nclients: int) -> dict:
        latencies: List[float] = []

        async def client(offset: int) -> None:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _round in range(rounds):
                    for i in range(len(ids)):
                        sql = SSB_QUERIES[ids[(i + offset) % len(ids)]]
                        t0 = time.perf_counter()
                        await rpc(reader, writer, _json.dumps({"sql": sql}))
                        latencies.append(time.perf_counter() - t0)
            finally:
                writer.close()

        t0 = time.perf_counter()
        await asyncio.gather(*(client(offset) for offset in range(nclients)))
        wall = time.perf_counter() - t0
        stats = await collect_stats(host, port, nworkers)
        lat_ms = np.asarray(latencies) * 1e3
        return {
            "workers": nworkers,
            "clients": nclients,
            "queries": len(latencies),
            "qps": len(latencies) / wall if wall else float("inf"),
            "wall_ms": wall * 1e3,
            "p50_ms": float(np.percentile(lat_ms, 50)),
            "p95_ms": float(np.percentile(lat_ms, 95)),
            "p99_ms": float(np.percentile(lat_ms, 99)),
            "pids": stats["pids"],
            "shared_hits": stats["shared_hits"],
            "store": stats["store"],
        }

    async def shutdown(host: str, port: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await rpc(reader, writer, "SHUTDOWN")
        finally:
            writer.close()

    for nworkers in worker_counts:
        nworkers = int(nworkers)
        fleet = ServeFleet(
            database, database_path=database_path,
            options=EngineOptions(parallel_backend="serial",
                                  cache_results=True),
            workers=nworkers, port=0, max_concurrency=max_concurrency)
        host, port = fleet.start()
        exit_holder: List[int] = []
        waiter = threading.Thread(
            target=lambda f=fleet: exit_holder.append(f.wait()), daemon=True)
        waiter.start()
        cells: List[dict] = []
        try:
            await_pids = asyncio.run(differential(host, port, nworkers))
            for nclients in client_counts:
                cell = asyncio.run(run_cell(host, port, nworkers,
                                            int(nclients)))
                cell["differential_pids"] = sorted(await_pids)
                out[(nworkers, int(nclients))] = cell
                cells.append(cell)
        finally:
            try:
                asyncio.run(shutdown(host, port))
            except (OSError, AssertionError):  # already draining
                pass
            waiter.join(timeout=120)
            fleet.close()
        clean = bool(exit_holder) and exit_holder[0] == 0
        for cell in cells:
            cell["clean_exit"] = clean

    # speedups against the smallest swept fleet at the same client count
    if out:
        base_workers = min(w for w, _ in out)
        for (nworkers, nclients), cell in out.items():
            base = out.get((base_workers, nclients))
            cell["baseline_workers"] = base_workers
            cell["speedup_vs_base_workers"] = (
                cell["qps"] / base["qps"] if base and base["qps"]
                else float("nan"))
    return out


def fleet_rows(times: Dict[tuple, dict]) -> List[List]:
    """``[fleet, clients, queries, qps, p50, p95, p99, x vs baseline,
    shared hits, pids]`` rows for :func:`repro.bench.format_table`."""
    rows: List[List] = []
    for key in sorted(times):
        cell = times[key]
        rows.append([
            cell["workers"], cell["clients"], cell["queries"], cell["qps"],
            cell["p50_ms"], cell["p95_ms"], cell["p99_ms"],
            cell["speedup_vs_base_workers"], cell["shared_hits"],
            len(cell["pids"]),
        ])
    return rows


def fleet_payload(times: Dict[tuple, dict], query_ids: Sequence[str],
                  rounds: Optional[int] = None) -> dict:
    """The ``BENCH_*.json`` payload for a fleet sweep."""
    payload = {
        "queries": list(query_ids),
        "cells": [times[key] for key in sorted(times)],
    }
    if rounds is not None:
        payload["rounds"] = rounds
    return payload


def qps_rows(times: Dict[tuple, dict]) -> List[List]:
    """``[backend, workers, mode, qps, flight ms, x vs cold, hits]``
    rows for :func:`repro.bench.format_table`."""
    rows: List[List] = []
    for (backend, workers, mode), cell in times.items():
        hit_note = " ".join(
            f"{tier}:{rate * 100:.0f}%"
            for tier, rate in sorted(cell["hit_rates"].items())) or "-"
        rows.append([backend, workers, mode, cell["qps"],
                     cell["flight_ms"], cell["speedup_vs_cold"], hit_note])
    return rows


def qps_payload(times: Dict[tuple, dict], query_ids: Sequence[str],
                sf: Optional[float] = None,
                repeat_rounds: Optional[int] = None) -> dict:
    """The ``BENCH_*.json`` payload for a qps sweep."""
    cells = []
    for (backend, workers, mode), cell in times.items():
        cells.append({
            "backend": backend,
            "workers": workers,
            "mode": mode,
            "qps": cell["qps"],
            "flight_ms": cell["flight_ms"],
            "speedup_vs_cold": cell["speedup_vs_cold"],
            "per_query_median_ms": cell["per_query_ms"],
            "cache_hit_rates": cell["hit_rates"],
        })
    payload = {"queries": list(query_ids), "cells": cells}
    if sf is not None:
        payload["scale_factor"] = sf
    if repeat_rounds is not None:
        payload["rounds"] = repeat_rounds
    return payload


def breakdown_rows(breakdown: Dict[str, Dict[str, float]]) -> List[List]:
    """``[engine, operator, ms]`` rows, slowest operator first."""
    rows: List[List] = []
    for engine_name, per_op in breakdown.items():
        ranked = sorted(per_op.items(), key=lambda item: item[1],
                        reverse=True)
        for label, total_ms in ranked:
            rows.append([engine_name, label, total_ms])
    return rows


# -- distributed scatter-gather sweep -----------------------------------------


def distributed_sweep(database_path: str = "", node_count: int = 2,
                      query_ids: Optional[Sequence[str]] = None,
                      sf: float = DEFAULT_SCALE,
                      db: Optional[Database] = None,
                      node_timeout: float = 15.0,
                      kill_index: int = 0) -> dict:
    """The remote backend's recovery benchmark: two SSB flights over
    *node_count* local shard nodes, differentially checked against the
    serial engine.

    * ``healthy`` — every node up for the whole flight; per-query
      latency plus a rows-identical check per query;
    * ``degraded`` — a fresh node set, with node *kill_index* SIGKILLed
      halfway through the flight: the coordinator must retry, declare
      the node lost, re-shard its work onto survivors, and still return
      the serial answer for every query.  The phase records the
      engine-side recovery counters (retries / re-shards / nodes lost /
      locally-degraded shards) and whether the survivors shut down
      cleanly — exactly what the CI smoke asserts on.

    With no *database_path*, the cached SSB database for *sf* is saved
    to a temporary archive (nodes load their own copies from it).
    """
    import json
    import os
    import tempfile

    from ..engine.distributed import LocalNodes
    from ..engine.executor import EngineOptions
    from ..io import load_database, save_database

    query_ids = list(query_ids or SSB_QUERIES)
    scratch = ""
    if not database_path:
        if db is None:
            db = ssb_database(sf)
        fd, scratch = tempfile.mkstemp(prefix="astore-dist-", suffix=".npz")
        os.close(fd)
        save_database(db, scratch)
        database_path = scratch
    coordinator_db = load_database(database_path)

    def canonical(result) -> list:
        # JSON round-trip: the same normalization the serve layer applies
        return json.loads(json.dumps(
            [[str(value) for value in row] for row in result.rows()]))

    with AStoreEngine(coordinator_db, EngineOptions(
            parallel_backend="serial", use_cache=False)) as serial:
        truth = {qid: canonical(serial.query(SSB_QUERIES[qid]))
                 for qid in query_ids}

    def flight(nodes: "LocalNodes", kill_at: Optional[int] = None) -> dict:
        cell = {"per_query_ms": {}, "mismatches": [], "retries": 0,
                "reshards": 0, "nodes_lost": 0, "local_shards": 0,
                "shard_fallbacks": 0}
        with AStoreEngine(coordinator_db, EngineOptions(
                parallel_backend="remote", remote_nodes=nodes.addresses,
                node_timeout=node_timeout, use_cache=False)) as engine:
            for position, qid in enumerate(query_ids):
                if kill_at is not None and position == kill_at:
                    nodes.kill(kill_index)
                t0 = time.perf_counter()
                result = engine.query(SSB_QUERIES[qid])
                cell["per_query_ms"][qid] = round(
                    ms(time.perf_counter() - t0), 3)
                if canonical(result) != truth[qid]:
                    cell["mismatches"].append(qid)
                stats = result.stats
                cell["retries"] += stats.remote_retries
                cell["reshards"] += stats.remote_reshards
                cell["nodes_lost"] += stats.remote_nodes_lost
                cell["local_shards"] += stats.remote_local_shards
                cell["shard_fallbacks"] += stats.shard_fallbacks
        cell["flight_ms"] = round(sum(cell["per_query_ms"].values()), 3)
        return cell

    try:
        with LocalNodes(database_path, count=node_count) as nodes:
            healthy = flight(nodes)
            healthy["clean_shutdown"] = nodes.shutdown()
        with LocalNodes(database_path, count=node_count) as nodes:
            degraded = flight(nodes, kill_at=max(1, len(query_ids) // 2))
            degraded["killed_index"] = kill_index
            degraded["clean_shutdown"] = nodes.shutdown()
    finally:
        if scratch:
            with __import__("contextlib").suppress(OSError):
                os.unlink(scratch)
    recovered = (not degraded["mismatches"]
                 and degraded["reshards"] > 0
                 and degraded["nodes_lost"] >= 1)
    return {"node_count": node_count, "queries": query_ids,
            "healthy": healthy, "degraded": degraded,
            "recovered": recovered}


def distributed_rows(times: dict) -> List[List]:
    """``[phase, queries, ok, flight ms, retries, reshards, lost,
    local, shutdown]`` rows for :func:`repro.bench.format_table`."""
    rows: List[List] = []
    for phase in ("healthy", "degraded"):
        cell = times[phase]
        ok = "ok" if not cell["mismatches"] else (
            "MISMATCH:" + ",".join(cell["mismatches"]))
        rows.append([phase, len(cell["per_query_ms"]), ok,
                     cell["flight_ms"], cell["retries"], cell["reshards"],
                     cell["nodes_lost"], cell["local_shards"],
                     "clean" if cell["clean_shutdown"] else "DIRTY"])
    return rows


def distributed_payload(times: dict) -> dict:
    """The ``BENCH_*.json`` payload for a distributed sweep."""
    return dict(times)


# -- self-healing cluster sweep ------------------------------------------------


def membership_sweep(database_path: str = "", node_count: int = 2,
                     query_ids: Optional[Sequence[str]] = None,
                     sf: float = DEFAULT_SCALE,
                     db: Optional[Database] = None,
                     node_timeout: float = 15.0,
                     kill_index: int = 0,
                     overload_clients: int = 8,
                     overload_requests: int = 4,
                     max_pending: int = 2) -> dict:
    """The self-healing benchmark: one coordinator engine over a live
    membership view, driven through four phases.

    * ``healthy`` — *node_count* nodes self-register and serve a full
      differentially-checked flight;
    * ``kill`` — node *kill_index* is SIGKILLed before the flight: the
      coordinator re-shards its work and the membership prober declares
      it dead (``dead_detected``);
    * ``rejoin`` — the node restarts on its old port, re-registers
      (incarnation bump), folds back into the scatter set
      (``joined >= 1``) and the flight is exact again;
    * ``overload`` — the same engine behind the serve front door with a
      small ``max_pending``: *overload_clients* concurrent clients each
      fire *overload_requests* queries; shed requests answer structured
      ``{"overloaded": true}`` errors while every accepted answer stays
      exact.  A small armed ``delay@serve.request`` makes the flood
      deterministic on fast hosts.

    ``healed`` summarizes the whole story: loss seen, death detected,
    rejoin served, overload shed, every answer exact, clean shutdown.
    """
    import asyncio
    import contextlib
    import json
    import os
    import tempfile

    from ..engine.chaos import clear_chaos, install_chaos
    from ..engine.distributed import LocalNodes
    from ..engine.executor import EngineOptions
    from ..engine.membership import MembershipServer
    from ..engine.serve import AsyncEngine, serve_tcp
    from ..engine.sharding import database_stamp
    from ..io import load_database, save_database

    query_ids = list(query_ids or SSB_QUERIES)
    scratch = ""
    if not database_path:
        if db is None:
            db = ssb_database(sf)
        fd, scratch = tempfile.mkstemp(prefix="astore-member-",
                                       suffix=".npz")
        os.close(fd)
        save_database(db, scratch)
        database_path = scratch
    coordinator_db = load_database(database_path)

    def canonical(rows) -> list:
        return json.loads(json.dumps(
            [[str(value) for value in row] for row in rows]))

    with AStoreEngine(coordinator_db, EngineOptions(
            parallel_backend="serial", use_cache=False)) as serial:
        truth = {qid: canonical(serial.query(SSB_QUERIES[qid]).rows())
                 for qid in query_ids}

    _BREAKER_KEYS = ("breaker_opened", "breaker_half_open",
                     "breaker_closed")

    def flight(engine) -> dict:
        cell = {"per_query_ms": {}, "mismatches": [], "joined": 0,
                "lost": 0, "reshards": 0, "local_shards": 0}
        before = dict(engine._shard_backend.counters) \
            if engine._shard_backend is not None else {}
        for qid in query_ids:
            t0 = time.perf_counter()
            result = engine.query(SSB_QUERIES[qid])
            cell["per_query_ms"][qid] = round(
                ms(time.perf_counter() - t0), 3)
            if canonical(result.rows()) != truth[qid]:
                cell["mismatches"].append(qid)
            stats = result.stats
            cell["joined"] += stats.remote_nodes_joined
            cell["lost"] += stats.remote_nodes_lost
            cell["reshards"] += stats.remote_reshards
            cell["local_shards"] += stats.remote_local_shards
        after = engine._shard_backend.counters
        cell["breaker"] = {key: after[key] - before.get(key, 0)
                           for key in _BREAKER_KEYS}
        cell["flight_ms"] = round(sum(cell["per_query_ms"].values()), 3)
        return cell

    def wait_for(predicate, timeout: float = 12.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.05)
        return False

    times: dict = {"node_count": node_count, "queries": query_ids,
                   "max_pending": max_pending}
    options = EngineOptions(parallel_backend="remote", use_cache=False,
                            node_timeout=node_timeout, breaker_reset=30.0)
    with MembershipServer(
            stamps_fn=lambda: database_stamp(coordinator_db),
            probe_seconds=0.1, probe_timeout=1.0) as server:
        options = dataclasses_replace(options, membership=server.address)
        with LocalNodes(database_path, count=node_count,
                        membership=server.address) as nodes:
            killed_address = nodes.nodes[kill_index].address
            with AStoreEngine(coordinator_db, options) as engine:
                times["healthy"] = flight(engine)

                nodes.kill(kill_index)
                times["kill"] = flight(engine)
                times["kill"]["killed_index"] = kill_index
                # the scatter wave or the heartbeat loop noticed either
                # way; the canonical count lives in the backend counters
                times["kill"]["lost"] = max(
                    times["kill"]["lost"],
                    engine._shard_backend.counters["nodes_lost"])
                times["dead_detected"] = wait_for(
                    lambda: server.view.states().get(
                        killed_address) == "dead")

                nodes.restart(kill_index)
                member = server.view.get(killed_address)
                times["rejoin_incarnation"] = (
                    member.incarnation if member else 0)
                time.sleep(0.3)  # one membership-client TTL
                times["rejoin"] = flight(engine)
                # the view refresh can straddle a wave boundary: keep
                # flying until the rejoin lands (bounded)
                deadline = time.monotonic() + 10.0
                while (times["rejoin"]["joined"] == 0
                       and time.monotonic() < deadline):
                    extra = engine.query(SSB_QUERIES[query_ids[0]])
                    times["rejoin"]["joined"] += \
                        extra.stats.remote_nodes_joined
                    time.sleep(0.1)

                # overload: the same membership-backed engine behind the
                # serve front door, flooded past max_pending
                install_chaos("delay@serve.request:1x0=0.05")
                try:
                    async def flood():
                        aengine = AsyncEngine(coordinator_db, options)
                        qserver = await serve_tcp(
                            aengine, "127.0.0.1", 0,
                            max_pending=max_pending)
                        host, port = qserver.address
                        cell = {"requests": 0, "accepted": 0, "shed": 0,
                                "mismatches": []}

                        async def client(i: int) -> None:
                            reader, writer = (
                                await asyncio.open_connection(host, port))
                            for j in range(overload_requests):
                                qid = query_ids[(i + j) % len(query_ids)]
                                writer.write(json.dumps(
                                    {"sql": SSB_QUERIES[qid],
                                     "id": f"{i}.{j}"}).encode() + b"\n")
                                await writer.drain()
                                response = json.loads(
                                    await reader.readline())
                                cell["requests"] += 1
                                if response.get("overloaded"):
                                    cell["shed"] += 1
                                else:
                                    cell["accepted"] += 1
                                    if canonical(response.get(
                                            "rows", [])) != truth[qid]:
                                        cell["mismatches"].append(qid)
                            writer.close()

                        t0 = time.perf_counter()
                        await asyncio.gather(
                            *(client(i) for i in range(overload_clients)))
                        cell["flight_ms"] = round(
                            ms(time.perf_counter() - t0), 3)
                        cell["server_shed"] = qserver.shed
                        await qserver.stop()
                        await aengine.aclose()
                        return cell

                    times["overload"] = asyncio.run(flood())
                finally:
                    clear_chaos()
                times["overload"]["shed_rate"] = round(
                    times["overload"]["shed"]
                    / max(1, times["overload"]["requests"]), 3)
            times["clean_shutdown"] = nodes.shutdown()
        times["transitions"] = [
            list(transition) for transition in server.view.transitions
            if transition[0] == killed_address]
    if scratch:
        with contextlib.suppress(OSError):
            os.unlink(scratch)
    times["healed"] = bool(
        not times["healthy"]["mismatches"]
        and not times["kill"]["mismatches"]
        and not times["rejoin"]["mismatches"]
        and not times["overload"]["mismatches"]
        and times["kill"]["lost"] >= 1
        and times["dead_detected"]
        and times["rejoin"]["joined"] >= 1
        and times["overload"]["shed"] >= 1
        and times["overload"]["accepted"] >= 1
        and times["clean_shutdown"])
    return times


def membership_rows(times: dict) -> List[List]:
    """``[phase, queries, differential, flight ms, joined, lost,
    reshards, local, shed, shed rate, breaker]`` rows for
    :func:`repro.bench.format_table`."""
    rows: List[List] = []
    for phase in ("healthy", "kill", "rejoin"):
        cell = times[phase]
        ok = "ok" if not cell["mismatches"] else (
            "MISMATCH:" + ",".join(cell["mismatches"]))
        breaker = cell.get("breaker", {})
        rows.append([
            phase, len(cell["per_query_ms"]), ok, cell["flight_ms"],
            cell["joined"], cell["lost"], cell["reshards"],
            cell["local_shards"], "-", "-",
            (f"o{breaker.get('breaker_opened', 0)}"
             f"/h{breaker.get('breaker_half_open', 0)}"
             f"/c{breaker.get('breaker_closed', 0)}")])
    cell = times["overload"]
    ok = "ok" if not cell["mismatches"] else (
        "MISMATCH:" + ",".join(cell["mismatches"]))
    rows.append([
        "overload", cell["requests"], ok, cell["flight_ms"],
        "-", "-", "-", "-", cell["shed"],
        f"{cell['shed_rate'] * 100:.0f}%", "-"])
    return rows


def membership_payload(times: dict) -> dict:
    """The ``BENCH_*.json`` payload for a membership sweep."""
    return dict(times)

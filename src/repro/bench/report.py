"""Plain-text table/series formatting in the style of the paper's exhibits.

Every benchmark prints its rows with these helpers so the terminal output
can be compared side-by-side with the corresponding paper table or figure
(see EXPERIMENTS.md for the recorded comparisons).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table with a title rule."""
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [f"\n== {title} ==", line(headers), rule]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_ratio_note(label_a: str, value_a: float,
                      label_b: str, value_b: float) -> str:
    """A one-line "A is Nx faster/slower than B" comparison note."""
    if value_a <= 0 or value_b <= 0:
        return f"{label_a} vs {label_b}: n/a"
    ratio = value_b / value_a
    relation = "faster than" if ratio >= 1 else "slower than"
    factor = ratio if ratio >= 1 else 1 / ratio
    return f"{label_a} is {factor:.2f}x {relation} {label_b}"


def host_info() -> dict:
    """The execution host, as recorded in benchmark headers and JSON.

    ``cores`` is the *usable* core count (the scheduling affinity, not
    the physical count) — a 1-core container can only measure dispatch
    overhead for multiprocess sweeps, and every recorded result must say
    so to be interpretable.
    """
    import os
    import platform

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    import numpy

    return {
        "cores": cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def host_note() -> str:
    """A one-line host header for benchmark output files."""
    host = host_info()
    note = (f"host: {host['cores']} usable core(s), {host['platform']}, "
            f"python {host['python']}, numpy {host['numpy']}")
    if host["cores"] == 1:
        note += ("\nnote: single usable core — multiprocess cells measure "
                 "dispatch overhead, not core scaling")
    return note


def write_bench_json(path: str, benchmark: str, payload: dict) -> str:
    """Write a machine-readable ``BENCH_*.json`` benchmark record.

    The schema is deliberately small and stable: ``schema`` (format
    version), ``benchmark`` (which experiment), ``host`` (cores +
    platform, so perf numbers are interpretable), ``generated_unix``,
    and the experiment payload (per-query medians, backend/workers,
    cache hit rates, …).  These files start the repo's recorded perf
    trajectory; CI uploads them as build artifacts.
    """
    import json
    import time

    document = {
        "schema": 1,
        "benchmark": benchmark,
        "generated_unix": int(time.time()),
        "host": host_info(),
    }
    document.update(payload)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path

"""Plain-text table/series formatting in the style of the paper's exhibits.

Every benchmark prints its rows with these helpers so the terminal output
can be compared side-by-side with the corresponding paper table or figure
(see EXPERIMENTS.md for the recorded comparisons).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table with a title rule."""
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [f"\n== {title} ==", line(headers), rule]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_ratio_note(label_a: str, value_a: float,
                      label_b: str, value_b: float) -> str:
    """A one-line "A is Nx faster/slower than B" comparison note."""
    if value_a <= 0 or value_b <= 0:
        return f"{label_a} vs {label_b}: n/a"
    ratio = value_b / value_a
    relation = "faster than" if ratio >= 1 else "slower than"
    factor = ratio if ratio >= 1 else 1 / ratio
    return f"{label_a} is {factor:.2f}x {relation} {label_b}"

"""Timing helpers for the experiment harness.

The paper executes each query three times and reports the shortest run
(to measure warm, memory-resident performance); :func:`best_of` does the
same.  Hardware cycle counters are replaced by ``perf_counter_ns`` — see
DESIGN.md's substitution table — so "cycles/tuple" becomes ns/tuple, a
monotone proxy with comparable ratios on one machine.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Sequence, Tuple


def best_of(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Run *fn* `repeat` times; return (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best, result


def median_ms(samples: Sequence[float]) -> float:
    """Median of a list of per-run *seconds*, in milliseconds.

    Medians are what the machine-readable ``BENCH_*.json`` records — a
    robust central tendency for trajectory comparisons, where
    :func:`best_of` mirrors the paper's best-of-three convention.
    """
    if not samples:
        return float("nan")
    return statistics.median(samples) * 1e3


def ns_per_tuple(seconds: float, ntuples: int) -> float:
    """Normalize a runtime by the number of processed tuples."""
    if ntuples <= 0:
        return float("nan")
    return seconds * 1e9 / ntuples


def ms(seconds: float) -> float:
    """Seconds → milliseconds."""
    return seconds * 1e3

"""Command-line interface for the A-Store engine.

Subcommands::

    astore generate --benchmark ssb --sf 0.01 --out ssb.npz
    astore query ssb.npz "SELECT d_year, sum(lo_revenue) AS r
                          FROM lineorder, date GROUP BY d_year" [--explain]
    astore explain ssb.npz "SELECT ..."      # operator DAG + decisions
    astore ssb ssb.npz                       # run all 13 SSB queries
    astore bench ssb.npz                     # backend x workers scaling sweep
    astore validate ssb.npz                  # referential-integrity check

``query``/``ssb``/``bench`` accept ``--backend {serial,thread,process}``
and ``--workers N`` — the ``process`` backend shards the fact table over
worker processes attached to a shared-memory column arena.  ``query
--breakdown`` additionally prints the per-operator timing breakdown of
the execution.  Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench import best_of, format_table, ms
from .core.statistics import validate_references
from .datagen import generate_ssb, generate_tpcds, generate_tpch
from .engine import AStoreEngine, VARIANTS
from .engine.operators import BACKENDS
from .errors import AStoreError
from .io import dump_csv, load_database, save_database

_GENERATORS = {
    "ssb": generate_ssb,
    "tpch": generate_tpch,
    "tpcds": generate_tpcds,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="astore",
        description="A-Store: virtual denormalization for main-memory OLAP",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a benchmark database")
    gen.add_argument("--benchmark", choices=sorted(_GENERATORS),
                     default="ssb")
    gen.add_argument("--sf", type=float, default=0.01,
                     help="scale factor (SF=1 is the official size)")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help="output .npz path")

    query = sub.add_parser("query", help="run one SQL query")
    query.add_argument("database", help="a .npz archive from 'generate'")
    query.add_argument("sql", help="the SPJGA query text")
    query.add_argument("--variant", choices=sorted(VARIANTS),
                       default="AIRScan_C_P_G")
    query.add_argument("--workers", type=int, default=1)
    query.add_argument("--backend", choices=sorted(BACKENDS),
                       default="serial",
                       help="execution backend (process = shared-memory "
                            "shard workers)")
    query.add_argument("--explain", action="store_true",
                       help="print the plan instead of executing")
    query.add_argument("--breakdown", action="store_true",
                       help="also print the per-operator timing breakdown")
    query.add_argument("--csv", metavar="PATH",
                       help="also write the result to a CSV file")
    query.add_argument("--limit", type=int, default=20,
                       help="max rows to print (default 20)")

    explain = sub.add_parser(
        "explain",
        help="print the operator DAG and optimizer decisions for a query")
    explain.add_argument("database", help="a .npz archive from 'generate'")
    explain.add_argument("sql", help="the SPJGA query text")
    explain.add_argument("--variant", choices=sorted(VARIANTS),
                         default="AIRScan_C_P_G")

    ssb = sub.add_parser("ssb", help="run the 13 SSB queries")
    ssb.add_argument("database", help="a .npz archive of an SSB database")
    ssb.add_argument("--repeat", type=int, default=3)
    ssb.add_argument("--variant", choices=sorted(VARIANTS),
                     default="AIRScan_C_P_G")
    ssb.add_argument("--workers", type=int, default=1)
    ssb.add_argument("--backend", choices=sorted(BACKENDS),
                     default="serial")

    bench = sub.add_parser(
        "bench",
        help="backend x workers scaling sweep over the SSB queries")
    bench.add_argument("database", help="a .npz archive of an SSB database")
    bench.add_argument("--backends", default="serial,thread,process",
                       help="comma-separated BACKENDS names")
    bench.add_argument("--workers", default="1,2,4",
                       help="comma-separated worker counts")
    bench.add_argument("--queries", default=None,
                       help="comma-separated SSB query ids (default: all)")
    bench.add_argument("--repeat", type=int, default=3)
    bench.add_argument("--out", metavar="PATH",
                       help="also write the report to a file")

    val = sub.add_parser("validate", help="check referential integrity")
    val.add_argument("database", help="a .npz archive")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except AStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); not an error
        return 0


def _dispatch(args) -> int:
    if args.command == "generate":
        db = _GENERATORS[args.benchmark](sf=args.sf, seed=args.seed)
        save_database(db, args.out)
        rows = {name: table.num_rows for name, table in db.tables.items()}
        print(f"wrote {args.out}: " + ", ".join(
            f"{name}={n:,}" for name, n in rows.items()))
        return 0

    if args.command == "query":
        db = load_database(args.database)
        with AStoreEngine.variant(db, args.variant, workers=args.workers,
                                  parallel_backend=args.backend) as engine:
            if args.explain:
                print(engine.explain(args.sql))
                return 0
            result = engine.query(args.sql)
        shown = result.rows()[: args.limit]
        print(format_table(
            f"{len(result)} rows ({result.stats.total_seconds * 1e3:.2f} ms,"
            f" {result.stats.variant}, {args.backend})",
            result.column_order, shown))
        if len(result) > args.limit:
            print(f"... {len(result) - args.limit} more rows")
        if args.breakdown:
            rows = [[label, ms(seconds)]
                    for label, seconds in result.stats.operator_breakdown()]
            print(format_table(
                f"operator breakdown ({result.stats.morsels} morsels)",
                ["operator", "ms"], rows))
        if args.csv:
            dump_csv(result, args.csv)
            print(f"wrote {args.csv}")
        return 0

    if args.command == "explain":
        db = load_database(args.database)
        engine = AStoreEngine.variant(db, args.variant)
        print(engine.explain(args.sql))
        return 0

    if args.command == "ssb":
        from .workloads import SSB_QUERIES

        db = load_database(args.database)
        with AStoreEngine.variant(db, args.variant, workers=args.workers,
                                  parallel_backend=args.backend) as engine:
            rows = []
            for query_id, sql in SSB_QUERIES.items():
                seconds, result = best_of(lambda: engine.query(sql),
                                          repeat=args.repeat)
                rows.append([query_id, len(result), ms(seconds)])
        rows.append(["AVG", "", sum(r[2] for r in rows) / len(rows)])
        print(format_table(
            f"SSB with {args.variant} ({args.backend}, "
            f"workers={args.workers})",
            ["query", "groups", "best ms"], rows))
        return 0

    if args.command == "bench":
        from .bench import backend_scaling_sweep, scaling_rows
        from .workloads import SSB_QUERIES

        db = load_database(args.database)
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
        worker_counts = [int(w) for w in args.workers.split(",")]
        query_ids = ([q.strip() for q in args.queries.split(",")]
                     if args.queries else list(SSB_QUERIES))
        times = backend_scaling_sweep(
            backends=backends, worker_counts=worker_counts,
            query_ids=query_ids, repeat=args.repeat, db=db)
        speedup_base = ("serial" if any(b == "serial" for b, _ in times)
                        else "first cell")
        text = format_table(
            f"backend scaling sweep over {db.name} (best of {args.repeat})",
            ["backend", "workers"] + query_ids
            + ["AVG ms", f"speedup vs {speedup_base}"],
            scaling_rows(times))
        print(text)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        return 0

    if args.command == "validate":
        db = load_database(args.database)
        problems = validate_references(db)
        if problems:
            for problem in problems:
                print(f"VIOLATION: {problem}")
            return 1
        print(f"{db.name}: {len(db.references)} references consistent")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

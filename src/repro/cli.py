"""Command-line interface for the A-Store engine.

Subcommands::

    astore generate --benchmark ssb --sf 0.01 --out ssb.npz
    astore query ssb.npz "SELECT d_year, sum(lo_revenue) AS r
                          FROM lineorder, date GROUP BY d_year" [--explain]
    astore explain ssb.npz "SELECT ..."      # operator DAG + decisions
    astore ssb ssb.npz                       # run all 13 SSB queries
    astore bench ssb.npz                     # backend x workers scaling sweep
    astore bench ssb.npz --mode qps          # cold vs warm-cache throughput
    astore bench ssb.npz --mode pruning      # data skipping on vs off
    astore bench ssb.npz --mode concurrency  # qps/latency at N in-flight clients
    astore cache ssb.npz                     # per-tier cache hit statistics
    astore serve ssb.npz --port 7433         # asyncio line-protocol server
    astore node ssb.npz --port 7533          # one remote shard node
    astore bench ssb.npz --mode distributed  # scatter-gather + chaos recovery
    astore compact ssb.npz                   # clustering-preserving re-sort
    astore validate ssb.npz                  # referential-integrity check

``query``/``ssb``/``bench`` accept ``--backend
{serial,thread,process,remote}`` and ``--workers N`` — the ``process``
backend shards the fact table over worker processes attached to a
shared-memory column arena, and the ``remote`` backend scatters shards
to ``astore node`` processes named by ``--nodes host:port,...`` (with
per-node deadlines, retry, and re-shard on node loss) — plus
``--no-cache`` to disable the mutation-stamped query cache and
``--no-pruning`` to disable zone-map data skipping.  ``serve --workers N``
(N > 1) starts a *fleet* of N server processes sharing one listening
socket and one cross-process query store (``--fleet-data``,
``--no-shared-store``); per-server shard workers are set with
``--backend-workers``.  ``cache`` can bound the result (serving) tier
with ``--result-ttl``/``--result-entries``, and ``cache --shared`` runs
a cross-process shared-store demonstration.  ``bench --mode concurrency
--fleet-workers 1,2,4`` sweeps fleet sizes instead of client counts
alone.  ``query
--breakdown`` additionally prints the stage and per-operator timing
breakdowns plus the prune verdict counts (blocks skipped / fully
accepted / scanned, and whether the cost gate bypassed the verdict
pass; with ``--repeat N`` the last, warm execution is reported:
near-zero leaf time on a plan-cache hit).  ``compact`` runs the
maintenance re-sort that restores a table's declared clustering after
streaming appends and MVCC churn (the serve layer accepts the same
operation as a ``{"compact": table}`` admin request).  ``bench``
records the
detected core count in its output header so recorded sweeps stay
interpretable, and ``--json`` writes a machine-readable ``BENCH_*.json``
record.  Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench import best_of, format_table, ms
from .core.statistics import validate_references
from .datagen import generate_ssb, generate_tpcds, generate_tpch
from .engine import AStoreEngine, VARIANTS
from .engine.operators import BACKENDS
from .errors import AStoreError
from .io import dump_csv, load_database, save_database

_GENERATORS = {
    "ssb": generate_ssb,
    "tpch": generate_tpch,
    "tpcds": generate_tpcds,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="astore",
        description="A-Store: virtual denormalization for main-memory OLAP",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a benchmark database")
    gen.add_argument("--benchmark", choices=sorted(_GENERATORS),
                     default="ssb")
    gen.add_argument("--sf", type=float, default=0.01,
                     help="scale factor (SF=1 is the official size)")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help="output .npz path")

    query = sub.add_parser("query", help="run one SQL query")
    query.add_argument("database", help="a .npz archive from 'generate'")
    query.add_argument("sql", help="the SPJGA query text")
    query.add_argument("--variant", choices=sorted(VARIANTS),
                       default="AIRScan_C_P_G")
    query.add_argument("--workers", type=int, default=1)
    query.add_argument("--backend", choices=sorted(BACKENDS),
                       default="serial",
                       help="execution backend (process = shared-memory "
                            "shard workers; remote = distributed shard "
                            "nodes, see --nodes)")
    query.add_argument("--nodes", default=None, metavar="HOST:PORT,...",
                       help="remote backend: shard node addresses")
    query.add_argument("--node-timeout", type=float, default=30.0,
                       help="remote backend: per-node request deadline "
                            "in seconds")
    query.add_argument("--explain", action="store_true",
                       help="print the plan instead of executing")
    query.add_argument("--breakdown", action="store_true",
                       help="also print the stage + per-operator timing "
                            "breakdowns and cache events")
    query.add_argument("--repeat", type=int, default=1,
                       help="run the query N times (warming the cache) and "
                            "report the last execution")
    query.add_argument("--no-cache", action="store_true",
                       help="disable the mutation-stamped query cache")
    query.add_argument("--no-pruning", action="store_true",
                       help="disable zone-map data skipping")
    query.add_argument("--csv", metavar="PATH",
                       help="also write the result to a CSV file")
    query.add_argument("--limit", type=int, default=20,
                       help="max rows to print (default 20)")

    explain = sub.add_parser(
        "explain",
        help="print the operator DAG and optimizer decisions for a query")
    explain.add_argument("database", help="a .npz archive from 'generate'")
    explain.add_argument("sql", help="the SPJGA query text")
    explain.add_argument("--variant", choices=sorted(VARIANTS),
                         default="AIRScan_C_P_G")

    ssb = sub.add_parser("ssb", help="run the 13 SSB queries")
    ssb.add_argument("database", help="a .npz archive of an SSB database")
    ssb.add_argument("--repeat", type=int, default=3)
    ssb.add_argument("--variant", choices=sorted(VARIANTS),
                     default="AIRScan_C_P_G")
    ssb.add_argument("--workers", type=int, default=1)
    ssb.add_argument("--backend", choices=sorted(BACKENDS),
                     default="serial")
    ssb.add_argument("--nodes", default=None, metavar="HOST:PORT,...",
                     help="remote backend: shard node addresses")
    ssb.add_argument("--node-timeout", type=float, default=30.0,
                     help="remote backend: per-node request deadline "
                          "in seconds")
    ssb.add_argument("--no-cache", action="store_true",
                     help="disable the mutation-stamped query cache")
    ssb.add_argument("--no-pruning", action="store_true",
                     help="disable zone-map data skipping")

    bench = sub.add_parser(
        "bench",
        help="scaling, qps (cold vs warm cache), or pruning sweep over "
             "SSB queries")
    bench.add_argument("database", help="a .npz archive of an SSB database")
    bench.add_argument("--mode",
                       choices=("scaling", "qps", "pruning", "concurrency",
                                "distributed", "membership"),
                       default="scaling",
                       help="scaling: backend x workers best-of sweep; "
                            "qps: repeated-flight throughput, cold vs "
                            "warm-cache; pruning: cold flights with data "
                            "skipping on vs off, with skipped/scanned "
                            "morsel counts; concurrency: serve-mode qps + "
                            "latency percentiles at N in-flight async "
                            "clients; distributed: scatter-gather over "
                            "local shard nodes, healthy + one node "
                            "SIGKILLed mid-flight (recovery check); "
                            "membership: self-healing cluster sweep — "
                            "healthy / kill / rejoin / overload phases "
                            "with shed-rate and breaker counters")
    bench.add_argument("--backends", default=None,
                       help="comma-separated BACKENDS names (default: "
                            "serial,thread,process for scaling; serial "
                            "for qps)")
    bench.add_argument("--workers", default="1,2,4",
                       help="comma-separated worker counts")
    bench.add_argument("--queries", default=None,
                       help="comma-separated SSB query ids (default: all)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="best-of repeats per cell (scaling mode)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="measured flights per cell (qps mode) or per "
                            "client (concurrency mode)")
    bench.add_argument("--clients", default="1,8,64",
                       help="comma-separated in-flight client counts "
                            "(concurrency mode)")
    bench.add_argument("--node-count", type=int, default=2,
                       help="distributed mode: how many local shard "
                            "nodes to spawn")
    bench.add_argument("--fleet-workers", default=None, metavar="N,N,...",
                       help="concurrency mode: sweep multi-process serving "
                            "fleets of these sizes (e.g. 1,2,4) instead of "
                            "a single in-process server")
    bench.add_argument("--no-cache", action="store_true",
                       help="scaling mode: disable the query cache")
    bench.add_argument("--out", metavar="PATH",
                       help="also write the report to a file")
    bench.add_argument("--json", metavar="PATH",
                       help="also write a machine-readable BENCH_*.json "
                            "record")

    cache = sub.add_parser(
        "cache",
        help="run SSB flights through the query cache and print per-tier "
             "hit/miss/bytes statistics")
    cache.add_argument("database", help="a .npz archive of an SSB database")
    cache.add_argument("--queries", default=None,
                       help="comma-separated SSB query ids (default: all)")
    cache.add_argument("--rounds", type=int, default=2,
                       help="how many flights to run (first is cold)")
    cache.add_argument("--variant", choices=sorted(VARIANTS),
                       default="AIRScan_C_P_G")
    cache.add_argument("--workers", type=int, default=1)
    cache.add_argument("--backend", choices=sorted(BACKENDS),
                       default="serial")
    cache.add_argument("--no-serve", action="store_true",
                       help="disable the result (serving) tier")
    cache.add_argument("--result-ttl", type=float, default=0.0,
                       metavar="SECONDS",
                       help="expire result-tier entries older than this "
                            "(0 = no TTL)")
    cache.add_argument("--result-entries", type=int, default=0, metavar="N",
                       help="cap the result tier at N entries "
                            "(0 = shared default)")
    cache.add_argument("--shared", action="store_true",
                       help="demonstrate the cross-process shared store: "
                            "run the flight in two subprocesses sharing "
                            "one shm-backed query store and report the "
                            "second process's shared-tier hits")

    serve = sub.add_parser(
        "serve",
        help="serve concurrent queries over TCP (newline-delimited JSON "
             "or raw SQL in, JSON out; PING/STATS/SHUTDOWN admin lines); "
             "--workers N>1 grows a multi-process fleet")
    serve.add_argument("database", help="a .npz archive from 'generate'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7433,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--variant", choices=sorted(VARIANTS),
                       default="AIRScan_C_P_G")
    serve.add_argument("--backend", choices=sorted(BACKENDS),
                       default="serial",
                       help="sync execution backend the async engine "
                            "multiplexes over")
    serve.add_argument("--workers", type=int, default=1,
                       help="server processes; N > 1 starts a fleet "
                            "sharing one listening socket and one "
                            "cross-process query store")
    serve.add_argument("--backend-workers", type=int, default=1,
                       help="shard workers inside each server's engine "
                            "(the old serve --workers meaning)")
    serve.add_argument("--fleet-data", choices=("arena", "copy"),
                       default="arena",
                       help="fleet data placement: one shared-memory "
                            "arena (read-only, default) or a private "
                            "writable copy per worker")
    serve.add_argument("--no-shared-store", action="store_true",
                       help="fleet: disable the cross-process shared "
                            "query store")
    serve.add_argument("--max-concurrency", type=int, default=0,
                       help="bound on concurrently executing queries "
                            "(0 = derive from the core count)")
    serve.add_argument("--request-timeout", type=float, default=0.0,
                       metavar="SECONDS",
                       help="per-request deadline; a query past it "
                            "answers a structured timeout error instead "
                            "of pinning the connection (0 = none; "
                            "requests may override with a timeout_ms "
                            "field)")
    serve.add_argument("--no-serve-cache", action="store_true",
                       help="disable the result (serving) tier")
    serve.add_argument("--nodes", default=None, metavar="HOST:PORT,...",
                       help="--backend remote: static shard node "
                            "addresses (or use --membership-port)")
    serve.add_argument("--node-timeout", type=float, default=30.0,
                       help="--backend remote: per-node request deadline "
                            "in seconds")
    serve.add_argument("--membership-port", type=int, default=None,
                       metavar="PORT",
                       help="host a cluster membership view on this port "
                            "(0 = pick a free one); shard nodes join with "
                            "'astore node --join', crashed nodes fall "
                            "out, restarted ones rejoin")
    serve.add_argument("--max-pending", type=int, default=0, metavar="N",
                       help="overload front door: shed requests with a "
                            "structured {\"overloaded\": true} error once "
                            "N are in flight (0 = no bound)")

    node = sub.add_parser(
        "node",
        help="serve fact-table shards of a database copy to a remote-"
             "backend coordinator (the worker half of --backend remote)")
    node.add_argument("database", help="a .npz archive from 'generate'")
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0,
                      help="TCP port (0 = pick a free one)")
    node.add_argument("--chaos", default="",
                      help="arm deterministic fault-injection rules in "
                           "this node (action@site[:first][xcount]"
                           "[=value]; see repro.engine.chaos)")
    node.add_argument("--join", default="", metavar="HOST:PORT",
                      help="announce this node to a coordinator's "
                           "membership port; the join reply's stamps "
                           "seed the node's lane (rejoin catch-up) and "
                           "SIGTERM deregisters before exiting 0")

    compact = sub.add_parser(
        "compact",
        help="clustering-preserving compaction: drop deleted slots, "
             "re-sort into the declared clustering order, rebuild block "
             "summaries, and rewrite the archive")
    compact.add_argument("database", help="a .npz archive from 'generate'")
    compact.add_argument("--table", default=None,
                         help="table to compact (default: every root/"
                              "fact table)")
    compact.add_argument("--out", metavar="PATH",
                         help="output archive (default: rewrite the "
                              "input in place)")

    val = sub.add_parser("validate", help="check referential integrity")
    val.add_argument("database", help="a .npz archive")

    lint = sub.add_parser(
        "lint",
        help="static invariant analysis: lock discipline, plan "
             "portability, stamp protocol, chaos coverage, async "
             "hygiene")
    lint.add_argument("root", nargs="?", default=None,
                      help="directory or file to analyze (default: the "
                           "installed repro package, with the committed "
                           "baseline applied)")
    lint.add_argument("--rule", action="append", metavar="RULE-ID",
                      help="run only this rule (repeatable)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="fmt", help="output format")
    lint.add_argument("--baseline", action="store_true",
                      help="rewrite the baseline file with the current "
                           "findings instead of failing on them")
    lint.add_argument("--baseline-file", default=None, metavar="PATH",
                      help="baseline to reconcile against (default: the "
                           "committed src/repro/analysis/baseline.json "
                           "when scanning the default root)")
    lint.add_argument("--explain", metavar="RULE-ID",
                      help="print the rule's contract, history, and an "
                           "example violation/fix, then exit")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the available rule ids and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except AStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); not an error
        return 0


def _remote_overrides(args) -> dict:
    """EngineOptions overrides for ``--backend remote`` (``--nodes``
    required; workers defaults to the node count unless raised)."""
    if getattr(args, "backend", "") != "remote":
        return {}
    if not getattr(args, "nodes", None):
        raise AStoreError("--backend remote needs --nodes host:port,...")
    nodes = tuple(n.strip() for n in args.nodes.split(",") if n.strip())
    overrides = {"remote_nodes": nodes, "node_timeout": args.node_timeout}
    if args.workers <= 1:
        overrides["workers"] = len(nodes)
    return overrides


def _dispatch(args) -> int:
    if args.command == "generate":
        db = _GENERATORS[args.benchmark](sf=args.sf, seed=args.seed)
        save_database(db, args.out)
        rows = {name: table.num_rows for name, table in db.tables.items()}
        print(f"wrote {args.out}: " + ", ".join(
            f"{name}={n:,}" for name, n in rows.items()))
        return 0

    if args.command == "query":
        db = load_database(args.database)
        overrides = _remote_overrides(args)
        workers = overrides.pop("workers", args.workers)
        with AStoreEngine.variant(db, args.variant, workers=workers,
                                  parallel_backend=args.backend,
                                  use_cache=not args.no_cache,
                                  use_pruning=not args.no_pruning,
                                  **overrides) as engine:
            if args.explain:
                print(engine.explain(args.sql))
                return 0
            for _ in range(max(1, args.repeat)):
                result = engine.query(args.sql)
        shown = result.rows()[: args.limit]
        print(format_table(
            f"{len(result)} rows ({result.stats.total_seconds * 1e3:.2f} ms,"
            f" {result.stats.variant}, {args.backend})",
            result.column_order, shown))
        if len(result) > args.limit:
            print(f"... {len(result) - args.limit} more rows")
        if args.breakdown:
            stats = result.stats
            stages = [["leaf", ms(stats.leaf_seconds)],
                      ["scan", ms(stats.scan_seconds)],
                      ["aggregation", ms(stats.aggregation_seconds)],
                      ["total", ms(stats.total_seconds)]]
            print(format_table("stage breakdown", ["stage", "ms"], stages))
            rows = [[label, ms(seconds)]
                    for label, seconds in stats.operator_breakdown()]
            print(format_table(
                f"operator breakdown ({stats.morsels} morsels)",
                ["operator", "ms"], rows))
            if (stats.morsels_skipped or stats.morsels_accepted
                    or stats.morsels_scanned or stats.prune_gated):
                print(f"data skipping: {stats.morsels_skipped} blocks "
                      f"skipped, {stats.morsels_accepted} fully accepted, "
                      f"{stats.morsels_scanned} scanned"
                      + (f", {stats.prune_gated} verdict pass(es) "
                         f"cost-gated" if stats.prune_gated else ""))
            if stats.filters_reordered:
                print(f"adaptive: filter order changed "
                      f"{stats.filters_reordered}x")
            summary = stats.cache_summary()
            if summary:
                print(f"cache: {summary}")
        if args.csv:
            dump_csv(result, args.csv)
            print(f"wrote {args.csv}")
        return 0

    if args.command == "explain":
        db = load_database(args.database)
        engine = AStoreEngine.variant(db, args.variant)
        print(engine.explain(args.sql))
        return 0

    if args.command == "ssb":
        from .workloads import SSB_QUERIES

        db = load_database(args.database)
        overrides = _remote_overrides(args)
        workers = overrides.pop("workers", args.workers)
        with AStoreEngine.variant(db, args.variant, workers=workers,
                                  parallel_backend=args.backend,
                                  use_cache=not args.no_cache,
                                  use_pruning=not args.no_pruning,
                                  **overrides) as engine:
            rows = []
            for query_id, sql in SSB_QUERIES.items():
                seconds, result = best_of(lambda: engine.query(sql),
                                          repeat=args.repeat)
                rows.append([query_id, len(result), ms(seconds)])
        rows.append(["AVG", "", sum(r[2] for r in rows) / len(rows)])
        print(format_table(
            f"SSB with {args.variant} ({args.backend}, "
            f"workers={args.workers}, "
            f"cache {'off' if args.no_cache else 'on: repeats are warm'})",
            ["query", "groups", "best ms"], rows))
        return 0

    if args.command == "compact":
        from .engine.cache import query_cache_for

        db = load_database(args.database)
        tables = ([args.table] if args.table
                  else (db.roots() or list(db.tables)))
        store = query_cache_for(db)
        for name in tables:
            info = db.compact(name, store=store)
            print(f"compacted {name}: rows={info['rows']:,} "
                  f"dropped={info['dropped']:,} "
                  f"clustered={'yes' if info['clustered'] else 'no'} "
                  f"summaries={info['summaries']}")
        out = args.out or args.database
        save_database(db, out)
        print(f"wrote {out}")
        return 0

    if args.command == "bench":
        return _dispatch_bench(args)

    if args.command == "cache":
        return _dispatch_cache(args)

    if args.command == "serve":
        return _dispatch_serve(args)

    if args.command == "node":
        from .engine.chaos import install_chaos
        from .engine.distributed import run_node

        if args.chaos:
            install_chaos(args.chaos)
        try:
            run_node(args.database, host=args.host, port=args.port,
                     join=args.join)
        except KeyboardInterrupt:
            print("astore node: interrupted, shutting down")
        return 0

    if args.command == "validate":
        db = load_database(args.database)
        problems = validate_references(db)
        if problems:
            for problem in problems:
                print(f"VIOLATION: {problem}")
            return 1
        print(f"{db.name}: {len(db.references)} references consistent")
        return 0

    if args.command == "lint":
        return _dispatch_lint(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _dispatch_lint(args) -> int:
    """``astore lint``: run the invariant analyzer (see repro.analysis)."""
    import json as _json

    from . import analysis

    if args.list_rules:
        for rule_id in analysis.rule_ids():
            print(rule_id)
        return 0
    if args.explain:
        text = analysis.explain_rule(args.explain)
        if text is None:
            raise AStoreError(
                f"unknown rule {args.explain!r} "
                f"(known: {', '.join(analysis.rule_ids())})")
        print(text)
        return 0
    try:
        report = analysis.run_lint(
            root=args.root,
            rules=args.rule,
            baseline_path=(args.baseline_file if args.baseline_file
                           else "auto"),
            update_baseline=args.baseline,
        )
    except ValueError as exc:
        raise AStoreError(str(exc))
    if args.baseline:
        target = (args.baseline_file or
                  (analysis.default_baseline_path() if args.root is None
                   else None))
        if target is None:
            raise AStoreError(
                "--baseline with an explicit root needs --baseline-file")
        print(f"baseline written: {len(report.findings)} finding(s) "
              f"-> {target}")
        return 0
    if args.fmt == "json":
        print(_json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.new:
            print(f"{finding.anchor()}: [{finding.rule}] {finding.message}")
        for finding in report.baselined:
            print(f"{finding.anchor()}: [{finding.rule}] (baselined) "
                  f"{finding.message}")
        print(f"astore lint: {len(report.findings)} finding(s) "
              f"({len(report.new)} new, {len(report.baselined)} baselined, "
              f"{report.suppressed} suppressed) over {report.files} files "
              f"[rules: {', '.join(report.rules)}]")
    return 0 if report.ok else 1


def _dispatch_bench(args) -> int:
    """``astore bench``: the scaling or qps sweep, with host header.

    Every report leads with :func:`repro.bench.host_note` (detected
    usable core count + platform), so a sweep recorded on a constrained
    container can never masquerade as a core-scaling measurement.
    """
    from .bench import (
        backend_scaling_sweep,
        host_note,
        pruning_family_rows,
        pruning_payload,
        pruning_rows,
        pruning_speedups,
        pruning_sweep,
        qps_payload,
        qps_rows,
        qps_sweep,
        scaling_rows,
        write_bench_json,
    )
    from .workloads import SSB_QUERIES

    db = load_database(args.database)
    default_backends = ("serial,thread,process" if args.mode == "scaling"
                        else "serial")
    backends = [b.strip() for b in (args.backends or default_backends)
                .split(",") if b.strip()]
    worker_counts = [int(w) for w in args.workers.split(",")]
    query_ids = ([q.strip() for q in args.queries.split(",")]
                 if args.queries else list(SSB_QUERIES))

    if args.mode == "membership":
        from .bench import (
            membership_payload,
            membership_rows,
            membership_sweep,
        )

        times = membership_sweep(database_path=args.database,
                                 node_count=args.node_count,
                                 query_ids=query_ids)
        text = host_note() + "\n" + format_table(
            f"membership sweep over {db.name} ({args.node_count} shard "
            f"nodes joining a live view; kill phase SIGKILLs node "
            f"{times['kill']['killed_index']} mid-flight, rejoin "
            f"restarts it, overload floods the front door)",
            ["phase", "queries", "differential", "flight ms", "joined",
             "lost", "reshards", "local", "shed", "shed rate",
             "breaker"],
            membership_rows(times))
        text += ("\nself-healing: "
                 + ("ok — killed node rejoined and served shards, "
                    "results exact, overload shed structured errors"
                    if times["healed"] else "FAILED"))
        payload = membership_payload(times)
        benchmark = "membership"
    elif args.mode == "distributed":
        from .bench import (
            distributed_payload,
            distributed_rows,
            distributed_sweep,
        )

        times = distributed_sweep(database_path=args.database,
                                  node_count=args.node_count,
                                  query_ids=query_ids)
        text = host_note() + "\n" + format_table(
            f"distributed sweep over {db.name} ({args.node_count} shard "
            f"nodes; degraded phase SIGKILLs node "
            f"{times['degraded']['killed_index']} mid-flight)",
            ["phase", "queries", "differential", "flight ms", "retries",
             "reshards", "lost", "local", "shutdown"],
            distributed_rows(times))
        text += ("\nrecovery: "
                 + ("ok — node loss re-sharded, results exact"
                    if times["recovered"] else "FAILED"))
        payload = distributed_payload(times)
        benchmark = "distributed"
    elif args.mode == "concurrency" and args.fleet_workers:
        from .bench import fleet_payload, fleet_rows, fleet_sweep

        clients = [int(c) for c in args.clients.split(",")
                   if c.strip()] or [1, 8, 64]
        fleet_sizes = [int(w) for w in args.fleet_workers.split(",")
                       if w.strip()] or [1, 2]
        times = fleet_sweep(worker_counts=fleet_sizes,
                            client_counts=clients, query_ids=query_ids,
                            rounds=args.rounds, db=db,
                            database_path=args.database)
        text = host_note() + "\n" + format_table(
            f"fleet sweep over {db.name} (multi-process serve, "
            f"{args.rounds} flights/client)",
            ["fleet", "clients", "queries", "qps", "p50 ms", "p95 ms",
             "p99 ms", "x vs 1 worker", "shared hits", "pids"],
            fleet_rows(times))
        payload = fleet_payload(times, query_ids, rounds=args.rounds)
        benchmark = "fleet_concurrency"
    elif args.mode == "concurrency":
        from .bench import (
            concurrency_payload,
            concurrency_rows,
            concurrency_sweep,
        )

        clients = [int(c) for c in args.clients.split(",")
                   if c.strip()] or [1, 8, 64]
        backend = backends[0]
        workers = min(worker_counts)
        times = concurrency_sweep(
            client_counts=clients, query_ids=query_ids, rounds=args.rounds,
            backend=backend, workers=workers, db=db)
        base_clients = 1 if 1 in times else min(times)
        text = host_note() + "\n" + format_table(
            f"concurrency sweep over {db.name} (serve mode, {backend} "
            f"backend, workers={workers}, {args.rounds} flights/client)",
            ["clients", "queries", "qps", "p50 ms", "p95 ms", "p99 ms",
             f"x vs {base_clients} client", "served", "coalesced",
             "executed"],
            concurrency_rows(times))
        payload = concurrency_payload(times, query_ids, rounds=args.rounds,
                                      backend=backend, workers=workers)
        benchmark = "concurrency"
    elif args.mode == "pruning":
        times = pruning_sweep(backends=backends, query_ids=query_ids,
                              rounds=args.rounds,
                              workers=min(worker_counts), db=db)
        rates = pruning_speedups(times)
        speedups = " ".join(
            f"{backend}:{rates[backend]:.2f}x" for backend in backends)
        text = host_note() + "\n" + format_table(
            f"pruning sweep over {db.name} (cold medians of {args.rounds} "
            f"rounds; flight speedup {speedups})",
            ["backend", "query", "pruned ms", "unpruned ms", "speedup",
             "skipped", "accepted", "gated", "morsels"],
            pruning_rows(times, query_ids))
        text += "\n" + format_table(
            "per-family pruning breakdown (pruned cells)",
            ["backend", "family", "skipped", "accepted", "scanned",
             "gated", "morsels", "speedup"],
            pruning_family_rows(times, query_ids))
        payload = pruning_payload(times, query_ids, rounds=args.rounds)
        benchmark = "pruning"
    elif args.mode == "qps":
        times = qps_sweep(backends=backends, worker_counts=worker_counts,
                          query_ids=query_ids, rounds=args.rounds, db=db)
        text = host_note() + "\n" + format_table(
            f"qps sweep over {db.name} "
            f"({len(query_ids)}-query flight, {args.rounds} measured "
            f"rounds, medians)",
            ["backend", "workers", "mode", "qps", "flight ms", "x vs cold",
             "cache hit rates"],
            qps_rows(times))
        payload = qps_payload(times, query_ids, repeat_rounds=args.rounds)
        benchmark = "qps_sweep"
    else:
        times = backend_scaling_sweep(
            backends=backends, worker_counts=worker_counts,
            query_ids=query_ids, repeat=args.repeat, db=db,
            use_cache=not args.no_cache)
        speedup_base = ("serial" if any(b == "serial" for b, _ in times)
                        else "first cell")
        text = host_note() + "\n" + format_table(
            f"backend scaling sweep over {db.name} (best of {args.repeat}, "
            f"cache {'off' if args.no_cache else 'on: repeats are warm'})",
            ["backend", "workers"] + query_ids
            + ["AVG ms", f"speedup vs {speedup_base}"],
            scaling_rows(times))
        payload = {
            "queries": query_ids,
            "repeat": args.repeat,
            "cache": not args.no_cache,
            "cells": [{"backend": backend, "workers": workers,
                       "per_query_best_ms": dict(cell)}
                      for (backend, workers), cell in times.items()],
        }
        benchmark = "backend_scaling"
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if args.json:
        write_bench_json(args.json, benchmark, payload)
        print(f"wrote {args.json}")
    return 0


def _dispatch_serve(args) -> int:
    """``astore serve``: the asyncio line-protocol query server.

    ``--workers 1`` (default) runs a single in-process server;
    ``--workers N`` for N > 1 starts a fleet of N server processes over
    one listening socket and one cross-process shared query store.
    """
    import asyncio
    from dataclasses import replace as dataclasses_replace

    from .engine.serve import run_server

    overrides = {}
    if args.backend == "remote":
        if args.nodes:
            nodes = tuple(n.strip() for n in args.nodes.split(",")
                          if n.strip())
            overrides["remote_nodes"] = nodes
            if args.backend_workers <= 1:
                overrides["workers"] = len(nodes)
        elif args.membership_port is None:
            raise AStoreError("serve --backend remote needs --nodes "
                              "host:port,... or --membership-port")
        overrides["node_timeout"] = args.node_timeout
    options = dataclasses_replace(
        VARIANTS[args.variant],
        parallel_backend=args.backend,
        workers=args.backend_workers,
        cache_results=not args.no_serve_cache,
        **overrides,
    )
    if args.workers > 1:
        from .engine.fleet import run_fleet

        db = (load_database(args.database)
              if args.fleet_data == "arena" else None)
        membership_server = None
        if args.membership_port is not None:
            # the supervisor hosts the membership view; every fleet
            # worker follows it through options.membership
            from .engine.membership import MembershipServer
            from .engine.sharding import database_stamp

            stamps_fn = ((lambda: database_stamp(db)) if db is not None
                         else (lambda: ()))
            membership_server = MembershipServer(
                host=args.host, port=args.membership_port,
                stamps_fn=stamps_fn).start()
            options = dataclasses_replace(
                options, membership=membership_server.address)
            print(f"astore serve: membership view on "
                  f"{membership_server.address}")
        try:
            return run_fleet(
                db, database_path=args.database, options=options,
                host=args.host, port=args.port, workers=args.workers,
                max_concurrency=args.max_concurrency or None,
                data_mode=args.fleet_data,
                shared_store=not args.no_shared_store,
                request_timeout=args.request_timeout or None,
                max_pending=args.max_pending)
        finally:
            if membership_server is not None:
                membership_server.close()

    db = load_database(args.database)
    try:
        asyncio.run(run_server(
            db, options=options, host=args.host, port=args.port,
            max_concurrency=args.max_concurrency or None,
            request_timeout=args.request_timeout or None,
            max_pending=args.max_pending,
            membership_port=args.membership_port))
    except KeyboardInterrupt:
        print("astore serve: interrupted, shutting down")
    return 0


def _shared_cache_flight(database, store_name, query_ids, variant, conn):
    """Subprocess body for ``astore cache --shared``: run one SSB flight
    with the query cache backed by *store_name* and report tier stats.

    Top-level so the ``spawn`` start method can pickle it.
    """
    from .workloads import SSB_QUERIES

    db = load_database(database)
    with AStoreEngine.variant(db, variant, cache_results=True,
                              shared_store=store_name) as engine:
        for query_id in query_ids:
            engine.query(SSB_QUERIES[query_id])
        counters = engine.cache.counters()
    import os as _os

    conn.send({"pid": _os.getpid(), "counters": counters})
    conn.close()


def _dispatch_cache_shared(args, query_ids) -> int:
    """``astore cache --shared``: two spawned processes, one flight each,
    over a single shm-backed :class:`SharedQueryStore`.  The second
    process's plan/result tiers should hit the store, not recompute."""
    import multiprocessing

    from .bench import host_note
    from .core.shmcache import SharedQueryStore, store_available

    if not store_available():
        print("error: shared query store unavailable on this platform",
              file=sys.stderr)
        return 1
    ctx = multiprocessing.get_context("spawn")
    store = SharedQueryStore.create()
    print(host_note())
    try:
        rows = []
        for flight_no in (1, 2):
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shared_cache_flight,
                args=(args.database, store.segment, query_ids,
                      args.variant, child))
            proc.start()
            child.close()
            report = parent.recv()
            proc.join()
            counters = report["counters"]
            rows.append([
                flight_no, report["pid"],
                counters.get("plan.shared_hits", 0),
                counters.get("result.shared_hits", 0),
                counters.get("plan.shared_misses", 0)
                + counters.get("result.shared_misses", 0)])
        totals = store.counters()
    finally:
        store.close()  # owner close unlinks the segment + lock file
    print(format_table(
        f"cross-process shared store over {args.database} "
        f"({len(query_ids)}-query flight per process)",
        ["flight", "pid", "plan sh hits", "result sh hits", "sh misses"],
        rows))
    print(f"store: {totals['stores']} stores, {totals['hits']} hits, "
          f"{totals['misses']} misses, {totals['entries']} entries, "
          f"{totals['data_bytes_used'] / 1024:.0f} KiB used")
    if rows[1][2] + rows[1][3] == 0:
        print("error: second process saw no shared hits", file=sys.stderr)
        return 1
    return 0


def _dispatch_cache(args) -> int:
    """``astore cache``: flights through the cache + per-tier statistics."""
    from .bench import host_note
    from .workloads import SSB_QUERIES

    query_ids = ([q.strip() for q in args.queries.split(",")]
                 if args.queries else list(SSB_QUERIES))
    if args.shared:
        return _dispatch_cache_shared(args, query_ids)
    db = load_database(args.database)
    flights = []
    with AStoreEngine.variant(db, args.variant, workers=args.workers,
                              parallel_backend=args.backend,
                              cache_results=not args.no_serve,
                              result_ttl_seconds=args.result_ttl,
                              result_cache_entries=args.result_entries
                              ) as engine:
        import time as _time

        for round_no in range(max(1, args.rounds)):
            t0 = _time.perf_counter()
            for query_id in query_ids:
                engine.query(SSB_QUERIES[query_id])
            flights.append([
                round_no + 1, "cold" if round_no == 0 else "warm",
                ms(_time.perf_counter() - t0)])
        stats_rows = engine.cache.stats_rows()
    print(host_note())
    print(format_table(
        f"{len(query_ids)}-query SSB flights over {db.name} "
        f"({args.variant}, {args.backend}"
        f"{', serving tier off' if args.no_serve else ''})",
        ["flight", "cache", "ms"], flights))
    print(format_table(
        "query cache tiers",
        ["tier", "entries", "hits", "misses", "sh hits", "sh miss",
         "hit %", "invalidated", "expired", "KiB"],
        stats_rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

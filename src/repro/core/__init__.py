"""Core storage model: array families, AIR columns, bitmaps, and the catalog."""

from .arena import ArenaManifest, AttachedDatabase, ColumnArena, attach_database
from .bitmap import Bitmap
from .column import (
    AIRColumn,
    Column,
    DictColumn,
    FixedColumn,
    StringColumn,
    make_column,
)
from .dictionary import Dictionary
from .schema import Database, Reference, ReferencePath
from .statistics import (
    ColumnStatistics,
    TableStatistics,
    assert_consistent,
    collect_statistics,
    statistics_for,
    validate_references,
)
from .table import Table
from .types import DataType
from .vector import SelectionVector

__all__ = [
    "AIRColumn",
    "ArenaManifest",
    "attach_database",
    "AttachedDatabase",
    "ColumnArena",
    "assert_consistent",
    "collect_statistics",
    "ColumnStatistics",
    "statistics_for",
    "TableStatistics",
    "validate_references",
    "Bitmap",
    "Column",
    "Database",
    "DataType",
    "DictColumn",
    "Dictionary",
    "FixedColumn",
    "make_column",
    "Reference",
    "ReferencePath",
    "SelectionVector",
    "StringColumn",
    "Table",
]

"""Shared-memory column arenas: zero-copy database export for worker processes.

The process shard backend (Section 5 at real cores) needs every worker to
see the loaded database without copying it.  A :class:`ColumnArena` packs
all fixed-width column buffers of a :class:`~repro.core.schema.Database` —
:class:`~repro.core.column.FixedColumn` data, :class:`AIRColumn` positions,
:class:`DictColumn` codes, :class:`StringColumn` heap addresses, deletion
bits, and MVCC version vectors — into one POSIX shared-memory segment
(``multiprocessing.shared_memory``).  The picklable :class:`ArenaManifest`
records each buffer's offset/shape/dtype plus the variable-width payloads
that cannot be shared (dictionaries and string heaps, which are copied);
:func:`attach_database` rebuilds an equivalent read-only ``Database`` in
another process whose NumPy arrays are views into the segment — attaching
is O(columns), independent of row count.

Lifecycle: the exporting process owns the segment.  Workers attach and
``close()`` their mapping; only the owner's :meth:`ColumnArena.close`
unlinks the segment from ``/dev/shm``.  Every live arena is tracked in a
module registry drained by ``atexit``, so segments are released even if an
engine is never closed explicitly.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import StorageError
from .column import AIRColumn, DictColumn, FixedColumn, StringColumn
from .schema import Database
from .table import Table
from .types import DataType

_ALIGN = 64  # cache-line alignment for every buffer


@dataclass(frozen=True)
class BufferSpec:
    """Location of one fixed-width buffer inside the shared segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass
class ArenaManifest:
    """Everything a worker needs to attach: segment name + buffer map +
    the non-shareable (pickled) payloads and catalog metadata.

    ``zone_maps`` lists the zone-map summaries that were fresh at export
    time as ``(store_key, kind, block_rows, buffer_keys)`` records
    (``kind="codes"`` records append a metadata dict: the code domain
    and exactness) — attaching rebuilds them as zero-copy views so
    workers prune without re-scanning columns.
    """

    segment: str
    buffers: Dict[str, BufferSpec] = field(default_factory=dict)
    db_name: str = "db"
    tables: Dict[str, dict] = field(default_factory=dict)
    references: List[tuple] = field(default_factory=list)
    zone_maps: List[tuple] = field(default_factory=list)


def _buffer_key(table: str, name: str) -> str:
    return f"{table}//{name}"


class ColumnArena:
    """One exported database: a shared segment plus its manifest.

    Use :meth:`export` to create, :attr:`manifest` to hand to workers,
    and :meth:`close` (or a ``with`` block) to release the segment.
    """

    _live: Dict[str, "ColumnArena"] = {}

    def __init__(self, manifest: ArenaManifest,
                 shm: shared_memory.SharedMemory):
        self.manifest = manifest
        self._shm: Optional[shared_memory.SharedMemory] = shm
        ColumnArena._live[manifest.segment] = self

    # -- export ------------------------------------------------------------

    @classmethod
    def export(cls, db: Database,
               zone_entries: Optional[List[tuple]] = None) -> "ColumnArena":
        """Copy every fixed-width buffer of *db* into a new shared segment.

        *zone_entries* are ``(store_key, value)`` pairs from
        :func:`repro.core.statistics.fresh_zone_entries`; their summary
        arrays ride in the same segment so attached databases prune
        from the exact zone maps the parent built, zero-copy.
        """
        from .statistics import (
            ColumnCodeSetMap,
            ColumnZoneMap,
            DeletionZoneMap,
        )

        plan: List[Tuple[str, np.ndarray]] = []
        manifest = ArenaManifest(segment="", db_name=db.name)

        for table_name, table in db.tables.items():
            entry: dict = {
                "num_rows": table.num_rows,
                "mvcc": table._mvcc,
                "free_slots": list(table._free_slots),
                "columns": [],
            }
            plan.append((_buffer_key(table_name, "$deleted"), table._deleted))
            if table._mvcc:
                plan.append((_buffer_key(table_name, "$insert_version"),
                             table._insert_version))
                plan.append((_buffer_key(table_name, "$delete_version"),
                             table._delete_version))
            for col_name, column in table.columns.items():
                key = _buffer_key(table_name, col_name)
                if isinstance(column, AIRColumn):
                    entry["columns"].append({
                        "name": col_name, "layout": "air",
                        "referenced_table": column.referenced_table})
                    plan.append((key, column.values()))
                elif isinstance(column, DictColumn):
                    entry["columns"].append({
                        "name": col_name, "layout": "dict",
                        "dictionary": column.dictionary})
                    plan.append((key, column.codes()))
                elif isinstance(column, StringColumn):
                    entry["columns"].append({
                        "name": col_name, "layout": "string",
                        "heap": list(column._heap)})
                    plan.append((key, column._addr.values()))
                elif isinstance(column, FixedColumn):
                    entry["columns"].append({
                        "name": col_name, "layout": "fixed",
                        "dtype": column.dtype.value})
                    plan.append((key, column.values()))
                else:
                    raise StorageError(
                        f"cannot export column layout {type(column).__name__}")
            manifest.tables[table_name] = entry

        for ref in db.references:
            manifest.references.append(
                (ref.child_table, ref.child_column,
                 ref.parent_table, ref.parent_key))

        for i, (store_key, value) in enumerate(zone_entries or ()):
            if isinstance(value, ColumnZoneMap):
                keys = (f"$zm{i}//min", f"$zm{i}//max")
                plan.append((keys[0], value.mins))
                plan.append((keys[1], value.maxs))
                manifest.zone_maps.append(
                    (store_key, "column", value.block_rows, keys))
            elif isinstance(value, DeletionZoneMap):
                keys = (f"$zm{i}//del",)
                plan.append((keys[0], value.deleted_any))
                manifest.zone_maps.append(
                    (store_key, "deletion", value.block_rows, keys))
            elif isinstance(value, ColumnCodeSetMap):
                keys = (f"$zm{i}//bits", f"$zm{i}//dirty")
                plan.append((keys[0], value.bits))
                plan.append((keys[1], value.dirty))
                manifest.zone_maps.append(
                    (store_key, "codes", value.block_rows, keys,
                     {"domain": value.domain, "exact": value.exact}))

        offset = 0
        for key, array in plan:
            manifest.buffers[key] = BufferSpec(
                offset, array.shape, array.dtype.str)
            offset += -(-array.nbytes // _ALIGN) * _ALIGN
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        manifest.segment = shm.name
        for key, array in plan:
            spec = manifest.buffers[key]
            view = np.ndarray(spec.shape, dtype=spec.dtype,
                              buffer=shm.buf, offset=spec.offset)
            view[...] = array
        return cls(manifest, shm)

    # -- lifecycle ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._shm.size if self._shm is not None else 0

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Release the segment: close the mapping and unlink from
        ``/dev/shm``.  Idempotent; workers must have detached (their views
        stay valid until they close their own mapping)."""
        shm, self._shm = self._shm, None
        ColumnArena._live.pop(self.manifest.segment, None)
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    @classmethod
    def live_segments(cls) -> List[str]:
        """Names of all not-yet-closed arenas (leak diagnostics/tests)."""
        return sorted(cls._live)

    def __enter__(self) -> "ColumnArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


@atexit.register
def _drain_live_arenas() -> None:  # pragma: no cover - process teardown
    for arena in list(ColumnArena._live.values()):
        arena.close()


class AttachedDatabase:
    """A worker-side view of an exported database.

    Holds the shared-memory mapping open for as long as the rebuilt
    :attr:`db` is in use; :meth:`close` drops the mapping (the owner is
    responsible for unlinking).  ``zone_maps`` are the parent's exported
    zone-map summaries as ``(store_key, value)`` pairs over zero-copy
    views — the attaching side decides which store to seed with them.
    """

    def __init__(self, db: Database, shm: shared_memory.SharedMemory,
                 zone_maps: Optional[List[tuple]] = None):
        self.db = db
        self.zone_maps: List[tuple] = list(zone_maps or ())
        self._shm: Optional[shared_memory.SharedMemory] = shm

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()

    def __enter__(self) -> "AttachedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_database(manifest: ArenaManifest) -> AttachedDatabase:
    """Rebuild a read-only :class:`Database` over the shared segment.

    Every fixed-width array is a zero-copy, non-writable view into the
    segment; dictionaries and string heaps come (copied) from the
    manifest.  The attaching process does not own the segment: it must
    :meth:`AttachedDatabase.close` its mapping and leave unlinking to the
    exporting process.  (Spawned workers share the parent's resource
    tracker, so attaching registers nothing new and a worker exit never
    tears the segment down under the parent.)
    """
    shm = shared_memory.SharedMemory(name=manifest.segment)

    def view(key: str) -> np.ndarray:
        spec = manifest.buffers[key]
        array = np.ndarray(spec.shape, dtype=spec.dtype,
                           buffer=shm.buf, offset=spec.offset)
        array.flags.writeable = False
        return array

    db = Database(manifest.db_name)
    for table_name, entry in manifest.tables.items():
        table = Table(table_name, mvcc=entry["mvcc"])
        for col_entry in entry["columns"]:
            data = view(_buffer_key(table_name, col_entry["name"]))
            table.add_column(_wrap_column(col_entry, data))
        # attach-time restore: the worker-side table mirrors the arena's
        # exported point-in-time buffers; these writes are construction,
        # and the arena's staleness is tracked by database_stamp, not here
        table._nrows = entry["num_rows"]  # astore: ignore[stamp-protocol]
        table._deleted = view(_buffer_key(table_name, "$deleted"))  # astore: ignore[stamp-protocol]
        table._free_slots = list(entry["free_slots"])  # astore: ignore[stamp-protocol]
        if entry["mvcc"]:
            table._insert_version = view(  # astore: ignore[stamp-protocol]
                _buffer_key(table_name, "$insert_version"))
            table._delete_version = view(  # astore: ignore[stamp-protocol]
                _buffer_key(table_name, "$delete_version"))
        db.add_table(table)
    for child_table, child_column, parent_table, parent_key in \
            manifest.references:
        db.add_reference(child_table, child_column, parent_table, parent_key)

    from .statistics import ColumnCodeSetMap, ColumnZoneMap, DeletionZoneMap

    zone_maps: List[tuple] = []
    for record in manifest.zone_maps:
        store_key, kind, block_rows, keys = record[:4]
        if kind == "column":
            value: object = ColumnZoneMap(block_rows, view(keys[0]),
                                          view(keys[1]))
        elif kind == "codes":
            extra = record[4]
            value = ColumnCodeSetMap(block_rows, extra["domain"],
                                     view(keys[0]), view(keys[1]),
                                     extra["exact"])
        else:
            value = DeletionZoneMap(block_rows, view(keys[0]))
        zone_maps.append((store_key, value))
    return AttachedDatabase(db, shm, zone_maps)


def _wrap_column(entry: dict, data: np.ndarray):
    layout = entry["layout"]
    name = entry["name"]
    if layout == "air":
        return AIRColumn.wrap_air(name, entry["referenced_table"], data)
    if layout == "dict":
        return DictColumn.wrap(name, entry["dictionary"], data)
    if layout == "string":
        return StringColumn.wrap(name, entry["heap"], data)
    if layout == "fixed":
        return FixedColumn.wrap(name, DataType(entry["dtype"]), data)
    raise StorageError(f"unknown column layout {layout!r} in manifest")

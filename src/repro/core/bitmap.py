"""Packed bit vectors.

A-Store uses bit vectors for *predicate filters* (one bit per dimension
tuple; "1" means the tuple satisfies the dimension predicates) and for
*deletion vectors* (lazy deletion, Section 4.4).  The packed representation
matters: the paper's cache argument (a 45 MB LLC holds a 377-million-bit
filter) only works because filters are bit-packed, and the optimizer here
uses :meth:`Bitmap.nbytes` for the same fit-in-cache decision.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError

_WORD_BITS = 64


class Bitmap:
    """A fixed-length packed bit vector with vectorized bulk operations.

    Bits are stored little-endian within ``uint64`` words.  All bulk
    operations (AND/OR/NOT, population count, gather) are NumPy-vectorized.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int, fill: bool = False):
        if nbits < 0:
            raise StorageError(f"bitmap size must be >= 0, got {nbits}")
        self._nbits = nbits
        nwords = (nbits + _WORD_BITS - 1) // _WORD_BITS
        value = np.uint64(0xFFFFFFFFFFFFFFFF) if fill else np.uint64(0)
        self._words = np.full(nwords, value, dtype=np.uint64)
        if fill:
            self._mask_tail()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "Bitmap":
        """Pack a boolean array into a bitmap."""
        mask = np.asarray(mask, dtype=bool)
        bm = cls(len(mask))
        if len(mask):
            packed = np.packbits(mask, bitorder="little")
            pad = (-len(packed)) % 8
            if pad:
                packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
            bm._words = packed.view(np.uint64).copy()
        return bm

    @classmethod
    def from_indices(cls, indices: np.ndarray, nbits: int) -> "Bitmap":
        """Build a bitmap with the given bit positions set."""
        mask = np.zeros(nbits, dtype=bool)
        mask[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bool_array(mask)

    def copy(self) -> "Bitmap":
        """Return an independent copy of this bitmap."""
        out = Bitmap(self._nbits)
        out._words = self._words.copy()
        return out

    # -- size --------------------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Bytes of the packed representation (used by the cache model)."""
        return int(self._words.nbytes)

    # -- single-bit access -------------------------------------------------

    def set(self, i: int, value: bool = True) -> None:
        """Set or clear bit *i*."""
        self._check(i)
        word, bit = divmod(i, _WORD_BITS)
        if value:
            self._words[word] |= np.uint64(1) << np.uint64(bit)
        else:
            self._words[word] &= ~(np.uint64(1) << np.uint64(bit))

    def get(self, i: int) -> bool:
        """Return bit *i*."""
        self._check(i)
        word, bit = divmod(i, _WORD_BITS)
        return bool((self._words[word] >> np.uint64(bit)) & np.uint64(1))

    def __getitem__(self, i: int) -> bool:
        return self.get(i)

    # -- bulk access ---------------------------------------------------------

    def set_many(self, indices: np.ndarray, value: bool = True) -> None:
        """Set (or clear) every bit listed in *indices*."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return
        if indices.min() < 0 or indices.max() >= self._nbits:
            raise StorageError("bit index out of range")
        words, bits = np.divmod(indices, _WORD_BITS)
        masks = np.uint64(1) << bits.astype(np.uint64)
        if value:
            np.bitwise_or.at(self._words, words, masks)
        else:
            np.bitwise_and.at(self._words, words, ~masks)

    def test(self, indices: np.ndarray) -> np.ndarray:
        """Gather: return a boolean array of the bits at *indices*.

        This is the probe operation used during the universal-table scan:
        the fact table's AIR column supplies *indices* and the result says
        which fact tuples pass the dimension's predicate filter.
        """
        indices = np.asarray(indices, dtype=np.int64)
        words, bits = np.divmod(indices, _WORD_BITS)
        return ((self._words[words] >> bits.astype(np.uint64)) & np.uint64(1)).astype(bool)

    def to_bool_array(self) -> np.ndarray:
        """Unpack into a boolean array of length ``len(self)``."""
        if self._nbits == 0:
            return np.zeros(0, dtype=bool)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._nbits].astype(bool)

    def to_indices(self) -> np.ndarray:
        """Return the positions of all set bits, ascending."""
        return np.flatnonzero(self.to_bool_array()).astype(np.int64)

    def count(self) -> int:
        """Population count (number of set bits)."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    # -- logical operations --------------------------------------------------

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other)
        out = Bitmap(self._nbits)
        np.bitwise_and(self._words, other._words, out=out._words)
        return out

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_size(other)
        out = Bitmap(self._nbits)
        np.bitwise_or(self._words, other._words, out=out._words)
        return out

    def __invert__(self) -> "Bitmap":
        out = Bitmap(self._nbits)
        np.bitwise_not(self._words, out=out._words)
        out._mask_tail()
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __repr__(self) -> str:
        return f"Bitmap(nbits={self._nbits}, set={self.count()})"

    # -- internals -----------------------------------------------------------

    def _check(self, i: int) -> None:
        if not 0 <= i < self._nbits:
            raise StorageError(f"bit index {i} out of range [0, {self._nbits})")

    def _check_same_size(self, other: "Bitmap") -> None:
        if self._nbits != other._nbits:
            raise StorageError(
                f"bitmap size mismatch: {self._nbits} vs {other._nbits}"
            )

    def _mask_tail(self) -> None:
        """Clear the unused bits of the last word."""
        tail = self._nbits % _WORD_BITS
        if tail and len(self._words):
            keep = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self._words[-1] &= keep

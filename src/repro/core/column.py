"""Columns of an array family (Section 2 of the paper).

Every column is backed by a fixed-width NumPy array with reserved free
capacity at the tail (the paper appends into reserved space so insertion
rarely reallocates).  Four physical layouts are provided:

* :class:`FixedColumn` — plain fixed-width values (ints, floats, dates);
* :class:`DictColumn` — dictionary-compressed values: an ``int32`` code
  array plus a :class:`~repro.core.dictionary.Dictionary`;
* :class:`StringColumn` — variable-length strings in a heap, with the heap
  addresses kept in the array (the paper's varchar layout);
* :class:`AIRColumn` — a foreign key stored as array indexes of the
  referenced table (the Array Index Reference itself).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import StorageError
from .dictionary import Dictionary
from .types import DataType

_GROWTH_FACTOR = 1.5
_MIN_CAPACITY = 16


class Column:
    """Abstract base for all column layouts."""

    name: str
    dtype: DataType

    def __len__(self) -> int:
        raise NotImplementedError

    def values(self) -> np.ndarray:
        """The logical values of the column as an array of length ``len``."""
        raise NotImplementedError

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Positional gather: values at the given array indexes."""
        raise NotImplementedError

    def get(self, position: int):
        """Single-value positional access."""
        raise NotImplementedError

    def append(self, values: Sequence) -> None:
        """Append values at the end of the column."""
        raise NotImplementedError

    def put(self, positions: np.ndarray, values: Sequence) -> None:
        """In-place update of existing slots."""
        raise NotImplementedError

    def reorder(self, mapping: np.ndarray) -> None:
        """Physically permute: new column = old column gathered by *mapping*.

        Used by consolidation; *mapping* lists, for each new position, the
        old position whose value it takes, and may shrink the column.
        """
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Bytes of live storage (backing array + auxiliary payloads)."""
        raise NotImplementedError


class FixedColumn(Column):
    """A fixed-width column backed by a growable NumPy array."""

    def __init__(self, name: str, dtype: DataType, data=None, capacity: int = 0):
        if dtype == DataType.STRING:
            raise StorageError("use StringColumn or DictColumn for strings")
        self.name = name
        self.dtype = dtype
        np_dtype = dtype.numpy_dtype
        if data is not None:
            data = np.ascontiguousarray(data, dtype=np_dtype)
            self._n = len(data)
            cap = max(capacity, self._n, _MIN_CAPACITY)
            self._data = np.empty(cap, dtype=np_dtype)
            self._data[: self._n] = data
        else:
            self._n = 0
            self._data = np.empty(max(capacity, _MIN_CAPACITY), dtype=np_dtype)

    @classmethod
    def wrap(cls, name: str, dtype: DataType, data: np.ndarray) -> "FixedColumn":
        """Zero-copy constructor over an existing backing array.

        Used by the shared-memory arena: *data* (typically a read-only view
        into a shared segment) becomes the backing array as-is, with no
        reserved tail capacity.  Appending to a wrapped column reallocates
        into private memory.
        """
        column = cls.__new__(cls)
        column.name = name
        column.dtype = dtype
        column._data = data
        column._n = len(data)
        return column

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Allocated slots (>= len; the tail is reserved free space)."""
        return len(self._data)

    def values(self) -> np.ndarray:
        return self._data[: self._n]

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self._data[: self._n][positions]

    def get(self, position: int):
        if not 0 <= position < self._n:
            raise StorageError(f"position {position} out of range")
        return self._data[position].item()

    def append(self, values: Sequence) -> None:
        values = np.asarray(values, dtype=self.dtype.numpy_dtype)
        self._ensure(self._n + len(values))
        self._data[self._n : self._n + len(values)] = values
        self._n += len(values)

    def put(self, positions: np.ndarray, values: Sequence) -> None:
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= self._n):
            raise StorageError("update position out of range")
        self._data[positions] = np.asarray(values, dtype=self.dtype.numpy_dtype)

    def reorder(self, mapping: np.ndarray) -> None:
        new = self._data[: self._n][mapping]
        self._n = len(new)
        cap = max(int(self._n * _GROWTH_FACTOR), _MIN_CAPACITY)
        self._data = np.empty(cap, dtype=self.dtype.numpy_dtype)
        self._data[: self._n] = new

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def _ensure(self, needed: int) -> None:
        if needed <= len(self._data):
            return
        cap = max(int(needed * _GROWTH_FACTOR), _MIN_CAPACITY)
        grown = np.empty(cap, dtype=self._data.dtype)
        grown[: self._n] = self._data[: self._n]
        self._data = grown

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.dtype.value}, n={self._n})"


class AIRColumn(FixedColumn):
    """A foreign-key column storing array indexes of the referenced table.

    Joining through an AIRColumn is a positional gather on the referenced
    array family — no hash table, no comparison.
    """

    def __init__(self, name: str, referenced_table: str, data=None, capacity: int = 0):
        super().__init__(name, DataType.INT64, data=data, capacity=capacity)
        self.referenced_table = referenced_table

    @classmethod
    def wrap_air(cls, name: str, referenced_table: str,
                 data: np.ndarray) -> "AIRColumn":
        """Zero-copy constructor (see :meth:`FixedColumn.wrap`)."""
        column = cls.wrap(name, DataType.INT64, data)
        column.referenced_table = referenced_table
        return column

    def __repr__(self) -> str:
        return (
            f"AIRColumn({self.name!r} -> {self.referenced_table!r}, n={len(self)})"
        )


class DictColumn(Column):
    """A dictionary-compressed column: int32 codes + a value dictionary.

    The dictionary is a reference table and the code array is effectively an
    AIR column pointing into it, so equality predicates reduce to integer
    comparison on codes and decoding is an array lookup.
    """

    def __init__(self, name: str, values: Optional[Sequence] = None,
                 dictionary: Optional[Dictionary] = None, codes=None):
        self.name = name
        self.dtype = DataType.STRING
        if codes is not None:
            if dictionary is None:
                raise StorageError("codes without a dictionary")
            self.dictionary = dictionary
            self._codes = FixedColumn(name + "$codes", DataType.INT32, data=codes)
        else:
            self.dictionary = dictionary if dictionary is not None else Dictionary()
            self._codes = FixedColumn(name + "$codes", DataType.INT32)
            if values is not None:
                self.append(values)

    @classmethod
    def wrap(cls, name: str, dictionary: Dictionary,
             codes: np.ndarray) -> "DictColumn":
        """Zero-copy constructor over an existing code array."""
        column = cls.__new__(cls)
        column.name = name
        column.dtype = DataType.STRING
        column.dictionary = dictionary
        column._codes = FixedColumn.wrap(name + "$codes", DataType.INT32, codes)
        return column

    def __len__(self) -> int:
        return len(self._codes)

    def codes(self) -> np.ndarray:
        """The raw compression codes (array indexes into the dictionary)."""
        return self._codes.values()

    def values(self) -> np.ndarray:
        return self.dictionary.decode(self._codes.values())

    def take(self, positions: np.ndarray) -> np.ndarray:
        return self.dictionary.decode(self._codes.take(positions))

    def take_codes(self, positions: np.ndarray) -> np.ndarray:
        """Positional gather of raw codes (no decode)."""
        return self._codes.take(positions)

    def get(self, position: int):
        return self.dictionary.decode_one(int(self._codes.get(position)))

    def append(self, values: Sequence) -> None:
        self._codes.append(self.dictionary.encode(values))

    def put(self, positions: np.ndarray, values: Sequence) -> None:
        self._codes.put(positions, self.dictionary.encode(values))

    def reorder(self, mapping: np.ndarray) -> None:
        self._codes.reorder(mapping)

    @property
    def cardinality(self) -> int:
        """Number of distinct values ever stored (dictionary size)."""
        return len(self.dictionary)

    @property
    def nbytes(self) -> int:
        return self._codes.nbytes + self.dictionary.nbytes

    def __repr__(self) -> str:
        return (
            f"DictColumn({self.name!r}, n={len(self)}, "
            f"cardinality={self.cardinality})"
        )


class StringColumn(Column):
    """Variable-length strings stored out-of-line in a heap.

    The column array holds int64 heap addresses, matching the paper's
    varchar layout ("we store its contents in a dynamically allocated
    memory space and keep their addresses in the array").  In-place update
    is possible because only the address cell changes.
    """

    def __init__(self, name: str, values: Optional[Sequence] = None):
        self.name = name
        self.dtype = DataType.STRING
        self._heap: list[str] = []
        self._addr = FixedColumn(name + "$addr", DataType.INT64)
        if values is not None:
            self.append(values)

    @classmethod
    def wrap(cls, name: str, heap: list,
             addresses: np.ndarray) -> "StringColumn":
        """Zero-copy constructor over an existing address array.

        The heap itself is variable-width Python data and is always a
        private copy; only the fixed-width address array is shareable.
        """
        column = cls.__new__(cls)
        column.name = name
        column.dtype = DataType.STRING
        column._heap = list(heap)
        column._addr = FixedColumn.wrap(name + "$addr", DataType.INT64,
                                        addresses)
        return column

    def __len__(self) -> int:
        return len(self._addr)

    def values(self) -> np.ndarray:
        heap = np.empty(len(self._heap), dtype=object)
        heap[:] = self._heap
        return heap[self._addr.values()] if len(self._heap) else np.empty(0, dtype=object)

    def take(self, positions: np.ndarray) -> np.ndarray:
        heap = np.empty(len(self._heap), dtype=object)
        heap[:] = self._heap
        return heap[self._addr.take(positions)]

    def get(self, position: int):
        return self._heap[int(self._addr.get(position))]

    def append(self, values: Sequence) -> None:
        base = len(self._heap)
        values = list(values)
        self._heap.extend(str(v) for v in values)
        self._addr.append(np.arange(base, base + len(values), dtype=np.int64))

    def put(self, positions: np.ndarray, values: Sequence) -> None:
        values = list(values)
        base = len(self._heap)
        self._heap.extend(str(v) for v in values)
        self._addr.put(positions, np.arange(base, base + len(values), dtype=np.int64))

    def reorder(self, mapping: np.ndarray) -> None:
        self._addr.reorder(mapping)

    @property
    def nbytes(self) -> int:
        return self._addr.nbytes + sum(len(s) for s in self._heap)

    def __repr__(self) -> str:
        return f"StringColumn({self.name!r}, n={len(self)})"


def make_column(name: str, values: Sequence, dict_threshold: float = 0.1,
                dtype: Optional[DataType] = None) -> Column:
    """Build the appropriate column layout for *values*.

    Strings become :class:`DictColumn` when their distinct-value ratio is
    below *dict_threshold* (the paper dictionary-compresses low-cardinality
    columns such as ``c_region``), otherwise :class:`StringColumn`.
    """
    from .types import dtype_for_values

    inferred = dtype if dtype is not None else dtype_for_values(values)
    if inferred != DataType.STRING:
        return FixedColumn(name, inferred, data=np.asarray(values))
    values = list(values)
    distinct = len(set(values))
    if len(values) == 0 or distinct <= max(2, dict_threshold * len(values)):
        return DictColumn(name, values=values)
    return StringColumn(name, values=values)

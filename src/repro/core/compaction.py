"""Clustering-preserving compaction: the maintenance re-sort job.

Streaming appends land rows wherever slot reuse puts them and MVCC churn
leaves deleted slots behind, so the hierarchically clustered layout the
loader produced — the layout that makes block summaries (zone maps and
code sets, :mod:`repro.core.statistics`) selective — decays over time.
``astore compact`` (and the serve layer's ``{"compact": table}`` admin
verb) runs :func:`compact_database`:

1. compute the live rows' positions in the table's declared
   :attr:`~repro.core.schema.Database.clustering` order (value order,
   resolving parent-table attributes through one AIR hop);
2. :meth:`~repro.core.schema.Database.consolidate` with that explicit
   order — drops deleted slots, lays rows out clustered, and rewrites
   every incoming AIR reference;
3. eagerly rebuild the table's block summaries into the serving store.

The consolidation bumps the table's mutation stamp (and, through AIR
rewrites, the stamps of referencing children), so every cache tier,
shard worker, and fleet process revalidates — a racing reader can see
the pre- or post-compaction database, never a mix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SchemaError
from .column import AIRColumn, DictColumn
from .schema import Database


def _row_keys(column, rows: np.ndarray) -> np.ndarray:
    """Value-ordered sort keys for *column* at physical positions *rows*.

    Dict-coded columns must not sort by their (insertion-ordered) codes:
    the key is each row's rank in dictionary *value* order.  Any other
    non-numeric column is rank-encoded the same way via ``np.unique``.
    """
    if isinstance(column, DictColumn):
        dictionary = np.asarray(column.dictionary.values, dtype=object)
        rank = np.empty(len(dictionary), dtype=np.int64)
        rank[np.argsort(dictionary, kind="stable")] = np.arange(len(dictionary))
        return rank[np.asarray(column.codes())[rows]]
    values = np.asarray(column.values())
    if values.dtype.kind == "O":
        _, inverse = np.unique(values, return_inverse=True)
        return inverse[rows]
    return values[rows]


def _resolve_key(db: Database, table_name: str, live: np.ndarray,
                 item: str) -> np.ndarray:
    """One clustering-spec entry (``"table.column"``) as per-live-row keys."""
    tab = db.table(table_name)
    tname, _, cname = item.partition(".")
    if not cname:
        raise SchemaError(f"clustering key {item!r} must be 'table.column'")
    if tname == table_name:
        column = tab[cname]
        if isinstance(column, AIRColumn):
            # positions order by parent storage; sort by the declared
            # parent key's value order when one is known
            positions = np.asarray(column.values())[live]
            ref = db.reference_for(table_name, cname)
            if ref is not None and ref.parent_key is not None:
                return _row_keys(db.table(ref.parent_table)[ref.parent_key],
                                 positions)
            return positions
        return _row_keys(column, live)
    for ref in db.outgoing(table_name):
        if ref.parent_table != tname:
            continue
        air = tab[ref.child_column]
        if not isinstance(air, AIRColumn):
            raise SchemaError(
                f"clustering key {item!r} needs the AIR reference "
                f"{table_name}.{ref.child_column} -> {tname}")
        positions = np.asarray(air.values())[live]
        return _row_keys(db.table(tname)[cname], positions)
    raise SchemaError(
        f"clustering key {item!r} is not reachable from {table_name!r}")


def clustering_sort_order(db: Database, table_name: str,
                          spec) -> np.ndarray:
    """The live rows of *table_name* ordered by the clustering *spec*.

    *spec* is a sequence of ``"table.column"`` keys, outermost first.
    Returns physical positions suitable for
    :meth:`~repro.core.schema.Database.consolidate`'s ``order``.
    """
    tab = db.table(table_name)
    live = np.flatnonzero(tab.live_mask()).astype(np.int64)
    if not spec:
        return live
    keys = [_resolve_key(db, table_name, live, item) for item in spec]
    # np.lexsort sorts by its LAST key first; spec is outermost-first
    return live[np.lexsort(tuple(reversed(keys)))]


def compact_database(db: Database, table_name: str, store=None) -> dict:
    """Run the full compaction job on *table_name*; see module docstring.

    Returns ``{"table", "rows", "dropped", "clustered", "summaries"}``:
    the post-compaction row count, how many dead slots were reclaimed,
    whether a clustering spec was applied, and how many block summaries
    were rebuilt (0 when no *store* was supplied).
    """
    from .statistics import rebuild_zone_maps

    tab = db.table(table_name)
    dropped = tab.num_rows - tab.num_live
    spec = db.clustering.get(table_name)
    order: Optional[np.ndarray] = (
        clustering_sort_order(db, table_name, spec) if spec else None)
    db.consolidate(table_name, order=order)
    summaries = rebuild_zone_maps(db, table_name, store) if store is not None else 0
    return {
        "table": table_name,
        "rows": tab.num_rows,
        "dropped": dropped,
        "clustered": bool(spec),
        "summaries": summaries,
    }

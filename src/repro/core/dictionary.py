"""Dictionary compression (Section 2 of the paper).

A-Store stores dictionaries in arrays and uses array indexes as compression
codes, so decompression is a positional array lookup.  A dictionary is in
effect a small reference table, and a dictionary-compressed column is a
foreign-key (AIR) column pointing into it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import StorageError


class Dictionary:
    """An append-only ordered dictionary of distinct values.

    Codes are assigned in first-seen order; code *i* decodes by indexing the
    value array at position *i* — exactly the paper's array-as-dictionary.
    """

    __slots__ = ("_values", "_code_of")

    def __init__(self, values: Iterable = ()):  # noqa: D107 - trivial
        self._values: list = []
        self._code_of: dict = {}
        for v in values:
            self.encode_one(v)

    # -- encoding ------------------------------------------------------------

    def encode_one(self, value) -> int:
        """Return the code for *value*, assigning a new code if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._code_of[value] = code
        return code

    def encode(self, values: Sequence) -> np.ndarray:
        """Encode a sequence of values into an ``int32`` code array."""
        return np.fromiter(
            (self.encode_one(v) for v in values), dtype=np.int32, count=len(values)
        )

    def lookup(self, value) -> int:
        """Return the code for *value*, or -1 if it is not in the dictionary.

        Used for predicate rewriting: a predicate ``col = 'ASIA'`` on a
        dictionary column becomes an integer comparison on the codes.
        """
        return self._code_of.get(value, -1)

    def lookup_many(self, values: Sequence) -> np.ndarray:
        """Vectorized :meth:`lookup` (unknown values map to -1)."""
        return np.fromiter(
            (self._code_of.get(v, -1) for v in values),
            dtype=np.int32,
            count=len(values),
        )

    # -- decoding ------------------------------------------------------------

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Decode a code array back to values (array-indexed lookup)."""
        codes = np.asarray(codes)
        if len(self._values) == 0:
            if len(codes):
                raise StorageError("decode from an empty dictionary")
            return np.empty(0, dtype=object)
        value_array = np.empty(len(self._values), dtype=object)
        value_array[:] = self._values
        return value_array[codes]

    def decode_one(self, code: int):
        """Decode a single code."""
        if not 0 <= code < len(self._values):
            raise StorageError(f"dictionary code {code} out of range")
        return self._values[code]

    # -- introspection ---------------------------------------------------------

    @property
    def values(self) -> list:
        """All distinct values in code order (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._code_of

    @property
    def nbytes(self) -> int:
        """Rough size estimate of the dictionary payload."""
        return sum(
            len(v) if isinstance(v, str) else 8 for v in self._values
        ) + 8 * len(self._values)

    def __repr__(self) -> str:
        return f"Dictionary(size={len(self)})"

"""The catalog: tables, array index references, and the join graph.

The structure of a star/snowflake schema is a directed graph whose vertexes
are tables and whose edges are array index references (FK→PK).  A vertex
with no incoming edge is a *root* (the fact table); the others are *leaf*
(dimension) tables, each reachable from the root through a chain of
references (Section 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import SchemaError
from .column import AIRColumn, DictColumn, StringColumn
from .table import Table


@dataclass(frozen=True)
class Reference:
    """An array index reference: ``child.fk_column → parent``.

    ``parent_key`` names the user-visible key column of the parent that the
    raw data joins on (e.g. ``d_datekey``).  After :meth:`Database.airify`,
    the child column physically stores parent *array indexes* and
    ``parent_key`` is only kept for SQL binding (queries still say
    ``lo_orderdate = d_datekey``).
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_key: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.child_table}.{self.child_column} -> {self.parent_table}"


@dataclass(frozen=True)
class ReferencePath:
    """A chain of references from the root table to one leaf table.

    For the snowflake query of the paper's Fig. 3 one path is
    ``lineitem → order → customer → nation → region``.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    references: tuple

    @property
    def tables(self) -> List[str]:
        """Tables along the path, starting at the root."""
        names = [self.references[0].child_table]
        names.extend(r.parent_table for r in self.references)
        return names

    @property
    def leaf(self) -> str:
        """The final (deepest) table of the path."""
        return self.references[-1].parent_table

    def __len__(self) -> int:
        return len(self.references)

    def __str__(self) -> str:
        return " -> ".join(self.tables)


class Database:
    """A named collection of tables plus the reference (join) graph."""

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.references: List[Reference] = []
        # Declared physical layout per table: a tuple of "table.column"
        # sort keys (outermost first; parent-table attributes resolve
        # through one AIR hop).  Purely descriptive until
        # :meth:`compact` re-establishes it after update churn.
        self.clustering: Dict[str, tuple] = {}

    # -- definition -----------------------------------------------------------

    def add_table(self, table: Table) -> Table:
        """Register a table; its name must be unique."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def create_table(self, name: str, data: Mapping[str, Sequence],
                     dict_threshold: float = 0.1, mvcc: bool = False) -> Table:
        """Create and register a table from column data."""
        return self.add_table(
            Table.from_arrays(name, data, dict_threshold=dict_threshold, mvcc=mvcc)
        )

    def add_reference(self, child_table: str, child_column: str,
                      parent_table: str, parent_key: Optional[str] = None) -> Reference:
        """Declare a FK→PK reference edge in the join graph."""
        for spec, table in ((child_table, child_table), (parent_table, parent_table)):
            if spec not in self.tables:
                raise SchemaError(f"unknown table {table!r} in reference")
        if child_column not in self.tables[child_table]:
            raise SchemaError(
                f"unknown column {child_column!r} in table {child_table!r}"
            )
        if parent_key is not None and parent_key not in self.tables[parent_table]:
            raise SchemaError(
                f"unknown key column {parent_key!r} in table {parent_table!r}"
            )
        ref = Reference(child_table, child_column, parent_table, parent_key)
        self.references.append(ref)
        return ref

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    # -- join graph -------------------------------------------------------------

    def outgoing(self, table: str) -> List[Reference]:
        """References whose child is *table* (edges leaving the vertex)."""
        return [r for r in self.references if r.child_table == table]

    def incoming(self, table: str) -> List[Reference]:
        """References whose parent is *table* (edges entering the vertex)."""
        return [r for r in self.references if r.parent_table == table]

    def roots(self) -> List[str]:
        """Tables with no incoming reference — the fact table(s)."""
        referenced = {r.parent_table for r in self.references}
        return [name for name in self.tables if name not in referenced]

    def reference_paths(self, root: str,
                        restrict_to: Optional[Iterable[str]] = None) -> List[ReferencePath]:
        """All reference chains from *root*, optionally restricted to a
        subset of tables (the tables a query actually touches).

        One path is returned per reachable table, deepest chain form; the
        result is ordered by path length so snowflake chains can be folded
        outside-in.
        """
        allowed = set(restrict_to) if restrict_to is not None else None
        paths: List[ReferencePath] = []
        stack: List[tuple] = [(root, ())]
        seen = set()
        while stack:
            current, refs = stack.pop()
            for ref in self.outgoing(current):
                if allowed is not None and ref.parent_table not in allowed:
                    continue
                if ref.parent_table in seen:
                    raise SchemaError(
                        f"table {ref.parent_table!r} reachable through multiple "
                        "paths; not a tree-shaped schema"
                    )
                seen.add(ref.parent_table)
                chain = refs + (ref,)
                paths.append(ReferencePath(chain))
                stack.append((ref.parent_table, chain))
        return sorted(paths, key=len)

    def reference_for(self, child_table: str, child_column: str) -> Optional[Reference]:
        """The reference declared on ``child_table.child_column``, if any."""
        for ref in self.references:
            if ref.child_table == child_table and ref.child_column == child_column:
                return ref
        return None

    # -- AIR loading ------------------------------------------------------------

    def airify(self) -> None:
        """Convert every key-valued FK column into an AIR column.

        This is the load-time step that bakes the join into the storage
        model: for each declared reference whose child column still holds
        parent *key values*, build the parent key→position map once, map
        the child values to parent array indexes, and replace the column
        with an :class:`AIRColumn`.  After this, all joins are positional.
        """
        for ref in self.references:
            child = self.table(ref.child_table)
            column = child[ref.child_column]
            if isinstance(column, AIRColumn):
                continue
            if ref.parent_key is None:
                # Values are already positions by construction; just retag.
                child.replace_column(
                    ref.child_column,
                    AIRColumn(ref.child_column, ref.parent_table,
                              data=np.asarray(column.values(), dtype=np.int64)),
                )
                continue
            parent = self.table(ref.parent_table)
            key_column = parent[ref.parent_key]
            positions = _key_to_position(key_column, column.values())
            child.replace_column(
                ref.child_column,
                AIRColumn(ref.child_column, ref.parent_table, data=positions),
            )

    def consolidate(self, table_name: str,
                    order: Optional[np.ndarray] = None) -> np.ndarray:
        """Consolidate *table_name* and rewrite all incoming AIR columns.

        *order* optionally lays the surviving rows out in an explicit
        physical order (see :meth:`Table.consolidate`).  Dangling
        references (children pointing at deleted parent slots) are
        rejected — deletion of referenced dimension tuples violates the FK
        constraint, exactly as in a conventional warehouse.
        """
        mapping = self.table(table_name).consolidate(order=order)
        for ref in self.incoming(table_name):
            child = self.table(ref.child_table)
            column = child[ref.child_column]
            if not isinstance(column, AIRColumn):
                continue
            old = column.values()
            new = mapping[old]
            live = child.live_mask()
            if len(new) and (new[live] < 0).any():
                raise SchemaError(
                    f"consolidating {table_name!r} would break reference {ref}"
                )
            # deleted child rows may hold stale references; park them at 0
            # (their slots are rewritten wholesale on reuse)
            new = np.where(new < 0, 0, new)
            child.replace_column(
                ref.child_column,
                AIRColumn(ref.child_column, ref.parent_table, data=new),
            )
        return mapping

    def compact(self, table_name: str, store=None) -> dict:
        """Clustering-preserving compaction of *table_name*.

        Re-sorts the live rows into the table's declared
        :attr:`clustering` order (plain consolidation when none is
        declared), rewrites incoming AIR references, and rebuilds the
        block summaries in *store* (when given).  Every mutation stamp
        the operation touches is bumped by the underlying consolidation,
        so cache tiers and fleet workers revalidate.  Returns a summary
        dict; see :func:`repro.core.compaction.compact_database`.
        """
        from .compaction import compact_database
        return compact_database(self, table_name, store=store)

    # -- introspection -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total storage footprint of all tables."""
        return sum(t.nbytes for t in self.tables.values())

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={list(self.tables)}, "
            f"references={len(self.references)})"
        )


def _key_to_position(key_column, fk_values) -> np.ndarray:
    """Map child FK key values onto parent array indexes."""
    keys = key_column.values()
    fk_values = np.asarray(fk_values)
    if isinstance(key_column, (DictColumn, StringColumn)) or keys.dtype.kind == "O":
        lookup = {k: i for i, k in enumerate(keys)}
        try:
            return np.fromiter(
                (lookup[v] for v in fk_values), dtype=np.int64, count=len(fk_values)
            )
        except KeyError as exc:
            raise SchemaError(f"dangling foreign key value {exc.args[0]!r}") from None
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    slots = np.searchsorted(sorted_keys, fk_values)
    slots = np.clip(slots, 0, len(sorted_keys) - 1)
    if len(fk_values) and not np.array_equal(sorted_keys[slots], fk_values):
        bad = fk_values[sorted_keys[slots] != fk_values][0]
        raise SchemaError(f"dangling foreign key value {bad!r}")
    return order[slots].astype(np.int64)

"""Cross-process shared cache tiers: one segment, many serving workers.

A fleet of ``astore serve`` worker processes (see
:mod:`repro.engine.fleet`) each runs its own engine and its own
per-process :class:`~repro.engine.cache.QueryCache` — but a result one
worker computed is just as valid in every sibling.  The
:class:`SharedQueryStore` is the second-level backend behind those
per-process tiers: a single POSIX shared-memory segment
(``multiprocessing.shared_memory``, the same machinery as
:mod:`repro.core.arena`) holding pickled plan/result payloads plus the
*published mutation stamps* that keep cross-process invalidation exactly
as precise as the single-process tiers.

Segment layout (all regions 64-byte aligned, numpy views over the
mapping)::

    [ header ]  magic/version, geometry, write cursor, generation,
                shared counters (hits/misses/stores/invalidations/...)
    [ stamps ]  open-addressed (table-name hash -> published mutation
                count) slots — the mutation broadcast table
    [ slots  ]  open-addressed entry directory: 16-byte key digest ->
                (offset, length, generation, lru sequence)
    [ data   ]  bump-allocated entry heap; entries are
                u32 stamp-length | pickled stamps | payload bytes

**Freshness.**  Every entry records the ``(table, mutation_count)``
stamps it was computed under.  A reader with local count ``L`` and
published count ``P`` accepts an entry stamped ``C`` iff ``C == L`` and
``P <= C`` — so a worker that has applied a mutation rejects every
pre-mutation entry (``C != L``), and a worker that has *not yet* applied
a broadcast mutation rejects entries that raced it (``P > C``).
:meth:`publish_stamps` is the broadcast: whoever applies (or first
observes) a mutation raises the published count, and every sibling's
shared lookups go cold until fresh entries are stored.

**Eviction.**  The heap is a bump allocator; when it fills, the
*generation* counter bumps and the cursor resets — one epoch flush
drops every older entry (their directory slots fail the generation
check).  Coarse, but O(1), allocation-free, and exactly as safe as the
stamp protocol: a dropped entry is a miss, never a wrong answer.

**Locking and lifecycle.**  Cross-process mutual exclusion is one
``fcntl.lockf`` byte-range lock on a sidecar lock file (operations are
an index probe plus a memcpy, so a single exclusive lock beats
reader/writer juggling), combined with an in-process lock because POSIX
record locks are per-process.  A *second* byte of the lock file is the
liveness lock: every attached process holds it shared for its lifetime,
and the kernel releases it on process death — no matter how the process
died.  :func:`sweep_stale_segments` (run on fleet start) removes any
``astore-sqs-*`` segment whose liveness byte can be locked exclusively,
so a SIGKILLed fleet never strands ``/dev/shm`` segments or the store's
lock.  The creating process owns the segment and unlinks it on close;
attachers only drop their mapping.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import struct
import tempfile
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import StorageError

try:  # POSIX record locks; the store is unavailable without them
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Segment name prefix — the stale sweep only ever touches these.
SEGMENT_PREFIX = "astore-sqs-"

_ALIGN = 64
_MAGIC = 0x41535153  # "ASQS"
_VERSION = 1

_HEADER_DTYPE = np.dtype([
    ("magic", "<u8"), ("version", "<u8"),
    ("stamp_slots", "<u8"), ("entry_slots", "<u8"),
    ("data_offset", "<u8"), ("data_size", "<u8"),
    ("cursor", "<u8"), ("generation", "<u8"), ("seq", "<u8"),
    ("hits", "<u8"), ("misses", "<u8"), ("stores", "<u8"),
    ("invalidations", "<u8"), ("evictions", "<u8"),
    ("stamp_publishes", "<u8"), ("rejected", "<u8"),
])

_STAMP_DTYPE = np.dtype([
    ("used", "<u8"), ("key", "<u8"), ("count", "<u8"),
])

_SLOT_DTYPE = np.dtype([
    ("used", "<u8"), ("digest", "S16"),
    ("offset", "<u8"), ("length", "<u8"),
    ("generation", "<u8"), ("seq", "<u8"),
])

#: Linear-probe window for the entry directory (collisions past the
#: window overwrite the least-recently-stored slot in it).
_PROBE = 8

_COUNTER_FIELDS = ("hits", "misses", "stores", "invalidations",
                   "evictions", "stamp_publishes", "rejected")

Stamps = Tuple[Tuple[str, int], ...]


def store_available() -> bool:
    """Whether this platform can host a shared store (POSIX locks)."""
    return fcntl is not None and os.name == "posix"


def _align(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


def _lock_path(segment: str) -> str:
    return os.path.join(tempfile.gettempdir(), f"{segment}.lock")


def _name_hash(name: str) -> int:
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") or 1  # 0 is the empty slot


def _token_digest(token: str) -> bytes:
    return hashlib.blake2b(token.encode(), digest_size=16).digest()


class StampLane:
    """The published-stamp protocol over a plain dict (thread-safe).

    :class:`SharedQueryStore` broadcasts per-table mutation counts
    through a fixed shm table (:meth:`SharedQueryStore.publish_stamps`),
    with two invariants: published counts only ever *max-merge* (so
    replays and racing publishes are harmless), and nothing stamped
    older than either the local data or a published count may be
    served.  Remote shard nodes speak the same lane over their request
    socket instead of shared memory — a coordinator that applies (or
    observes) a mutation publishes its stamps to every node, and a node
    refuses any plan whose stamps trail the lane, so no node ever
    serves a pre-mutation result.
    """

    def __init__(self):
        self._published: dict = {}
        self._lock = threading.Lock()

    def publish(self, stamps: Stamps) -> None:
        """Max-merge *stamps* (``((table, count), ...)``) into the lane."""
        with self._lock:
            for name, count in stamps:
                if int(count) > self._published.get(name, 0):
                    self._published[name] = int(count)

    def published_count(self, name: str) -> int:
        """The broadcast mutation count of table *name* (0 = never)."""
        with self._lock:
            return self._published.get(name, 0)

    def snapshot(self) -> dict:
        """Copy of every published count (introspection: a shard node
        answers ``("lane",)`` requests with this)."""
        with self._lock:
            return dict(self._published)

    def admits(self, stamps: Stamps, db) -> bool:
        """Mirror of :meth:`SharedQueryStore._fresh` over this lane:
        *stamps* must match the local data exactly and must not trail
        any published count."""
        with self._lock:
            for name, count in stamps:
                try:
                    local = db.table(name).mutation_count
                except Exception:
                    return False
                if count != local:
                    return False
                if self._published.get(name, 0) > count:
                    return False
        return True


class _LockFile:
    """The store's sidecar lock file: byte 0 = liveness, byte 1 = mutex."""

    _LIVENESS, _MUTEX = 0, 1

    def __init__(self, segment: str):
        self.path = _lock_path(segment)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        # held (shared) until close: the kernel drops it on process
        # death, so a lockable liveness byte == every holder is gone
        fcntl.lockf(self._fd, fcntl.LOCK_SH, 1, self._LIVENESS)

    def acquire(self) -> None:
        fcntl.lockf(self._fd, fcntl.LOCK_EX, 1, self._MUTEX)

    def release(self) -> None:
        fcntl.lockf(self._fd, fcntl.LOCK_UN, 1, self._MUTEX)

    def close(self, unlink: bool = False) -> None:
        fd, self._fd = self._fd, -1
        if fd < 0:
            return
        os.close(fd)  # closing drops both record locks
        if unlink:
            try:
                os.unlink(self.path)
            except OSError:
                pass


class SharedQueryStore:
    """A shared-memory second-level cache shared by a worker fleet.

    Create with :meth:`create` (the owner; unlinks on close) or
    :meth:`attach` (workers; close only drops the mapping).  All methods
    are safe to call concurrently from any number of threads and
    processes.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool,
                 max_entry_bytes: int):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._owner = owner
        self.max_entry_bytes = max_entry_bytes
        self._tlock = threading.RLock()  # record locks are per-process
        self._lockfile = _LockFile(shm.name)
        header = np.ndarray(1, dtype=_HEADER_DTYPE, buffer=shm.buf)[0]
        if owner:
            pass  # create() initialised the header before we got here
        elif int(header["magic"]) != _MAGIC:
            self._lockfile.close()
            shm.close()
            raise StorageError(
                f"segment {shm.name!r} is not a SharedQueryStore")
        elif int(header["version"]) != _VERSION:
            self._lockfile.close()
            shm.close()
            raise StorageError(
                f"store {shm.name!r} has layout version "
                f"{int(header['version'])}, expected {_VERSION}")
        self._header = np.ndarray(1, dtype=_HEADER_DTYPE, buffer=shm.buf)
        stamp_off = _align(_HEADER_DTYPE.itemsize)
        self._stamps = np.ndarray(
            int(header["stamp_slots"]), dtype=_STAMP_DTYPE,
            buffer=shm.buf, offset=stamp_off)
        slot_off = stamp_off + _align(self._stamps.nbytes)
        self._slots = np.ndarray(
            int(header["entry_slots"]), dtype=_SLOT_DTYPE,
            buffer=shm.buf, offset=slot_off)
        self._data_offset = int(header["data_offset"])
        self._data_size = int(header["data_size"])
        _LIVE_STORES[shm.name] = self

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, data_bytes: int = 64 << 20, entry_slots: int = 512,
               stamp_slots: int = 128,
               max_entry_bytes: int = 32 << 20) -> "SharedQueryStore":
        """Create a new store; the caller owns (and later unlinks) it."""
        if not store_available():
            raise StorageError(
                "SharedQueryStore needs POSIX record locks (fcntl)")
        stamp_off = _align(_HEADER_DTYPE.itemsize)
        slot_off = stamp_off + _align(stamp_slots * _STAMP_DTYPE.itemsize)
        data_off = slot_off + _align(entry_slots * _SLOT_DTYPE.itemsize)
        total = data_off + _align(data_bytes)
        suffix = hashlib.blake2b(os.urandom(16), digest_size=6).hexdigest()
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{suffix}"
        # (a fresh POSIX segment is zero-filled, so slots/stamps start empty)
        shm = shared_memory.SharedMemory(create=True, name=name, size=total)
        header = np.ndarray(1, dtype=_HEADER_DTYPE, buffer=shm.buf)
        header[0] = (_MAGIC, _VERSION, stamp_slots, entry_slots,
                     data_off, _align(data_bytes), 0, 0, 0,
                     0, 0, 0, 0, 0, 0, 0)
        return cls(shm, owner=True,
                   max_entry_bytes=min(max_entry_bytes, data_bytes))

    @classmethod
    def attach(cls, segment: str,
               max_entry_bytes: int = 32 << 20) -> "SharedQueryStore":
        """Attach to an existing store by segment name."""
        if not store_available():
            raise StorageError(
                "SharedQueryStore needs POSIX record locks (fcntl)")
        try:
            shm = _attach_untracked(segment)
        except FileNotFoundError:
            raise StorageError(
                f"shared store segment {segment!r} does not exist") from None
        return cls(shm, owner=False, max_entry_bytes=max_entry_bytes)

    # -- core protocol ------------------------------------------------------

    def get(self, token: str, db) -> Optional[Tuple[Stamps, bytes]]:
        """The ``(stamps, payload)`` stored under *token*, or ``None``.

        Freshness is checked here, under the store lock, against *db*'s
        live mutation counts and the published broadcast counts — a
        stale entry is dropped (and counted) instead of returned.  The
        returned stamps passed that check, so the caller can stamp a
        promoted local entry with them verbatim.
        """
        digest = _token_digest(token)
        with self._lock():
            header = self._header[0]
            index = self._find(digest)
            if index < 0:
                header["misses"] += 1
                return None
            slot = self._slots[index]
            blob = self._read_blob(slot)
            if blob is None:
                slot["used"] = 0
                header["misses"] += 1
                return None
            stamps, payload = blob
            if not self._fresh(stamps, db):
                slot["used"] = 0
                header["invalidations"] += 1
                header["misses"] += 1
                return None
            header["seq"] += 1
            slot["seq"] = header["seq"]
            header["hits"] += 1
            return stamps, payload

    def put(self, token: str, stamps: Stamps, payload: bytes) -> bool:
        """Store *payload* under *token*; False when it cannot fit."""
        stamp_bytes = pickle.dumps(tuple(stamps),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        blob = struct.pack("<I", len(stamp_bytes)) + stamp_bytes + payload
        need = _align(len(blob))
        digest = _token_digest(token)
        with self._lock():
            header = self._header[0]
            if need > self._data_size or len(payload) > self.max_entry_bytes:
                header["rejected"] += 1
                return False
            cursor = int(header["cursor"])
            if cursor + need > self._data_size:
                # epoch flush: restart the heap, orphaning every entry
                # of the previous generation (they fail the generation
                # check and read as misses)
                live = int(np.count_nonzero(
                    (self._slots["used"] != 0)
                    & (self._slots["generation"] == header["generation"])))
                header["evictions"] += live
                header["generation"] += 1
                cursor = 0
            view = np.frombuffer(blob, dtype=np.uint8)
            start = self._data_offset + cursor
            dst = np.ndarray(len(blob), dtype=np.uint8,
                             buffer=self._shm.buf, offset=start)
            dst[...] = view
            header["cursor"] = cursor + need
            header["seq"] += 1
            index = self._claim(digest)
            self._slots[index] = (1, digest, cursor, len(blob),
                                  header["generation"], header["seq"])
            header["stores"] += 1
            return True

    def publish_stamps(self, db) -> None:
        """Broadcast *db*'s current mutation counts to every sibling.

        Called by whoever applies (or first locally observes) a
        mutation; published counts only ever go up, so replays and
        concurrent publishes are harmless.
        """
        with self._lock():
            header = self._header[0]
            for name, table in db.tables.items():
                self._publish_one(_name_hash(name), table.mutation_count)
            header["stamp_publishes"] += 1

    def published_count(self, name: str) -> int:
        """The broadcast mutation count of table *name* (0 = never)."""
        with self._lock():
            index = self._find_stamp(_name_hash(name))
            return int(self._stamps[index]["count"]) if index >= 0 else 0

    # -- freshness ----------------------------------------------------------

    def _fresh(self, stamps: Stamps, db) -> bool:
        for name, count in stamps:
            try:
                local = db.table(name).mutation_count
            except Exception:
                return False
            if count != local:
                return False
            index = self._find_stamp(_name_hash(name))
            if index >= 0 and int(self._stamps[index]["count"]) > count:
                return False
        return True

    def _publish_one(self, key: int, count: int) -> None:
        slots = self._stamps
        n = len(slots)
        start = key % n
        for step in range(n):
            slot = slots[(start + step) % n]
            if not slot["used"]:
                slot["used"] = 1
                slot["key"] = key
                slot["count"] = count
                return
            if int(slot["key"]) == key:
                slot["count"] = max(int(slot["count"]), count)
                return
        # table full: drop the publish for an arbitrary victim slot —
        # overwriting would resurrect entries of the evicted table, so
        # instead poison the generation to flush everything
        header = self._header[0]
        header["generation"] += 1
        header["cursor"] = 0

    def _find_stamp(self, key: int) -> int:
        slots = self._stamps
        n = len(slots)
        start = key % n
        for step in range(n):
            index = (start + step) % n
            slot = slots[index]
            if not slot["used"]:
                return -1
            if int(slot["key"]) == key:
                return index
        return -1

    # -- entry directory ----------------------------------------------------

    def _find(self, digest: bytes) -> int:
        slots = self._slots
        n = len(slots)
        start = int.from_bytes(digest[:8], "little") % n
        generation = int(self._header[0]["generation"])
        for step in range(_PROBE):
            index = (start + step) % n
            slot = slots[index]
            if (slot["used"] and bytes(slot["digest"]) == digest
                    and int(slot["generation"]) == generation):
                return index
        return -1

    def _claim(self, digest: bytes) -> int:
        slots = self._slots
        n = len(slots)
        start = int.from_bytes(digest[:8], "little") % n
        generation = int(self._header[0]["generation"])
        victim, victim_seq = start % n, None
        for step in range(_PROBE):
            index = (start + step) % n
            slot = slots[index]
            if (not slot["used"]
                    or int(slot["generation"]) != generation
                    or bytes(slot["digest"]) == digest):
                return index
            seq = int(slot["seq"])
            if victim_seq is None or seq < victim_seq:
                victim, victim_seq = index, seq
        self._header[0]["evictions"] += 1
        return victim

    def _read_blob(self, slot) -> Optional[Tuple[Stamps, bytes]]:
        offset = int(slot["offset"])
        length = int(slot["length"])
        if length < 4 or offset + length > self._data_size:
            return None
        start = self._data_offset + offset
        raw = bytes(self._shm.buf[start:start + length])
        (stamp_len,) = struct.unpack_from("<I", raw)
        if 4 + stamp_len > length:
            return None
        try:
            stamps = pickle.loads(raw[4:4 + stamp_len])
        except Exception:
            return None
        return stamps, raw[4 + stamp_len:]

    # -- introspection ------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Fleet-wide cumulative counters (shared across processes)."""
        with self._lock():
            header = self._header[0]
            out = {name: int(header[name]) for name in _COUNTER_FIELDS}
            out["entries"] = int(np.count_nonzero(
                (self._slots["used"] != 0)
                & (self._slots["generation"] == header["generation"])))
            out["generation"] = int(header["generation"])
            out["data_bytes_used"] = int(header["cursor"])
            out["data_bytes_total"] = self._data_size
            return out

    @property
    def segment(self) -> str:
        return self._shm.name if self._shm is not None else ""

    @property
    def closed(self) -> bool:
        return self._shm is None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping (and, for the owner, unlink the segment and
        its lock file).  Idempotent."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        _LIVE_STORES.pop(shm.name, None)
        self._lockfile.close(unlink=self._owner)
        shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedQueryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    def _lock(self):
        return _StoreLock(self)


class _StoreLock:
    """In-process lock + cross-process record lock, as one context."""

    __slots__ = ("_store",)

    def __init__(self, store: SharedQueryStore):
        self._store = store

    def __enter__(self):
        self._store._tlock.acquire()
        if self._store._shm is None:
            self._store._tlock.release()
            raise StorageError("shared store is closed")
        self._store._lockfile.acquire()

    def __exit__(self, *exc):
        try:
            self._store._lockfile.release()
        finally:
            self._store._tlock.release()


# -- process-wide registries --------------------------------------------------


#: Every not-yet-closed store in this process, drained at exit.
_LIVE_STORES: Dict[str, SharedQueryStore] = {}

#: Attach memo: engines configured with ``EngineOptions.shared_store``
#: share one mapping per segment (closed at process exit, never by the
#: engines themselves — the owner unlinks).
_ATTACHED: Dict[str, SharedQueryStore] = {}
_ATTACH_LOCK = threading.Lock()


def attach_store(segment: str) -> SharedQueryStore:
    """The process-wide shared mapping of *segment* (attached once)."""
    with _ATTACH_LOCK:
        store = _ATTACHED.get(segment)
        if store is None or store.closed:
            store = _ATTACHED[segment] = SharedQueryStore.attach(segment)
        return store


def close_attached_stores() -> None:
    """Drop every memoized attach mapping (worker teardown path)."""
    with _ATTACH_LOCK:
        for store in _ATTACHED.values():
            store.close()
        _ATTACHED.clear()


@atexit.register
def _drain_live_stores() -> None:  # pragma: no cover - process teardown
    for store in list(_LIVE_STORES.values()):
        store.close()


def _attach_untracked(segment: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    On Python versions where attaching registers the segment (the owner
    already did), an *independent* attacher's tracker would unlink the
    segment under the owner when the attacher exits.  Suppressing the
    registration for the attach call leaves the owner's accounting
    intact in every topology (spawned child or unrelated process)."""
    try:  # pragma: no cover - depends on stdlib version
        from multiprocessing import resource_tracker
        original = resource_tracker.register
    except Exception:
        return shared_memory.SharedMemory(name=segment)
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=segment)
    finally:
        resource_tracker.register = original


# -- stale-segment sweep ------------------------------------------------------


def list_segments() -> List[str]:
    """All ``astore-sqs-*`` segments currently in ``/dev/shm``."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(name for name in os.listdir(shm_dir)
                  if name.startswith(SEGMENT_PREFIX))


def sweep_stale_segments() -> List[str]:
    """Remove store segments whose every holder has died.

    A segment is stale when its lock file's liveness byte can be locked
    exclusively (the kernel releases record locks on process death, so
    SIGKILL mid-serve still counts) — or when the lock file is gone
    entirely.  Returns the removed segment names.
    """
    removed: List[str] = []
    if not store_available():
        return removed
    for segment in list_segments():
        if segment in _LIVE_STORES:
            continue  # ours, definitionally live
        path = _lock_path(segment)
        stale = False
        try:
            fd = os.open(path, os.O_RDWR)
        except FileNotFoundError:
            stale = True
        else:
            try:
                fcntl.lockf(fd, fcntl.LOCK_EX | fcntl.LOCK_NB, 1, 0)
            except OSError:
                pass  # somebody holds the liveness byte: live store
            else:
                stale = True
            finally:
                os.close(fd)
        if stale:
            try:
                os.unlink(os.path.join("/dev/shm", segment))
            except OSError:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass
            removed.append(segment)
    return removed

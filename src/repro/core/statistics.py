"""Column and table statistics for cost-based planning and data skipping.

A-Store's optimizer needs three quantities: predicate selectivities,
dimension sizes (filter-vs-probe), and group-by cardinalities
(array-vs-hash).  This module collects them once at load time so repeated
planning does not re-sample the data; the optimizer falls back to its
sampling estimators for columns without collected statistics.

It also owns the **zone maps** behind the engine's block-level data
skipping: per-block min/max summaries (plus a deletion summary) of a
table's fixed-width columns, built lazily per column and stamped with
``Table.mutation_count`` so a mutated table can never satisfy a lookup
with a stale summary.  Zone maps live in any mutation-stamped store
honouring the ``get(tier, key, db)`` / ``put(tier, key, value, stamps,
nbytes)`` protocol — the engine passes its shared
:class:`~repro.engine.cache.QueryCache` (the ``"zone"`` tier), process
workers pass the cache of their attached database (seeded zero-copy from
the arena manifest), and library users fall back to a private per-database
store created here.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SchemaError
from .column import AIRColumn, DictColumn, FixedColumn, StringColumn
from .schema import Database
from .table import Table


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column.

    ``distinct`` is exact for dictionary columns and for columns scanned
    whole; for sampled columns it is a lower bound flagged by
    ``is_estimate``.
    """

    rows: int
    distinct: int
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    is_estimate: bool = False

    @property
    def density(self) -> float:
        """Average rows per distinct value."""
        return self.rows / self.distinct if self.distinct else 0.0


@dataclass
class TableStatistics:
    """Statistics for every column of one table."""

    rows: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)


def collect_statistics(db: Database, sample_rows: int = 262_144
                       ) -> Dict[str, TableStatistics]:
    """Collect statistics for all tables and attach them to *db*.

    The result is stored on ``db.statistics`` (and returned).  Columns of
    tables larger than *sample_rows* are sampled evenly; the ``distinct``
    count is then marked as an estimate.
    """
    stats: Dict[str, TableStatistics] = {}
    for name, table in db.tables.items():
        stats[name] = _table_statistics(table, sample_rows)
    db.statistics = stats  # type: ignore[attr-defined]
    return stats


def _table_statistics(table: Table, sample_rows: int) -> TableStatistics:
    out = TableStatistics(rows=table.num_rows)
    for col_name, column in table.columns.items():
        if isinstance(column, DictColumn):
            out.columns[col_name] = ColumnStatistics(
                rows=len(column), distinct=column.cardinality)
            continue
        if isinstance(column, StringColumn):
            values = column.values()
            sampled = len(values) > sample_rows
            if sampled:
                idx = np.linspace(0, len(values) - 1, sample_rows).astype(int)
                values = values[idx]
            out.columns[col_name] = ColumnStatistics(
                rows=len(column), distinct=len(set(values)),
                is_estimate=sampled)
            continue
        values = column.values()
        sampled = len(values) > sample_rows
        probe = values
        if sampled:
            idx = np.linspace(0, len(values) - 1, sample_rows).astype(int)
            probe = values[idx]
        distinct = int(len(np.unique(probe)))
        minimum = float(values.min()) if len(values) else None
        maximum = float(values.max()) if len(values) else None
        if isinstance(column, AIRColumn):
            # an AIR column's domain is the parent table's row space
            distinct = min(distinct, int(maximum - minimum + 1)) if len(values) else 0
        out.columns[col_name] = ColumnStatistics(
            rows=len(column), distinct=distinct, minimum=minimum,
            maximum=maximum, is_estimate=sampled)
    return out


def statistics_for(db: Database, table: str,
                   column: str) -> Optional[ColumnStatistics]:
    """Collected statistics for one column, or None if not collected."""
    stats = getattr(db, "statistics", None)
    if stats is None or table not in stats:
        return None
    return stats[table].columns.get(column)


def validate_references(db: Database) -> list[str]:
    """Check referential integrity of every AIR column.

    Returns a list of human-readable problems (empty = consistent):
    out-of-range references, references to deleted parent slots, and
    declared references that were never AIR-loaded.
    """
    problems: list[str] = []
    for ref in db.references:
        child = db.table(ref.child_table)
        column = child[ref.child_column]
        if not isinstance(column, AIRColumn):
            problems.append(f"{ref}: child column is not AIR-loaded")
            continue
        parent = db.table(ref.parent_table)
        refs = column.values()
        live_child = child.live_mask()
        active = refs[live_child]
        if len(active) == 0:
            continue
        if active.min() < 0 or active.max() >= parent.num_rows:
            problems.append(f"{ref}: reference out of range "
                            f"[0, {parent.num_rows})")
            continue
        if parent.has_deletes:
            parent_live = parent.live_mask()
            dangling = ~parent_live[active]
            if dangling.any():
                bad = int(active[dangling][0])
                problems.append(
                    f"{ref}: live child rows reference deleted parent "
                    f"slot {bad}")
    return problems


def assert_consistent(db: Database) -> None:
    """Raise :class:`SchemaError` if :func:`validate_references` finds
    any integrity violation."""
    problems = validate_references(db)
    if problems:
        raise SchemaError("; ".join(problems))


# -- zone maps (block-level data skipping) ------------------------------------


#: Largest zone-map block; :func:`default_zone_block_rows` never exceeds it.
MAX_ZONE_BLOCK_ROWS = 65536
#: Smallest zone-map block (finer summaries stop paying for themselves).
MIN_ZONE_BLOCK_ROWS = 1024


def default_zone_block_rows(num_rows: int) -> int:
    """The block size used when the caller does not force one.

    Targets ~256 blocks per table (fine enough that a selective band's
    boundary blocks waste little) on power-of-two boundaries, clamped to
    [:data:`MIN_ZONE_BLOCK_ROWS`, :data:`MAX_ZONE_BLOCK_ROWS`] so tiny
    tables do not get per-row summaries and huge tables do not get
    megablock summaries.  Verdict evaluation is O(blocks) on a handful
    of vectors, so resolution is nearly free.
    """
    if num_rows <= 0:
        return MIN_ZONE_BLOCK_ROWS
    target = max(1, num_rows // 256)
    block = 1 << max(0, target - 1).bit_length()
    return max(MIN_ZONE_BLOCK_ROWS, min(MAX_ZONE_BLOCK_ROWS, block))


@dataclass(frozen=True)
class ColumnZoneMap:
    """Per-block min/max of one fixed-width column.

    Block *b* covers physical rows ``[b * block_rows, (b+1) * block_rows)``
    — including deleted slots, whose values can only *widen* a block's
    range, so a summary built over physical rows is always a sound
    superset of any visible selection.  Float columns summarize with
    NaN-ignoring reducers so a block mixing NaNs and values keeps usable
    bounds; an all-NaN block keeps NaN bounds, on which every interval
    comparison is False — such a block is conservatively *scanned*, and
    its NaN rows then fail the predicates row-wise, so results are
    unaffected either way.
    """

    block_rows: int
    mins: np.ndarray
    maxs: np.ndarray

    @property
    def nblocks(self) -> int:
        return len(self.mins)

    @property
    def nbytes(self) -> int:
        return int(self.mins.nbytes + self.maxs.nbytes)


@dataclass(frozen=True)
class DeletionZoneMap:
    """Per-block deletion summary: does block *b* contain deleted slots?"""

    block_rows: int
    deleted_any: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.deleted_any.nbytes)


def build_column_zone_map(column, block_rows: int) -> Optional[ColumnZoneMap]:
    """A :class:`ColumnZoneMap` for *column*, or ``None`` if the layout
    has no orderable fixed-width values (dictionary codes order by
    insertion, not by value; string heaps are variable-width)."""
    if not isinstance(column, FixedColumn):  # AIRColumn subclasses it
        return None
    values = column.values()
    if values.dtype.kind not in ("i", "u", "f", "b"):
        return None
    n = len(values)
    if n == 0:
        return ColumnZoneMap(block_rows,
                             np.empty(0, dtype=values.dtype),
                             np.empty(0, dtype=values.dtype))
    starts = np.arange(0, n, block_rows, dtype=np.int64)
    if values.dtype.kind == "f":
        mins = np.fmin.reduceat(values, starts)
        maxs = np.fmax.reduceat(values, starts)
    else:
        mins = np.minimum.reduceat(values, starts)
        maxs = np.maximum.reduceat(values, starts)
    return ColumnZoneMap(block_rows, mins, maxs)


def build_deletion_zone_map(table: Table, block_rows: int) -> DeletionZoneMap:
    """Per-block "contains deleted slots" summary of *table*."""
    deleted = table._deleted
    n = len(deleted)
    if n == 0:
        return DeletionZoneMap(block_rows, np.empty(0, dtype=bool))
    starts = np.arange(0, n, block_rows, dtype=np.int64)
    return DeletionZoneMap(
        block_rows, np.logical_or.reduceat(deleted, starts))


#: Cap on the folded width of a code-set bitmap: domains larger than
#: this hash down (``code % fold``), trading exactness of ACCEPT
#: verdicts (never of SKIP soundness) for bounded summary size.
CODE_SET_FOLD_CAP = 1 << 18


@dataclass(frozen=True)
class ColumnCodeSetMap:
    """Per-block membership bitmaps over a small integer code domain.

    The second-generation summary for columns min/max maps cannot help
    with: dictionary codes (ordered by insertion, not value) and AIR
    reference positions (parent-row ids).  Bit ``(b, c % fold)`` is set
    iff block *b* contains a row whose code folds to that slot, where
    ``fold = min(domain, CODE_SET_FOLD_CAP)``.  A block whose bitmap
    misses every queried code can be SKIPped; when ``exact`` (no
    folding) a block whose bitmap is a subset of the queried codes is
    fully ACCEPTed.  Blocks containing out-of-domain codes (stale
    references parked in deleted slots) are flagged ``dirty`` and always
    scanned.
    """

    block_rows: int
    domain: int
    bits: np.ndarray      # (nblocks, ceil(fold / 8)) uint8, packed
    dirty: np.ndarray     # (nblocks,) bool
    exact: bool

    @property
    def fold(self) -> int:
        return min(self.domain, CODE_SET_FOLD_CAP)

    @property
    def nblocks(self) -> int:
        return len(self.bits)

    @property
    def nbytes(self) -> int:
        return int(self.bits.nbytes + self.dirty.nbytes)

    def fold_mask(self, member: np.ndarray) -> np.ndarray:
        """Pack a boolean *member* mask over the domain into the folded
        bit layout of this map (the probe side of a verdict)."""
        fold = self.fold
        if len(member) != self.domain:
            raise ValueError(
                f"member mask over {len(member)} values, domain "
                f"{self.domain}")
        if fold == self.domain:
            folded = member
        else:
            folded = np.zeros(fold, dtype=bool)
            np.logical_or.at(folded, np.flatnonzero(member) % fold, True)
        return np.packbits(folded)


def build_column_code_set_map(column, block_rows: int,
                              domain: Optional[int] = None
                              ) -> Optional[ColumnCodeSetMap]:
    """A :class:`ColumnCodeSetMap` for *column*, or ``None`` when the
    column has no code domain (neither dictionary- nor AIR-coded).

    For AIR columns the caller supplies *domain* (the parent table's
    physical row count); dictionary columns use their own cardinality.
    """
    if isinstance(column, DictColumn):
        codes = column.codes()
        domain = column.cardinality
    elif isinstance(column, AIRColumn):
        if domain is None:
            return None
        codes = column.values()
    else:
        return None
    domain = int(domain)
    if domain <= 0:
        return None
    fold = min(domain, CODE_SET_FOLD_CAP)
    n = len(codes)
    if n == 0:
        return ColumnCodeSetMap(
            block_rows, domain,
            np.empty((0, (fold + 7) // 8), dtype=np.uint8),
            np.empty(0, dtype=bool), fold == domain)
    starts = np.arange(0, n, block_rows, dtype=np.int64)
    nblocks = len(starts)
    codes64 = codes.astype(np.int64, copy=False)
    valid = (codes64 >= 0) & (codes64 < domain)
    blocks = np.arange(n, dtype=np.int64) // block_rows
    member = np.zeros((nblocks, fold), dtype=bool)
    member[blocks[valid], codes64[valid] % fold] = True
    bits = np.packbits(member, axis=1)
    if valid.all():
        dirty = np.zeros(nblocks, dtype=bool)
    else:
        dirty = np.logical_or.reduceat(~valid, starts)
    return ColumnCodeSetMap(block_rows, domain, bits, dirty, fold == domain)


#: Store marker for columns whose layout cannot be zone-mapped, so the
#: build is not retried on every query.
_UNPRUNABLE = "__unprunable__"


def zone_map_key(table: str, column: Optional[str],
                 block_rows: int) -> tuple:
    """The store key of one zone-map entry (``column=None``: deletions)."""
    if column is None:
        return ("zonedel", table, block_rows)
    return ("zonemap", table, column, block_rows)


def code_set_key(table: str, column: str, block_rows: int) -> tuple:
    """The store key of one code-set summary entry."""
    return ("zonecodes", table, column, block_rows)


class ZoneMaps:
    """Lazily built, mutation-stamped zone maps of one database.

    A thin facade over a stamped *store* (see module docstring): every
    :meth:`column` / :meth:`deletions` call revalidates the entry's
    recorded ``(table, mutation_count)`` stamps against the live
    database, so a mutation after a build can never yield a stale — and
    therefore never a wrong — skip decision.
    """

    def __init__(self, db: Database, store, block_rows: int = 0):
        self._db = db
        self._store = store
        self._block_rows = int(block_rows)

    def block_rows_for(self, table: str) -> int:
        """The resolved block size used for *table*'s zone maps."""
        if self._block_rows > 0:
            return self._block_rows
        return default_zone_block_rows(self._db.table(table).num_rows)

    def column(self, table: str, name: str) -> Optional[ColumnZoneMap]:
        """The zone map of ``table.name`` (built on first use), or
        ``None`` when the column's layout cannot be summarized."""
        block_rows = self.block_rows_for(table)
        key = zone_map_key(table, name, block_rows)
        hit = self._store.get("zone", key, self._db)
        if hit is not None:
            return None if isinstance(hit, str) else hit
        tab = self._db.table(table)
        if name not in tab:
            return None
        stamps = ((table, tab.mutation_count),)  # read before the build
        zm = build_column_zone_map(tab[name], block_rows)
        self._store.put("zone", key, zm if zm is not None else _UNPRUNABLE,
                        stamps, zm.nbytes if zm is not None else 0)
        return zm

    def code_set(self, table: str, name: str) -> Optional[ColumnCodeSetMap]:
        """The code-set summary of ``table.name`` (built on first use),
        or ``None`` when the column has no code domain.

        AIR columns stamp the *parent* table too: the domain is the
        parent's physical row space, so a parent mutation (growth,
        compaction) invalidates the summary along with the child's own
        mutations.
        """
        block_rows = self.block_rows_for(table)
        key = code_set_key(table, name, block_rows)
        hit = self._store.get("zone", key, self._db)
        if hit is not None:
            return None if isinstance(hit, str) else hit
        tab = self._db.table(table)
        if name not in tab:
            return None
        column = tab[name]
        stamps = [(table, tab.mutation_count)]  # read before the build
        domain = None
        if isinstance(column, AIRColumn):
            parent = self._db.table(column.referenced_table)
            domain = parent.num_rows
            stamps.append((column.referenced_table, parent.mutation_count))
        csm = build_column_code_set_map(column, block_rows, domain=domain)
        self._store.put("zone", key, csm if csm is not None else _UNPRUNABLE,
                        tuple(stamps), csm.nbytes if csm is not None else 0)
        return csm

    def deletions(self, table: str) -> DeletionZoneMap:
        """The deletion summary of *table* (built on first use)."""
        block_rows = self.block_rows_for(table)
        key = zone_map_key(table, None, block_rows)
        hit = self._store.get("zone", key, self._db)
        if hit is not None:
            return hit
        tab = self._db.table(table)
        stamps = ((table, tab.mutation_count),)
        dzm = build_deletion_zone_map(tab, block_rows)
        self._store.put("zone", key, dzm, stamps, dzm.nbytes)
        return dzm


class StampedStore:
    """A minimal mutation-stamped store with the QueryCache protocol.

    The fallback used when no shared query cache is supplied — entries
    revalidate their ``(table, mutation_count)`` stamps on every lookup,
    exactly like the engine's cache tiers.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, Tuple[object, tuple]] = {}

    def get(self, tier: str, key: tuple, db: Database):
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, stamps = entry
        for name, count in stamps:
            try:
                table = db.table(name)
            except Exception:
                table = None
            if table is None or table.mutation_count != count:
                self._entries.pop(key, None)
                return None
        return value

    def put(self, tier: str, key: tuple, value, stamps, nbytes: int = 0):
        self._entries[key] = (value, tuple(stamps))
        return True

    def items(self) -> List[Tuple[tuple, object]]:
        return list((key, value) for key, (value, _) in self._entries.items())


_FALLBACK_STORES: "weakref.WeakKeyDictionary[Database, StampedStore]" = (
    weakref.WeakKeyDictionary())


def zone_maps_for(db: Database, store=None, block_rows: int = 0) -> ZoneMaps:
    """Zone maps of *db* backed by *store* (or a per-database fallback).

    The engine passes its shared query cache so zone-map builds show up
    as a regular cache tier (``astore cache``); without one, a private
    stamped store per database object keeps the same invalidation
    guarantees.
    """
    if store is None:
        store = _FALLBACK_STORES.get(db)
        if store is None:
            store = _FALLBACK_STORES[db] = StampedStore()
    return ZoneMaps(db, store, block_rows)


def fresh_zone_entries(db: Database, store) -> List[Tuple[tuple, object]]:
    """All still-fresh zone-map entries of *store* for arena export.

    Returns ``(key, value)`` pairs whose stamps match the live database;
    unprunable markers are skipped (workers re-derive them for free).
    """
    out: List[Tuple[tuple, object]] = []
    if store is None:
        return out
    if hasattr(store, "tier_items"):
        items: Iterable = store.tier_items("zone", db)
    else:
        items = [(key, store.get("zone", key, db)) for key, _ in store.items()]
    for key, value in items:
        if isinstance(value, (ColumnZoneMap, DeletionZoneMap,
                              ColumnCodeSetMap)):
            out.append((key, value))
    return out


def rebuild_zone_maps(db: Database, table: str, store=None) -> int:
    """Proactively (re)build every summary of *table* after maintenance.

    Compaction bumps mutation stamps, which already invalidates every
    cached summary; this warms the replacements eagerly so the first
    post-compaction query does not pay the rebuild.  Returns the number
    of summaries built.
    """
    zones = zone_maps_for(db, store=store)
    built = 0
    tab = db.table(table)
    for name in tab.columns:
        if zones.column(table, name) is not None:
            built += 1
        if zones.code_set(table, name) is not None:
            built += 1
    zones.deletions(table)
    return built + 1

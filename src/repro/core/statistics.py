"""Column and table statistics for cost-based planning.

A-Store's optimizer needs three quantities: predicate selectivities,
dimension sizes (filter-vs-probe), and group-by cardinalities
(array-vs-hash).  This module collects them once at load time so repeated
planning does not re-sample the data; the optimizer falls back to its
sampling estimators for columns without collected statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import SchemaError
from .column import AIRColumn, DictColumn, StringColumn
from .schema import Database
from .table import Table


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column.

    ``distinct`` is exact for dictionary columns and for columns scanned
    whole; for sampled columns it is a lower bound flagged by
    ``is_estimate``.
    """

    rows: int
    distinct: int
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    is_estimate: bool = False

    @property
    def density(self) -> float:
        """Average rows per distinct value."""
        return self.rows / self.distinct if self.distinct else 0.0


@dataclass
class TableStatistics:
    """Statistics for every column of one table."""

    rows: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)


def collect_statistics(db: Database, sample_rows: int = 262_144
                       ) -> Dict[str, TableStatistics]:
    """Collect statistics for all tables and attach them to *db*.

    The result is stored on ``db.statistics`` (and returned).  Columns of
    tables larger than *sample_rows* are sampled evenly; the ``distinct``
    count is then marked as an estimate.
    """
    stats: Dict[str, TableStatistics] = {}
    for name, table in db.tables.items():
        stats[name] = _table_statistics(table, sample_rows)
    db.statistics = stats  # type: ignore[attr-defined]
    return stats


def _table_statistics(table: Table, sample_rows: int) -> TableStatistics:
    out = TableStatistics(rows=table.num_rows)
    for col_name, column in table.columns.items():
        if isinstance(column, DictColumn):
            out.columns[col_name] = ColumnStatistics(
                rows=len(column), distinct=column.cardinality)
            continue
        if isinstance(column, StringColumn):
            values = column.values()
            sampled = len(values) > sample_rows
            if sampled:
                idx = np.linspace(0, len(values) - 1, sample_rows).astype(int)
                values = values[idx]
            out.columns[col_name] = ColumnStatistics(
                rows=len(column), distinct=len(set(values)),
                is_estimate=sampled)
            continue
        values = column.values()
        sampled = len(values) > sample_rows
        probe = values
        if sampled:
            idx = np.linspace(0, len(values) - 1, sample_rows).astype(int)
            probe = values[idx]
        distinct = int(len(np.unique(probe)))
        minimum = float(values.min()) if len(values) else None
        maximum = float(values.max()) if len(values) else None
        if isinstance(column, AIRColumn):
            # an AIR column's domain is the parent table's row space
            distinct = min(distinct, int(maximum - minimum + 1)) if len(values) else 0
        out.columns[col_name] = ColumnStatistics(
            rows=len(column), distinct=distinct, minimum=minimum,
            maximum=maximum, is_estimate=sampled)
    return out


def statistics_for(db: Database, table: str,
                   column: str) -> Optional[ColumnStatistics]:
    """Collected statistics for one column, or None if not collected."""
    stats = getattr(db, "statistics", None)
    if stats is None or table not in stats:
        return None
    return stats[table].columns.get(column)


def validate_references(db: Database) -> list[str]:
    """Check referential integrity of every AIR column.

    Returns a list of human-readable problems (empty = consistent):
    out-of-range references, references to deleted parent slots, and
    declared references that were never AIR-loaded.
    """
    problems: list[str] = []
    for ref in db.references:
        child = db.table(ref.child_table)
        column = child[ref.child_column]
        if not isinstance(column, AIRColumn):
            problems.append(f"{ref}: child column is not AIR-loaded")
            continue
        parent = db.table(ref.parent_table)
        refs = column.values()
        live_child = child.live_mask()
        active = refs[live_child]
        if len(active) == 0:
            continue
        if active.min() < 0 or active.max() >= parent.num_rows:
            problems.append(f"{ref}: reference out of range "
                            f"[0, {parent.num_rows})")
            continue
        if parent.has_deletes:
            parent_live = parent.live_mask()
            dangling = ~parent_live[active]
            if dangling.any():
                bad = int(active[dangling][0])
                problems.append(
                    f"{ref}: live child rows reference deleted parent "
                    f"slot {bad}")
    return problems


def assert_consistent(db: Database) -> None:
    """Raise :class:`SchemaError` if :func:`validate_references` finds
    any integrity violation."""
    problems = validate_references(db)
    if problems:
        raise SchemaError("; ".join(problems))

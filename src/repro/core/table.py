"""The array-family table (Sections 2 and 4.4 of the paper).

A table is a set of equal-length, fully aligned arrays — one per column.
The array index is the implicit primary key: tuple *i* is the *i*-th element
of every array.  Update handling follows the paper:

* **insertion** appends into reserved tail capacity, preferring the slots of
  previously deleted tuples (slot reuse, enabled by the surrogate key having
  no semantic meaning);
* **deletion** is lazy — a deletion bit vector marks tuples out-of-date;
* **update** is in-place (varchar updates only relocate heap addresses);
* **consolidation** compacts the arrays and returns the old→new position
  mapping so the catalog can rewrite incoming AIR references.

Optionally the table tracks per-slot insert/delete versions for MVCC
snapshot reads (Section 4.4's real-time analytics scenario).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..errors import SchemaError, StorageError
from .bitmap import Bitmap
from .column import Column, make_column

_NO_DELETE = np.iinfo(np.int64).max


class Table:
    """A named array family with lazy deletion, slot reuse, and MVCC."""

    def __init__(self, name: str, mvcc: bool = False):
        self.name = name
        self.columns: Dict[str, Column] = {}
        self._nrows = 0
        self._deleted = np.zeros(0, dtype=bool)
        self._free_slots: list[int] = []
        self._mvcc = mvcc
        self._insert_version = np.zeros(0, dtype=np.int64)
        self._delete_version = np.zeros(0, dtype=np.int64)
        self._mutation_count = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_arrays(cls, name: str, data: Mapping[str, Sequence],
                    dict_threshold: float = 0.1, mvcc: bool = False) -> "Table":
        """Build a table from ``{column_name: values}`` in one shot.

        Column layouts are chosen per column by
        :func:`repro.core.column.make_column`.
        """
        table = cls(name, mvcc=mvcc)
        nrows = None
        for col_name, values in data.items():
            column = make_column(col_name, values, dict_threshold=dict_threshold)
            if nrows is None:
                nrows = len(column)
            elif len(column) != nrows:
                raise SchemaError(
                    f"column {col_name!r} has {len(column)} rows, expected {nrows}"
                )
            table.columns[col_name] = column
        table._nrows = nrows or 0
        table._deleted = np.zeros(table._nrows, dtype=bool)
        if mvcc:
            table._insert_version = np.zeros(table._nrows, dtype=np.int64)
            table._delete_version = np.full(table._nrows, _NO_DELETE, dtype=np.int64)
        return table

    def add_column(self, column: Column) -> None:
        """Attach a prebuilt column; its length must match the table."""
        if self._nrows and len(column) != self._nrows:
            raise SchemaError(
                f"column {column.name!r} has {len(column)} rows, "
                f"table {self.name!r} has {self._nrows}"
            )
        if not self.columns:
            self._nrows = len(column)
            self._deleted = np.zeros(self._nrows, dtype=bool)
            if self._mvcc:
                self._insert_version = np.zeros(self._nrows, dtype=np.int64)
                self._delete_version = np.full(self._nrows, _NO_DELETE, np.int64)
        self.columns[column.name] = column
        # a schema change is a mutation: every cache tier keyed on this
        # table must revalidate, same as replace_column
        self._mutation_count += 1

    def replace_column(self, name: str, column: Column) -> None:
        """Swap a column implementation (used by the AIR loader)."""
        if name not in self.columns:
            raise SchemaError(f"no column {name!r} in table {self.name!r}")
        if len(column) != self._nrows:
            raise SchemaError("replacement column length mismatch")
        self.columns[name] = column
        self._mutation_count += 1

    @property
    def mutation_count(self) -> int:
        """Monotonic count of content mutations (inserts, deletes,
        updates, consolidations, column swaps) — lets point-in-time
        copies such as shared-memory arenas detect staleness."""
        return self._mutation_count

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Physical rows, including deleted-but-unreclaimed slots."""
        return self._nrows

    @property
    def num_live(self) -> int:
        """Rows not marked deleted."""
        return self._nrows - int(self._deleted.sum())

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self.columns

    def __getitem__(self, column_name: str) -> Column:
        try:
            return self.columns[column_name]
        except KeyError:
            raise SchemaError(
                f"no column {column_name!r} in table {self.name!r}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        """Column names in definition order."""
        return list(self.columns)

    @property
    def nbytes(self) -> int:
        """Total bytes of all columns plus bookkeeping vectors."""
        total = sum(col.nbytes for col in self.columns.values())
        total += self._deleted.nbytes
        if self._mvcc:
            total += self._insert_version.nbytes + self._delete_version.nbytes
        return total

    # -- visibility ------------------------------------------------------------

    @property
    def has_deletes(self) -> bool:
        """True if any slot is currently marked deleted."""
        return bool(self._deleted.any())

    def deletion_vector(self) -> Bitmap:
        """The lazy-deletion bit vector (1 = deleted/out-of-date)."""
        return Bitmap.from_bool_array(self._deleted)

    def live_mask(self, snapshot: Optional[int] = None) -> np.ndarray:
        """Boolean mask of rows visible now, or at an MVCC *snapshot*.

        A row is visible at snapshot *s* iff it was inserted at or before
        *s* and not deleted at or before *s*.
        """
        if snapshot is None:
            return ~self._deleted
        if not self._mvcc:
            raise StorageError(
                f"table {self.name!r} was not created with mvcc=True"
            )
        return (self._insert_version <= snapshot) & (self._delete_version > snapshot)

    # -- updates ---------------------------------------------------------------

    def insert(self, rows: Mapping[str, Sequence], version: int = 0,
               reuse_horizon: Optional[int] = None) -> np.ndarray:
        """Insert rows, reusing deleted slots first, then appending.

        *rows* maps every column name to an equal-length sequence of values.
        Returns the array indexes (primary keys) assigned to the new rows.

        With MVCC, reusing a slot physically destroys the old tuple, so a
        slot is only eligible when its deletion is older than every active
        snapshot: pass ``reuse_horizon`` = the oldest pinned snapshot and
        only slots with ``delete_version <= reuse_horizon`` are recycled
        (``None`` recycles freely — single-version operation).
        """
        if set(rows) != set(self.columns):
            raise SchemaError(
                f"insert must provide exactly the columns of {self.name!r}: "
                f"expected {sorted(self.columns)}, got {sorted(rows)}"
            )
        counts = {len(v) for v in rows.values()}
        if len(counts) != 1:
            raise SchemaError("insert column value lengths differ")
        n = counts.pop()
        if n == 0:
            return np.empty(0, dtype=np.int64)

        if self._mvcc and reuse_horizon is not None:
            eligible = [p for p in self._free_slots
                        if self._delete_version[p] <= reuse_horizon]
        else:
            eligible = self._free_slots
        reuse = min(len(eligible), n)
        reused = np.array(eligible[:reuse], dtype=np.int64)
        taken = set(int(p) for p in reused)
        self._free_slots = [p for p in self._free_slots if p not in taken]
        appended = np.arange(self._nrows, self._nrows + (n - reuse), dtype=np.int64)

        for name, values in rows.items():
            values = list(values) if not isinstance(values, np.ndarray) else values
            column = self.columns[name]
            if reuse:
                column.put(reused, values[:reuse])
            if n - reuse:
                column.append(values[reuse:])

        self._nrows += n - reuse
        self._grow_bookkeeping()
        positions = np.concatenate([reused, appended]) if reuse else appended
        self._deleted[positions] = False
        if self._mvcc:
            self._insert_version[positions] = version
            self._delete_version[positions] = _NO_DELETE
        self._mutation_count += 1
        return positions

    def delete(self, positions: Iterable[int], version: int = 0) -> int:
        """Lazily delete rows: set their deletion bits and free their slots.

        Returns the number of newly deleted rows (already-deleted positions
        are ignored, making deletion idempotent).
        """
        positions = np.asarray(list(positions) if not isinstance(positions, np.ndarray)
                               else positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= self._nrows):
            raise StorageError("delete position out of range")
        fresh = positions[~self._deleted[positions]]
        self._deleted[fresh] = True
        self._free_slots.extend(int(p) for p in fresh)
        if self._mvcc:
            self._delete_version[fresh] = version
        if len(fresh):
            self._mutation_count += 1
        return len(fresh)

    def update(self, positions: Iterable[int], changes: Mapping[str, Sequence]) -> None:
        """In-place update of the given columns at the given positions."""
        positions = np.asarray(list(positions) if not isinstance(positions, np.ndarray)
                               else positions, dtype=np.int64)
        if len(positions) and bool(self._deleted[positions].any()):
            raise StorageError("cannot update a deleted row")
        for name, values in changes.items():
            self[name].put(positions, values)
        if len(positions) and changes:
            self._mutation_count += 1

    def consolidate(self, order: Optional[np.ndarray] = None) -> np.ndarray:
        """Compact the table, dropping deleted slots.

        With *order* — an array of live positions covering every live row
        exactly once — the surviving rows are additionally laid out in
        that physical order (the clustering-preserving re-sort behind
        ``astore compact``); without it, live rows keep their relative
        order.  Returns the old→new position mapping (length = old
        ``num_rows``; -1 for slots that were deleted).  The caller must
        rewrite every AIR column referencing this table using the mapping
        — that rewrite is what makes consolidation expensive (see the
        paper's Table 1), and
        :meth:`repro.core.schema.Database.consolidate` performs it.
        """
        if order is None:
            order = np.flatnonzero(~self._deleted).astype(np.int64)
        else:
            order = np.asarray(order, dtype=np.int64)
            if len(order) != self.num_live or (
                    len(order) and bool(self._deleted[order].any())):
                raise StorageError(
                    "consolidate order must list exactly the live rows")
        mapping = np.full(self._nrows, -1, dtype=np.int64)
        mapping[order] = np.arange(len(order), dtype=np.int64)
        if bool((mapping[~self._deleted] < 0).any()):
            raise StorageError(
                "consolidate order must list exactly the live rows")
        for column in self.columns.values():
            column.reorder(order)
        self._nrows = len(order)
        self._deleted = np.zeros(self._nrows, dtype=bool)
        self._free_slots.clear()
        if self._mvcc:
            self._insert_version = self._insert_version[order]
            self._delete_version = self._delete_version[order]
        self._mutation_count += 1
        return mapping

    # -- row access ---------------------------------------------------------

    def row(self, position: int) -> dict:
        """Materialize one tuple as ``{column: value}`` (debug/convenience)."""
        if not 0 <= position < self._nrows:
            raise StorageError(f"row {position} out of range")
        return {name: col.get(position) for name, col in self.columns.items()}

    def gather(self, positions: np.ndarray,
               columns: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
        """Positional gather of several columns at once."""
        names = list(columns) if columns is not None else self.column_names
        return {name: self[name].take(positions) for name in names}

    def _grow_bookkeeping(self) -> None:
        if len(self._deleted) < self._nrows:
            grown = np.zeros(self._nrows, dtype=bool)
            grown[: len(self._deleted)] = self._deleted
            self._deleted = grown
        if self._mvcc and len(self._insert_version) < self._nrows:
            iv = np.zeros(self._nrows, dtype=np.int64)
            iv[: len(self._insert_version)] = self._insert_version
            self._insert_version = iv
            dv = np.full(self._nrows, _NO_DELETE, dtype=np.int64)
            dv[: len(self._delete_version)] = self._delete_version
            self._delete_version = dv

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._nrows}, "
            f"live={self.num_live}, columns={len(self.columns)})"
        )

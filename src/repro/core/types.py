"""Logical data types of the A-Store storage model.

A-Store is array oriented: every column is backed by a fixed-width NumPy
array, except strings, which live in a heap addressed by a fixed-width
array (the paper stores varchar contents in dynamically allocated memory and
keeps their addresses in the column array).
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SchemaError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"  # stored as int32 days since 1970-01-01

    @property
    def numpy_dtype(self) -> np.dtype:
        """The physical NumPy dtype backing this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        """True for types on which arithmetic aggregation is defined."""
        return self in (DataType.INT32, DataType.INT64, DataType.FLOAT64)

    @property
    def itemsize(self) -> int:
        """Bytes per value in the backing array."""
        return self.numpy_dtype.itemsize


_NUMPY_DTYPES = {
    DataType.INT32: np.dtype(np.int32),
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    # string columns keep int64 heap addresses in their array
    DataType.STRING: np.dtype(np.int64),
    DataType.DATE: np.dtype(np.int32),
}


def dtype_for_values(values) -> DataType:
    """Infer a :class:`DataType` from a NumPy array or Python sequence.

    Raises :class:`SchemaError` for unsupported value kinds.
    """
    arr = np.asarray(values)
    if arr.dtype.kind in ("U", "S", "O"):
        return DataType.STRING
    if arr.dtype.kind == "f":
        return DataType.FLOAT64
    if arr.dtype.kind in ("i", "u"):
        if arr.dtype.itemsize <= 4:
            return DataType.INT32
        return DataType.INT64
    if arr.dtype.kind == "b":
        return DataType.INT32
    raise SchemaError(f"cannot infer column type from dtype {arr.dtype!r}")

"""Selection vectors (Section 4.1 of the paper).

A *selection vector* records the ids of the tuples that still satisfy every
predicate evaluated so far.  It is updated after each predicate column: a
tuple that fails any predicate is removed immediately and never evaluated
again, which is what saves memory bandwidth compared to per-column bitmaps.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from .bitmap import Bitmap


class SelectionVector:
    """An ordered vector of selected tuple positions (ascending, unique)."""

    __slots__ = ("_positions", "_domain")

    def __init__(self, positions: np.ndarray, domain: int):
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim != 1:
            raise StorageError("selection vector must be one-dimensional")
        if len(positions) and (positions[0] < 0 or positions[-1] >= domain):
            raise StorageError("selection vector position out of domain")
        self._positions = positions
        self._domain = domain

    @classmethod
    def full(cls, n: int) -> "SelectionVector":
        """All *n* tuples selected."""
        return cls(np.arange(n, dtype=np.int64), n)

    @classmethod
    def empty(cls, n: int) -> "SelectionVector":
        """No tuples selected over a domain of *n*."""
        return cls(np.empty(0, dtype=np.int64), n)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "SelectionVector":
        """Selected positions are the true entries of the boolean *mask*."""
        mask = np.asarray(mask, dtype=bool)
        return cls(np.flatnonzero(mask).astype(np.int64), len(mask))

    # -- properties --------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        """The selected positions (do not mutate)."""
        return self._positions

    @property
    def domain(self) -> int:
        """The total number of tuples in the scanned table."""
        return self._domain

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def selectivity(self) -> float:
        """Fraction of the domain still selected (1.0 for a full vector)."""
        return len(self) / self._domain if self._domain else 0.0

    # -- refinement ----------------------------------------------------------

    def refine(self, keep: np.ndarray) -> "SelectionVector":
        """Shrink by a boolean *keep* mask aligned with the current positions.

        This is the core per-predicate update of vector-based column scan:
        ``keep[i]`` says whether the tuple at ``positions[i]`` passed the
        predicate just evaluated.
        """
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != len(self._positions):
            raise StorageError(
                f"refine mask length {len(keep)} != selection length "
                f"{len(self._positions)}"
            )
        return SelectionVector(self._positions[keep], self._domain)

    def intersect(self, other: "SelectionVector") -> "SelectionVector":
        """Positions selected by both vectors."""
        if self._domain != other._domain:
            raise StorageError("selection vectors over different domains")
        common = np.intersect1d(
            self._positions, other._positions, assume_unique=True
        )
        return SelectionVector(common, self._domain)

    def to_bitmap(self) -> Bitmap:
        """Convert to a packed bitmap over the full domain."""
        return Bitmap.from_indices(self._positions, self._domain)

    def __repr__(self) -> str:
        return (
            f"SelectionVector(selected={len(self)}, domain={self._domain})"
        )

"""Seeded synthetic data generators for SSB, TPC-H, and TPC-DS subsets."""

from .distributions import choice_column, rng_for, scaled_rows, uniform_keys, zipf_keys
from .ssb import (
    MONTH_NAMES,
    NATION_LIST,
    NATIONS,
    REGION_OF_NATION,
    REGIONS,
    city_of,
    generate_ssb,
)
from .tpcds import generate_tpcds
from .tpch import generate_tpch

__all__ = [
    "choice_column",
    "city_of",
    "generate_ssb",
    "generate_tpcds",
    "generate_tpch",
    "MONTH_NAMES",
    "NATION_LIST",
    "NATIONS",
    "REGION_OF_NATION",
    "REGIONS",
    "rng_for",
    "scaled_rows",
    "uniform_keys",
    "zipf_keys",
]

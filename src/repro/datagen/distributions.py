"""Seeded distribution helpers shared by the benchmark data generators.

All generators draw from :func:`numpy.random.default_rng` so every dataset
is reproducible from ``(generator, scale, seed)``.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np


def rng_for(seed: int, stream: str) -> np.random.Generator:
    """A deterministic generator for a named substream.

    Distinct streams (one per table/column group) keep the data stable when
    one table's generation logic changes.  The stream name is mixed in via
    a deterministic digest — ``hash()`` would vary with ``PYTHONHASHSEED``
    and make the generated data differ across processes.
    """
    mixed = np.random.SeedSequence([seed, zlib.crc32(stream.encode("utf-8"))])
    return np.random.default_rng(mixed)


def uniform_keys(rng: np.random.Generator, n: int, domain: int) -> np.ndarray:
    """*n* foreign keys uniformly distributed over ``[0, domain)``."""
    return rng.integers(0, domain, size=n, dtype=np.int64)


def zipf_keys(rng: np.random.Generator, n: int, domain: int,
              skew: float = 1.1) -> np.ndarray:
    """*n* foreign keys with a Zipf-like skew, clipped to ``[0, domain)``.

    Used for the skewed join workloads; ranks are shuffled so hot keys are
    spread across the domain rather than clustered at 0.
    """
    raw = rng.zipf(skew, size=n) - 1
    keys = np.mod(raw, domain).astype(np.int64)
    perm = rng.permutation(domain)
    return perm[keys]


def choice_column(rng: np.random.Generator, n: int,
                  values: Sequence[str]) -> np.ndarray:
    """*n* draws (uniform) from a fixed value pool, as an object array."""
    pool = np.empty(len(values), dtype=object)
    pool[:] = list(values)
    return pool[rng.integers(0, len(values), size=n)]


def scaled_rows(base: int, sf: float, minimum: int = 1) -> int:
    """Row count for a table whose SF=1 size is *base*."""
    return max(minimum, int(round(base * sf)))

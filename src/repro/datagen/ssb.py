"""Star Schema Benchmark (SSB) data generator.

Generates the four SSB tables (``lineorder`` fact; ``date``, ``customer``,
``supplier``, ``part`` dimensions) with the official schema's value domains
and cardinality ratios, at a configurable scale factor.  SF=1 corresponds
to the official 6,000,000-row lineorder; the paper runs SF=100, this repo
defaults to laptop scales (see DESIGN.md substitution table).

Value domains follow the SSB specification closely enough that the
original predicate selectivities are preserved:

* 25 nations in 5 regions; city = first 9 characters of the nation name
  padded to width 9, plus a digit 0-9 (so ``UNITED KI1`` … exist);
* ``p_mfgr`` in MFGR#1..5, ``p_category`` = mfgr + digit 1..5 (25 values),
  ``p_brand1`` = category + 1..40 (1000 values);
* ``lo_discount`` 0..10, ``lo_quantity`` 1..50, 7 years of dates.
"""

from __future__ import annotations

import numpy as np

from ..core import Database
from .distributions import choice_column, rng_for, scaled_rows, uniform_keys

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# 5 nations per region, as in SSB/TPC-H (region -> nations)
NATIONS = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}

NATION_LIST = [n for region in REGIONS for n in NATIONS[region]]
REGION_OF_NATION = {n: r for r, ns in NATIONS.items() for n in ns}

MONTH_NAMES = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
_DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]

FIRST_YEAR = 1992
NUM_YEARS = 7  # 1992..1998, as in SSB

# SF=1 table sizes from the SSB specification
LINEORDER_BASE = 6_000_000
CUSTOMER_BASE = 30_000
SUPPLIER_BASE = 2_000
PART_BASE = 200_000


def city_of(nation: str, digit: int) -> str:
    """SSB city encoding: 9-char nation prefix + a digit (``UNITED KI1``)."""
    return f"{nation:<9.9}{digit}"


def _date_rows() -> dict:
    """The full 7-year date dimension (fixed size, independent of SF)."""
    datekey, year, month_num, week = [], [], [], []
    yearmonthnum, yearmonth, month_name = [], [], []
    for y in range(FIRST_YEAR, FIRST_YEAR + NUM_YEARS):
        day_of_year = 0
        for m in range(12):
            days = _DAYS_IN_MONTH[m] + (1 if m == 1 and _is_leap(y) else 0)
            for d in range(1, days + 1):
                day_of_year += 1
                datekey.append(y * 10000 + (m + 1) * 100 + d)
                year.append(y)
                month_num.append(m + 1)
                week.append(min(53, (day_of_year - 1) // 7 + 1))
                yearmonthnum.append(y * 100 + m + 1)
                yearmonth.append(f"{MONTH_NAMES[m]}{y}")
                month_name.append(MONTH_NAMES[m])
    return {
        "d_datekey": np.array(datekey, dtype=np.int64),
        "d_year": np.array(year, dtype=np.int32),
        "d_monthnuminyear": np.array(month_num, dtype=np.int32),
        "d_weeknuminyear": np.array(week, dtype=np.int32),
        "d_yearmonthnum": np.array(yearmonthnum, dtype=np.int32),
        "d_yearmonth": yearmonth,
        "d_month": month_name,
    }


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def generate_ssb(sf: float = 0.01, seed: int = 42, airify: bool = True) -> Database:
    """Generate an SSB database at scale factor *sf*.

    With ``airify=True`` (the A-Store load path) the fact table's foreign
    keys are converted to array index references; with ``airify=False`` the
    FKs keep their key values, as a conventional engine would store them.
    """
    db = Database(f"ssb_sf{sf}")

    date_data = _date_rows()
    db.create_table("date", date_data)
    n_dates = len(date_data["d_datekey"])

    n_customer = scaled_rows(CUSTOMER_BASE, sf)
    rng = rng_for(seed, "customer")
    c_nation = choice_column(rng, n_customer, NATION_LIST)
    db.create_table("customer", {
        "c_custkey": np.arange(1, n_customer + 1, dtype=np.int64),
        "c_name": [f"Customer#{i:09d}" for i in range(1, n_customer + 1)],
        "c_city": [city_of(n, d) for n, d in
                   zip(c_nation, rng.integers(0, 10, n_customer))],
        "c_nation": c_nation,
        "c_region": [REGION_OF_NATION[n] for n in c_nation],
    }, dict_threshold=0.95)

    n_supplier = scaled_rows(SUPPLIER_BASE, sf)
    rng = rng_for(seed, "supplier")
    s_nation = choice_column(rng, n_supplier, NATION_LIST)
    db.create_table("supplier", {
        "s_suppkey": np.arange(1, n_supplier + 1, dtype=np.int64),
        "s_name": [f"Supplier#{i:09d}" for i in range(1, n_supplier + 1)],
        "s_city": [city_of(n, d) for n, d in
                   zip(s_nation, rng.integers(0, 10, n_supplier))],
        "s_nation": s_nation,
        "s_region": [REGION_OF_NATION[n] for n in s_nation],
    }, dict_threshold=0.95)

    # part: SF=1 has 200k rows; official growth is logarithmic in SF but a
    # linear floor keeps small scales meaningful.
    n_part = scaled_rows(PART_BASE, min(1.0, sf) if sf < 1 else 1 + np.log2(sf) / 7)
    rng = rng_for(seed, "part")
    mfgr_idx = rng.integers(1, 6, n_part)
    cat_idx = rng.integers(1, 6, n_part)
    brand_idx = rng.integers(1, 41, n_part)
    db.create_table("part", {
        "p_partkey": np.arange(1, n_part + 1, dtype=np.int64),
        "p_mfgr": [f"MFGR#{m}" for m in mfgr_idx],
        "p_category": [f"MFGR#{m}{c}" for m, c in zip(mfgr_idx, cat_idx)],
        "p_brand1": [f"MFGR#{m}{c}{b:02d}" for m, c, b in
                     zip(mfgr_idx, cat_idx, brand_idx)],
        "p_color": choice_column(rng, n_part, [
            "red", "green", "blue", "ivory", "maroon", "plum", "powder",
        ]),
    }, dict_threshold=0.95)

    n_lineorder = scaled_rows(LINEORDER_BASE, sf)
    rng = rng_for(seed, "lineorder")
    quantity = rng.integers(1, 51, n_lineorder).astype(np.int32)
    discount = rng.integers(0, 11, n_lineorder).astype(np.int32)
    extendedprice = rng.integers(90_000, 10_000_000, n_lineorder).astype(np.int64)
    date_pos = uniform_keys(rng, n_lineorder, n_dates)
    custkey = uniform_keys(rng, n_lineorder, n_customer) + 1
    partkey = uniform_keys(rng, n_lineorder, n_part) + 1
    suppkey = uniform_keys(rng, n_lineorder, n_supplier) + 1
    supplycost = rng.integers(10_000, 100_000, n_lineorder).astype(np.int64)
    tax = rng.integers(0, 9, n_lineorder).astype(np.int32)
    # Hierarchically clustered layout: fact rows land ordered by year,
    # then the part hierarchy (mfgr > category > brand), then orderdate
    # — the layout a yearly bulk load partitioned by product line
    # produces.  Date-band predicates (Q1.x) still touch a contiguous
    # band of blocks (year outermost), and within each year band the
    # part-dimension predicates of Q2.x/Q4.x cluster too, which is what
    # lets per-block code-set summaries skip for them; uniform per-row
    # value distributions are unchanged.  The declared clustering spec
    # is what `astore compact` restores after append/update churn.
    order = np.lexsort((date_pos,
                        brand_idx[partkey - 1],
                        cat_idx[partkey - 1],
                        mfgr_idx[partkey - 1],
                        date_data["d_year"][date_pos]))
    (quantity, discount, extendedprice, date_pos, custkey, partkey,
     suppkey, supplycost, tax) = (
        arr[order] for arr in (quantity, discount, extendedprice, date_pos,
                               custkey, partkey, suppkey, supplycost, tax))
    db.create_table("lineorder", {
        "lo_orderkey": np.arange(1, n_lineorder + 1, dtype=np.int64),
        "lo_custkey": custkey,
        "lo_partkey": partkey,
        "lo_suppkey": suppkey,
        "lo_orderdate": date_data["d_datekey"][date_pos],
        "lo_quantity": quantity,
        "lo_extendedprice": extendedprice,
        "lo_discount": discount,
        "lo_revenue": (extendedprice * (100 - discount) // 100).astype(np.int64),
        "lo_supplycost": supplycost,
        "lo_tax": tax,
    })

    db.add_reference("lineorder", "lo_custkey", "customer", "c_custkey")
    db.add_reference("lineorder", "lo_partkey", "part", "p_partkey")
    db.add_reference("lineorder", "lo_suppkey", "supplier", "s_suppkey")
    db.add_reference("lineorder", "lo_orderdate", "date", "d_datekey")
    db.clustering["lineorder"] = (
        "date.d_year", "part.p_mfgr", "part.p_category", "part.p_brand1",
        "lineorder.lo_orderdate")
    if airify:
        db.airify()
    return db

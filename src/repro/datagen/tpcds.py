"""TPC-DS subset generator.

The paper's Table 2 microbenchmark joins ``store_sales`` against eight
dimensions plus ``store_returns``; this generator produces exactly those
tables with the official SF=1 cardinalities (store 12, date_dim 73,049,
time_dim 86,400, household_demographics 7,200, ...).  Dimension tables
whose size the spec fixes are independent of the scale factor, matching
the paper's setup where e.g. ``store`` has only 402 rows even at SF=100.
"""

from __future__ import annotations

import numpy as np

from ..core import Database
from .distributions import rng_for, scaled_rows, uniform_keys

STORE_SALES_BASE = 2_880_404  # SF=1
STORE_RETURNS_BASE = 287_514
CUSTOMER_BASE = 100_000
CUSTOMER_DEMOGRAPHICS_ROWS = 1_920_800  # fixed by spec
HOUSEHOLD_DEMOGRAPHICS_ROWS = 7_200     # fixed by spec
DATE_DIM_ROWS = 73_049                  # fixed by spec
TIME_DIM_ROWS = 86_400                  # fixed by spec
ITEM_BASE = 18_000
PROMOTION_BASE = 300
STORE_BASE = 12


def generate_tpcds(sf: float = 0.01, seed: int = 42, airify: bool = True,
                   full_fixed_dims: bool = False) -> Database:
    """Generate the TPC-DS subset at scale factor *sf*.

    ``full_fixed_dims=True`` generates the spec-fixed dimension sizes
    (date_dim 73k, time_dim 86k, customer_demographics 1.92M) regardless of
    *sf* — used by the Table 2 join microbenchmark; otherwise those tables
    are scaled down together with the fact table to keep unit tests fast.
    """
    db = Database(f"tpcds_sf{sf}")
    fixed = (lambda n: n) if full_fixed_dims else (lambda n: scaled_rows(n, sf))

    dims = {
        "store": scaled_rows(STORE_BASE, max(1.0, sf)),
        "date_dim": fixed(DATE_DIM_ROWS),
        "time_dim": fixed(TIME_DIM_ROWS),
        "household_demographics": fixed(HOUSEHOLD_DEMOGRAPHICS_ROWS),
        "customer_demographics": fixed(CUSTOMER_DEMOGRAPHICS_ROWS),
        "customer": scaled_rows(CUSTOMER_BASE, sf),
        "item": scaled_rows(ITEM_BASE, sf),
        "promotion": scaled_rows(PROMOTION_BASE, sf),
    }

    key_of = {
        "store": "s_store_sk", "date_dim": "d_date_sk", "time_dim": "t_time_sk",
        "household_demographics": "hd_demo_sk",
        "customer_demographics": "cd_demo_sk", "customer": "c_customer_sk",
        "item": "i_item_sk", "promotion": "p_promo_sk",
    }
    for table, nrows in dims.items():
        rng = rng_for(seed, f"tpcds.{table}")
        db.create_table(table, {
            key_of[table]: np.arange(1, nrows + 1, dtype=np.int64),
            f"{table}_attr": rng.integers(0, 100, nrows).astype(np.int32),
        })

    n_sales = scaled_rows(STORE_SALES_BASE, sf)
    rng = rng_for(seed, "tpcds.store_sales")
    fact = {"ss_ticket_number": np.arange(1, n_sales + 1, dtype=np.int64)}
    fk_of = {
        "store": "ss_store_sk", "date_dim": "ss_sold_date_sk",
        "time_dim": "ss_sold_time_sk", "household_demographics": "ss_hdemo_sk",
        "customer_demographics": "ss_cdemo_sk", "customer": "ss_customer_sk",
        "item": "ss_item_sk", "promotion": "ss_promo_sk",
    }
    for table, fk in fk_of.items():
        fact[fk] = uniform_keys(rng, n_sales, dims[table]) + 1
    fact["ss_net_paid"] = rng.integers(1, 20_000, n_sales).astype(np.int64)
    db.create_table("store_sales", fact)

    n_returns = scaled_rows(STORE_RETURNS_BASE, sf)
    rng = rng_for(seed, "tpcds.store_returns")
    db.create_table("store_returns", {
        "sr_ticket_number": np.sort(uniform_keys(rng, n_returns, n_sales) + 1),
        "sr_return_amt": rng.integers(1, 10_000, n_returns).astype(np.int64),
    })
    # store_sales -> store_returns is the paper's Table 2 last join; model
    # it as a reference from the returns side (returns reference tickets).
    db.add_reference("store_returns", "sr_ticket_number", "store_sales",
                     "ss_ticket_number")
    for table, fk in fk_of.items():
        db.add_reference("store_sales", fk, table, key_of[table])
    if airify:
        db.airify()
    return db

"""TPC-H subset generator (snowflake schema).

Generates the tables the paper's snowflake experiments touch:
``lineitem → orders → customer → nation → region`` plus ``part`` and
``supplier``.  This is the schema of the paper's Fig. 3 (its Q3 example
uses an adapted ``o_price`` attribute on orders, which we generate too).
SF=1 sizes follow TPC-H (6M lineitem, 1.5M orders, 150k customer, ...).
"""

from __future__ import annotations

import numpy as np

from ..core import Database
from .distributions import rng_for, scaled_rows, uniform_keys
from .ssb import NATION_LIST, REGIONS, REGION_OF_NATION

LINEITEM_BASE = 6_000_000
ORDERS_BASE = 1_500_000
CUSTOMER_BASE = 150_000
PART_BASE = 200_000
SUPPLIER_BASE = 10_000


def generate_tpch(sf: float = 0.01, seed: int = 42, airify: bool = True) -> Database:
    """Generate the TPC-H subset at scale factor *sf*.

    The join graph is the snowflake of the paper's Fig. 3:
    ``lineitem`` is the root; ``orders`` chains to ``customer``, which
    chains to ``nation`` and ``region``; ``part`` and ``supplier`` hang
    directly off ``lineitem``.
    """
    db = Database(f"tpch_sf{sf}")

    db.create_table("region", {
        "r_regionkey": np.arange(len(REGIONS), dtype=np.int64),
        "r_name": list(REGIONS),
    })

    region_index = {r: i for i, r in enumerate(REGIONS)}
    db.create_table("nation", {
        "n_nationkey": np.arange(len(NATION_LIST), dtype=np.int64),
        "n_name": list(NATION_LIST),
        "n_regionkey": np.array(
            [region_index[REGION_OF_NATION[n]] for n in NATION_LIST],
            dtype=np.int64,
        ),
    })

    n_customer = scaled_rows(CUSTOMER_BASE, sf)
    rng = rng_for(seed, "tpch.customer")
    db.create_table("customer", {
        "c_custkey": np.arange(1, n_customer + 1, dtype=np.int64),
        "c_nationkey": uniform_keys(rng, n_customer, len(NATION_LIST)),
        "c_acctbal": rng.uniform(-999.99, 9999.99, n_customer).round(2),
    })

    n_orders = scaled_rows(ORDERS_BASE, sf)
    rng = rng_for(seed, "tpch.orders")
    db.create_table("orders", {
        "o_orderkey": np.arange(1, n_orders + 1, dtype=np.int64),
        "o_custkey": uniform_keys(rng, n_orders, n_customer) + 1,
        # the paper's adapted Fig. 3 query filters on o_price
        "o_price": rng.integers(1, 1001, n_orders).astype(np.int64),
        "o_orderdate": (19920101 + rng.integers(0, 7, n_orders) * 10000
                        ).astype(np.int64),
    })

    n_part = scaled_rows(PART_BASE, sf)
    rng = rng_for(seed, "tpch.part")
    db.create_table("part", {
        "p_partkey": np.arange(1, n_part + 1, dtype=np.int64),
        "p_retailprice": rng.uniform(900.0, 2000.0, n_part).round(2),
    })

    n_supplier = scaled_rows(SUPPLIER_BASE, sf)
    rng = rng_for(seed, "tpch.supplier")
    db.create_table("supplier", {
        "s_suppkey": np.arange(1, n_supplier + 1, dtype=np.int64),
        "s_nationkey": uniform_keys(rng, n_supplier, len(NATION_LIST)),
    })

    n_lineitem = scaled_rows(LINEITEM_BASE, sf)
    rng = rng_for(seed, "tpch.lineitem")
    db.create_table("lineitem", {
        "l_orderkey": uniform_keys(rng, n_lineitem, n_orders) + 1,
        "l_partkey": uniform_keys(rng, n_lineitem, n_part) + 1,
        "l_suppkey": uniform_keys(rng, n_lineitem, n_supplier) + 1,
        "l_quantity": rng.integers(1, 51, n_lineitem).astype(np.int32),
        "l_extendedprice": rng.uniform(900.0, 100_000.0, n_lineitem).round(2),
        "l_discount": (rng.integers(0, 11, n_lineitem) / 100.0),
    })

    db.add_reference("nation", "n_regionkey", "region", "r_regionkey")
    db.add_reference("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_reference("orders", "o_custkey", "customer", "c_custkey")
    db.add_reference("lineitem", "l_orderkey", "orders", "o_orderkey")
    db.add_reference("lineitem", "l_partkey", "part", "p_partkey")
    db.add_reference("lineitem", "l_suppkey", "supplier", "s_suppkey")
    if airify:
        db.airify()
    return db

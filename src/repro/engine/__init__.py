"""The AIRScan execution engine."""

from .aggregate import AggregationState, array_aggregate, finalize, hash_aggregate
from .executor import AStoreEngine, EngineOptions, VARIANTS
from .expression import evaluate_measure, evaluate_predicate, like_to_regex
from .grouping import GroupAxis, build_axes, combine_codes, total_groups
from .orderby import sort_indices
from .pipeline import materialize, result_to_table
from .result import ExecutionStats, QueryResult
from .slice import (
    ArraySlice,
    DictSlice,
    PositionalProvider,
    chain_map,
    dimension_provider,
    universal_provider,
)

__all__ = [
    "AggregationState", "array_aggregate", "ArraySlice", "AStoreEngine",
    "build_axes", "chain_map", "combine_codes", "dimension_provider",
    "DictSlice", "EngineOptions", "evaluate_measure", "evaluate_predicate",
    "ExecutionStats", "finalize", "GroupAxis", "hash_aggregate",
    "like_to_regex", "materialize", "PositionalProvider", "QueryResult",
    "result_to_table", "sort_indices",
    "total_groups", "universal_provider", "VARIANTS",
]

"""The AIRScan execution engine and its shared operator layer."""

from .aggregate import AggregationState, array_aggregate, finalize, hash_aggregate
from .cache import QueryCache, query_cache_for, table_stamps
from .chaos import chaos_point, clear_chaos, install_chaos
from .distributed import (
    LocalNodes,
    RemoteShardBackend,
    ShardNode,
    run_node,
    start_local_nodes,
)
from .executor import AStoreEngine, EngineOptions, VARIANTS, rewrite_for_options
from .membership import (
    ClusterView,
    Member,
    MembershipClient,
    MembershipServer,
    announce_join,
    announce_leave,
)
from .scratch import PoolLease, ScratchPool, lease_pool, local_pool
from .serve import AsyncEngine, QueryServer, ServeStats, run_server, serve_tcp
from .expression import evaluate_measure, evaluate_predicate, like_to_regex
from .grouping import GroupAxis, build_axes, combine_codes, total_groups
from .operators import (
    Aggregate,
    AIRProbe,
    ApplyMask,
    Filter,
    GroupCombine,
    IntersectScan,
    MaskFilter,
    MaterializeColumns,
    Morsel,
    MorselDispatcher,
    Operator,
    PredicateFilter,
    Project,
    ReorderState,
    ValueGather,
)
from .orderby import sort_indices
from .pipeline import materialize, result_to_table
from .result import ExecutionStats, QueryResult
from .sharding import (
    BoundQuery,
    LeafFilterSpec,
    LeafProducts,
    ProcessShardBackend,
    PruneCounters,
    ShardOutcome,
)
from .slice import (
    ArraySlice,
    DictSlice,
    PositionalProvider,
    RowRange,
    chain_map,
    dimension_provider,
    universal_provider,
)

__all__ = [
    "Aggregate", "AggregationState", "AIRProbe", "ApplyMask",
    "array_aggregate", "ArraySlice", "AStoreEngine", "AsyncEngine",
    "lease_pool", "PoolLease", "QueryServer", "run_server",
    "serve_tcp", "ServeStats", "BoundQuery",
    "chaos_point", "clear_chaos", "install_chaos",
    "LocalNodes", "RemoteShardBackend", "ShardNode", "run_node",
    "start_local_nodes",
    "ClusterView", "Member", "MembershipClient", "MembershipServer",
    "announce_join", "announce_leave",
    "build_axes", "chain_map", "combine_codes", "dimension_provider",
    "LeafFilterSpec", "LeafProducts", "ProcessShardBackend",
    "PruneCounters", "ReorderState", "RowRange", "ShardOutcome",
    "DictSlice", "EngineOptions", "evaluate_measure", "evaluate_predicate",
    "ExecutionStats", "Filter", "finalize", "GroupAxis", "GroupCombine",
    "hash_aggregate", "IntersectScan", "like_to_regex", "MaskFilter",
    "MaterializeColumns", "materialize", "Morsel", "MorselDispatcher",
    "Operator", "PositionalProvider", "PredicateFilter", "Project",
    "QueryCache", "query_cache_for", "QueryResult", "result_to_table",
    "rewrite_for_options", "ScratchPool", "local_pool", "sort_indices",
    "table_stamps", "total_groups", "universal_provider", "ValueGather",
    "VARIANTS",
]

"""Array-based and hash-based column-wise aggregation (Section 4.3).

*Array-based* aggregation scatters measures into a dense aggregation array
addressed by the Measure Index (``np.bincount`` / ``ufunc.at`` — positional
addressing, no key comparisons).  *Hash-based* aggregation compacts the
observed Measure Index values first; when the observed code domain is
small relative to the selection it skips the sort-based compaction
(``np.unique``'s sort **and** its inverse-building second pass) and
scatters over offset codes directly — the offsets live in a scratch-pool
buffer, so the common morsel pays no allocation either.  Wide, sparse
domains keep the sort-based grouping, the vectorized stand-in for a hash
table whose key-ordering cost per selected row is exactly the overhead
the paper's array variant avoids.

Both produce an :class:`AggregationState` that merges element-wise, so the
multicore path (Section 5) aggregates partitions independently and
combines at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ExecutionError
from ..plan.binder import AggSpec
from .scratch import local_pool

#: Scratch-pool slot reserved for offset group codes (bool masks use the
#: default slots of the same pool).
_CODES_SLOT = 7


@dataclass
class AggregationState:
    """Partial aggregates over a (dense or compacted) group domain.

    ``group_ids`` is ``None`` for the dense array layout (group *g* lives
    at index *g*) and holds the sorted observed Measure Index values for
    the hash layout.
    """

    specs: Sequence[AggSpec]
    ngroups: int
    counts: np.ndarray
    sums: Dict[str, np.ndarray] = field(default_factory=dict)
    mins: Dict[str, np.ndarray] = field(default_factory=dict)
    maxs: Dict[str, np.ndarray] = field(default_factory=dict)
    int_valued: Dict[str, bool] = field(default_factory=dict)
    group_ids: Optional[np.ndarray] = None

    @property
    def is_dense(self) -> bool:
        return self.group_ids is None

    def merge(self, other: "AggregationState") -> "AggregationState":
        """Combine two partial states (used by the parallel merge)."""
        if self.is_dense != other.is_dense:
            raise ExecutionError("cannot merge dense and sparse agg states")
        if self.is_dense:
            if self.ngroups != other.ngroups:
                raise ExecutionError("dense agg state size mismatch")
            merged = AggregationState(
                specs=self.specs, ngroups=self.ngroups,
                counts=self.counts + other.counts,
                int_valued=self.int_valued,
            )
            for name in self.sums:
                merged.sums[name] = self.sums[name] + other.sums[name]
            for name in self.mins:
                merged.mins[name] = np.minimum(self.mins[name], other.mins[name])
            for name in self.maxs:
                merged.maxs[name] = np.maximum(self.maxs[name], other.maxs[name])
            return merged
        ids = np.concatenate([self.group_ids, other.group_ids])
        uniq, inverse = np.unique(ids, return_inverse=True)
        merged = AggregationState(
            specs=self.specs, ngroups=len(uniq),
            counts=np.bincount(inverse, weights=np.concatenate(
                [self.counts, other.counts]), minlength=len(uniq)),
            int_valued=self.int_valued, group_ids=uniq,
        )
        for name in self.sums:
            merged.sums[name] = np.bincount(
                inverse,
                weights=np.concatenate([self.sums[name], other.sums[name]]),
                minlength=len(uniq),
            )
        for name in self.mins:
            out = np.full(len(uniq), np.inf)
            np.minimum.at(out, inverse,
                          np.concatenate([self.mins[name], other.mins[name]]))
            merged.mins[name] = out
        for name in self.maxs:
            out = np.full(len(uniq), -np.inf)
            np.maximum.at(out, inverse,
                          np.concatenate([self.maxs[name], other.maxs[name]]))
            merged.maxs[name] = out
        return merged


def array_aggregate(specs: Sequence[AggSpec],
                    measures: Dict[str, np.ndarray],
                    codes: np.ndarray, ngroups: int) -> AggregationState:
    """Aggregate into a dense array addressed by the Measure Index."""
    counts = np.bincount(codes, minlength=ngroups).astype(np.float64)
    state = AggregationState(specs=specs, ngroups=ngroups, counts=counts)
    _accumulate(state, specs, measures, codes, ngroups)
    return state


def hash_aggregate(specs: Sequence[AggSpec],
                   measures: Dict[str, np.ndarray],
                   codes: np.ndarray) -> AggregationState:
    """Aggregate after compacting the observed group ids (hash stand-in).

    When the observed code range is already dense — ``max - min + 1``
    not much larger than the number of rows — the per-morsel
    ``np.unique`` sort and its inverse-building second pass are skipped
    entirely: offset codes (written into a scratch buffer) address the
    scatter directly, and empty cells are dropped by ``finalize`` as
    usual.  Sparse/huge domains keep the sort-based compaction.
    """
    n = len(codes)
    if n:
        lo = int(codes.min())
        hi = int(codes.max())
        domain = hi - lo + 1
        if domain <= max(1024, 4 * n):
            if lo == 0 and codes.dtype == np.int64:
                offsets = codes
            else:
                offsets = np.subtract(
                    codes, lo, out=local_pool().take(n, np.int64,
                                                     slot=_CODES_SLOT),
                    casting="unsafe")
            counts = np.bincount(offsets, minlength=domain).astype(np.float64)
            state = AggregationState(
                specs=specs, ngroups=domain, counts=counts,
                group_ids=np.arange(lo, hi + 1, dtype=np.int64))
            _accumulate(state, specs, measures, offsets, domain)
            return state
    uniq, inverse = np.unique(codes, return_inverse=True)
    counts = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
    state = AggregationState(specs=specs, ngroups=len(uniq), counts=counts,
                             group_ids=uniq)
    _accumulate(state, specs, measures, inverse, len(uniq))
    return state


def _accumulate(state: AggregationState, specs, measures, codes, ngroups):
    for spec in specs:
        if spec.func == "COUNT":
            continue  # served by state.counts
        values = measures[spec.name]
        state.int_valued[spec.name] = values.dtype.kind in ("i", "u")
        as_float = values.astype(np.float64, copy=False)
        if spec.func in ("SUM", "AVG"):
            state.sums[spec.name] = np.bincount(
                codes, weights=as_float, minlength=ngroups
            )
        elif spec.func == "MIN":
            out = np.full(ngroups, np.inf)
            np.minimum.at(out, codes, as_float)
            state.mins[spec.name] = out
        elif spec.func == "MAX":
            out = np.full(ngroups, -np.inf)
            np.maximum.at(out, codes, as_float)
            state.maxs[spec.name] = out
        else:
            raise ExecutionError(f"unsupported aggregate {spec.func}")


def finalize(state: AggregationState) -> tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Produce final per-group outputs.

    Returns ``(present_group_ids, {output_name: values})`` where
    ``present_group_ids`` are the Measure Index values of non-empty groups
    (dense empty cells are dropped here, matching the paper's note that
    the aggregation array may be sparse).
    """
    present = np.flatnonzero(state.counts > 0)
    if state.group_ids is not None:
        ids = state.group_ids[present]
    else:
        ids = present
    out: Dict[str, np.ndarray] = {}
    for spec in state.specs:
        if spec.func == "COUNT":
            out[spec.name] = state.counts[present].astype(np.int64)
        elif spec.func == "SUM":
            values = state.sums[spec.name][present]
            if state.int_valued.get(spec.name):
                values = np.round(values).astype(np.int64)
            out[spec.name] = values
        elif spec.func == "AVG":
            out[spec.name] = state.sums[spec.name][present] / state.counts[present]
        elif spec.func == "MIN":
            values = state.mins[spec.name][present]
            if state.int_valued.get(spec.name):
                values = values.astype(np.int64)
            out[spec.name] = values
        elif spec.func == "MAX":
            values = state.maxs[spec.name][present]
            if state.int_valued.get(spec.name):
                values = values.astype(np.int64)
            out[spec.name] = values
    return ids, out

"""Mutation-stamped query caching: compile once, serve many.

The paper's three-phase model front-loads *leaf processing* — packed
dimension predicate vectors (Section 4.2) and group-axis encodings
(Section 4.3) — yet a serving workload repeats the same (or
structurally similar) queries millions of times.  This module caches
every compile-time artifact between executions, with **exact**
invalidation piggybacked on the per-table ``Table.mutation_count``
stamps the shared-memory arena already uses:

* **plan tier** — whole :class:`~repro.engine.sharding.BoundQuery`
  artifacts keyed by a canonical query fingerprint (parsed-statement
  form, so whitespace/case differences collapse) plus the
  compile-relevant engine options and the MVCC snapshot;
* **leaf tier** — packed
  :class:`~repro.engine.operators.PredicateFilter` vectors keyed by
  (first-level dimension, canonicalized bound predicate), so SSB query
  *families* (Q2.1/Q2.2/Q2.3 share ``s_region`` predicates, Q3.x share
  region/year slices) reuse dimension scans across *different* queries;
* **axis tier** — the global group-axis encodings of
  :mod:`repro.engine.grouping`.  Encodings are selection-independent,
  so sharing is exact across every query grouping by the same keys;
* **result tier** (the serving tier, opt-in via
  ``EngineOptions.cache_results``) — finished
  :class:`~repro.engine.result.QueryResult` column sets for exact
  repeats.  Results are stamped like every other tier, so a mutation
  anywhere in the query's table set drops the entry instead of serving
  stale rows.  Served results share their column arrays with the cached
  copy, and that sharing is **enforced immutable**: the executor
  freezes the arrays (read-only views) before storing, :meth:`put`
  rejects a writable result-tier entry, and every hit is handed out as
  a per-caller :meth:`~repro.engine.result.QueryResult.served_copy`
  with its own column map — one caller mutating a served result can
  neither corrupt the cache nor be observed by a concurrent caller.

Every entry records the ``(table, mutation_count)`` stamps of the
tables it was computed from and is revalidated on lookup — an update to
``customer`` evicts customer-derived filters and axes but leaves
``date``-only artifacts warm.  One cache is shared per database object
(:func:`query_cache_for`), so a harness line-up of ten engine variants
over the same database shares dimension scans and axes between them.
"""

from __future__ import annotations

import functools
import hashlib
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import Database
from ..sqlparser.parser import parse

#: Cache tiers, in lookup order of a warm query.  ``zone`` holds the
#: per-block zone-map summaries behind data skipping (see
#: :mod:`repro.core.statistics`) — stamped and invalidated like every
#: compile tier, but keyed by data layout rather than by query.
TIERS = ("plan", "leaf", "axis", "zone", "result")

#: Tiers mirrored into an attached cross-process
#: :class:`~repro.core.shmcache.SharedQueryStore`: plans and results
#: travel as pickles with deterministic keys; the leaf/axis/zone tiers
#: stay per-process (their keys embed process-local objects and their
#: values are cheap to rebuild relative to a result or a whole plan).
SHARED_TIERS = ("plan", "result")

Stamps = Tuple[Tuple[str, int], ...]


def table_stamps(db: Database, tables: Iterable[str]) -> Stamps:
    """Point-in-time ``(table, mutation_count)`` stamps for *tables*."""
    return tuple(sorted(
        (name, db.table(name).mutation_count) for name in set(tables)))


@dataclass
class TierStats:
    """Cumulative counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0
    bytes: int = 0
    entries: int = 0
    #: second-level lookups against an attached cross-process store:
    #: a shared hit follows a local miss (a sibling worker's entry
    #: answered), a shared miss means both levels came up empty
    shared_hits: int = 0
    shared_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the tier was never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("value", "stamps", "nbytes", "created")

    def __init__(self, value, stamps: Stamps, nbytes: int,
                 created: float = 0.0):
        self.value = value
        self.stamps = stamps
        self.nbytes = nbytes
        self.created = created


class QueryCache:
    """A multi-tier compile cache plus the opt-in result serving tier.

    Entries are LRU-evicted per tier beyond ``max_entries``; the result
    tier is additionally byte-budgeted (``result_budget_bytes``, with a
    per-entry cap), entry-capped (``max_result_entries``) and optionally
    TTL-bounded (``result_ttl_seconds``) since a serving deployment must
    bound both the footprint and the age of what it answers from.
    Lookups revalidate the entry's recorded mutation stamps against the
    live database, so a stale entry can never be served — it is dropped
    and counted as an invalidation (expired results count separately).
    """

    def __init__(self, max_entries: int = 512,
                 result_budget_bytes: int = 128 << 20,
                 max_result_entry_bytes: int = 32 << 20,
                 result_ttl_seconds: float = 0.0,
                 max_result_entries: int = 0,
                 clock=time.monotonic):
        self.max_entries = max_entries
        self.result_budget_bytes = result_budget_bytes
        self.max_result_entry_bytes = max_result_entry_bytes
        self.result_ttl_seconds = float(result_ttl_seconds)
        self.max_result_entries = int(max_result_entries)
        self._clock = clock
        self._lock = threading.RLock()
        self._tiers: Dict[str, "OrderedDict[tuple, _Entry]"] = {
            tier: OrderedDict() for tier in TIERS}
        self._stats: Dict[str, TierStats] = {
            tier: TierStats() for tier in TIERS}
        #: optional cross-process second level (see attach_shared_store)
        self._shared = None

    def configure_result_tier(self, ttl_seconds: Optional[float] = None,
                              max_entries: Optional[int] = None) -> None:
        """Adjust the serving-tier bounds (``None`` leaves a bound as
        is; 0 disables it).  The cache is shared per database, so the
        engine applies explicit settings, last writer wins."""
        with self._lock:
            if ttl_seconds is not None:
                self.result_ttl_seconds = float(ttl_seconds)
            if max_entries is not None:
                self.max_result_entries = int(max_entries)

    def _entry_cap(self, tier: str) -> int:
        if tier == "result" and self.max_result_entries > 0:
            return min(self.max_entries, self.max_result_entries)
        return self.max_entries

    # -- the cross-process second level --------------------------------------

    def attach_shared_store(self, store) -> None:
        """Attach a :class:`~repro.core.shmcache.SharedQueryStore` as
        the second level behind the :data:`SHARED_TIERS`: local misses
        consult it (promoting hits into the local tier), local stores
        publish to it, and locally observed invalidations broadcast the
        new mutation stamps to every sibling process."""
        with self._lock:
            self._shared = store

    def shared_store(self):
        """The attached shared store, or ``None``."""
        with self._lock:
            return self._shared

    def _shared_get(self, tier: str, key: tuple, db: Database):  # astore: holds[self._lock]
        store = self._shared
        if store is None or tier not in SHARED_TIERS:
            return None
        if tier == "result" and self.result_ttl_seconds > 0:
            # the store does not track entry age; a TTL-bounded serving
            # tier must not resurrect results of unknown vintage
            return None
        stats = self._stats[tier]
        try:
            found = store.get(_shared_token(tier, key), db)
        except Exception:
            found = None
        if found is None:
            stats.shared_misses += 1
            return None
        stamps, payload = found
        try:
            value, nbytes = self._decode_shared(tier, key, payload)
        except Exception:
            stats.shared_misses += 1
            return None
        # promote: the next repeat is a local dict lookup, no unpickle
        self._store_local(tier, key, value, stamps, nbytes)
        stats.shared_hits += 1
        return value

    def _decode_shared(self, tier: str, key: tuple, payload: bytes):
        value = pickle.loads(payload)
        if tier == "result":
            # unpickled arrays come back writable; re-freeze before the
            # entry can be served (put() would reject it otherwise)
            value = value.freeze()
            nbytes = sum(int(getattr(col, "nbytes", 0))
                         for col in value.columns.values())
        else:
            value.cache_key = key  # what run_compiled serves results under
            nbytes = bound_nbytes(value)
        return value, nbytes

    def _publish_shared(self, tier: str, key: tuple, value,  # astore: holds[self._lock]
                        stamps: Stamps) -> None:
        store = self._shared
        if store is None or tier not in SHARED_TIERS or stamps is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # an unpicklable artifact just stays process-local
        try:
            store.put(_shared_token(tier, key), stamps, payload)
        except Exception:
            pass

    def _broadcast_stamps(self, db: Database) -> None:  # astore: holds[self._lock]
        """Tell sibling processes about a locally observed mutation."""
        store = self._shared
        if store is not None:
            try:
                store.publish_stamps(db)
            except Exception:
                pass

    # -- core protocol ------------------------------------------------------

    def get(self, tier: str, key: tuple, db: Database):
        """The cached value, or ``None`` on a miss or a stale entry.

        With a shared store attached, a local miss on a shared tier
        falls through to the cross-process second level — a sibling
        worker's compile or execution answers instead of a redo."""
        with self._lock:
            entries = self._tiers[tier]
            stats = self._stats[tier]
            entry = entries.get(key)
            if entry is None:
                stats.misses += 1
                return self._shared_get(tier, key, db)
            if (tier == "result" and self.result_ttl_seconds > 0
                    and self._clock() - entry.created
                    > self.result_ttl_seconds):
                entries.pop(key, None)
                stats.bytes -= entry.nbytes
                stats.expirations += 1
                stats.misses += 1
                return None
            if not self._fresh(entry, db):
                entries.pop(key, None)
                stats.bytes -= entry.nbytes
                stats.invalidations += 1
                stats.misses += 1
                # whoever observes a mutation first tells the fleet, so
                # no sibling can keep serving shared pre-mutation entries
                self._broadcast_stamps(db)
                return self._shared_get(tier, key, db)
            entries.move_to_end(key)
            stats.hits += 1
            return entry.value

    def put(self, tier: str, key: tuple, value, stamps: Stamps,
            nbytes: int = 0) -> bool:
        """Store *value*; returns False when it exceeds the tier's caps.

        Result-tier values must be frozen (read-only column arrays, see
        :meth:`QueryResult.freeze`): a writable entry would let one
        served caller mutate what every later caller is handed.  Shared
        tiers are additionally published (pickled) to an attached
        shared store, so sibling processes skip the same work."""
        if tier == "result" and not _result_is_frozen(value):
            raise ValueError(
                "result-tier entries must be frozen QueryResults "
                "(store result.freeze(), serve result.served_copy())")
        with self._lock:
            if tier == "result" and nbytes > self.max_result_entry_bytes:
                return False
            self._store_local(tier, key, value, stamps, nbytes)
            self._stats[tier].stores += 1
            self._publish_shared(tier, key, value, stamps)
            return True

    def _store_local(self, tier: str, key: tuple, value, stamps: Stamps,  # astore: holds[self._lock]
                     nbytes: int) -> None:
        """Insert into the local tier and apply its entry/byte bounds
        (shared by :meth:`put` and shared-hit promotion)."""
        entries = self._tiers[tier]
        stats = self._stats[tier]
        old = entries.pop(key, None)
        if old is not None:
            stats.bytes -= old.nbytes
        entries[key] = _Entry(value, stamps, nbytes, created=self._clock())
        stats.bytes += nbytes
        budget = (self.result_budget_bytes if tier == "result" else None)
        while len(entries) > self._entry_cap(tier) or (
                budget is not None and stats.bytes > budget
                and len(entries) > 1):
            _, evicted = entries.popitem(last=False)
            stats.bytes -= evicted.nbytes
            stats.evictions += 1

    def tier_items(self, tier: str, db: Database) -> List[Tuple[tuple, object]]:
        """``(key, value)`` pairs of *tier* whose stamps are still fresh
        (used by the arena export to ship zone maps; stale entries are
        skipped without being counted as lookups)."""
        with self._lock:
            return [(key, entry.value)
                    for key, entry in self._tiers[tier].items()
                    if self._fresh(entry, db)]

    @staticmethod
    def _fresh(entry: _Entry, db: Database) -> bool:
        for name, count in entry.stamps:
            try:
                table = db.table(name)
            except Exception:
                return False
            if table.mutation_count != count:
                return False
        return True

    def clear(self) -> None:
        with self._lock:
            for tier in TIERS:
                self._tiers[tier].clear()
                self._stats[tier].bytes = 0

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, TierStats]:
        """Per-tier cumulative counters (entry counts refreshed)."""
        with self._lock:
            for tier in TIERS:
                self._stats[tier].entries = len(self._tiers[tier])
            return {tier: self._stats[tier] for tier in TIERS}

    def counters(self) -> Dict[str, int]:
        """A flat counter snapshot, for before/after deltas."""
        out: Dict[str, int] = {}
        for tier, stats in self.stats().items():
            out[f"{tier}.hits"] = stats.hits
            out[f"{tier}.misses"] = stats.misses
            if tier in SHARED_TIERS:
                out[f"{tier}.shared_hits"] = stats.shared_hits
                out[f"{tier}.shared_misses"] = stats.shared_misses
        return out

    #: display labels for the zone tier's entry kinds, by key prefix
    _ZONE_KIND_LABELS = (
        ("zonemap", "min/max"),
        ("zonecodes", "code-set"),
        ("zonedel", "deletions"),
        ("zonestate", "verdicts"),
    )

    def zone_kind_rows(self) -> List[list]:
        """Per-kind sub-rows of the zone tier: entries and KiB for each
        summary kind (min/max zone maps, code-set bitmaps, deletion
        summaries, memoized verdict runs) — ``astore cache`` appends
        them under the zone tier so code sets show up distinctly."""
        with self._lock:
            kinds: Dict[str, List[int]] = {}
            for key, entry in self._tiers["zone"].items():
                prefix = key[0] if isinstance(key, tuple) and key else "?"
                bucket = kinds.setdefault(prefix, [0, 0])
                bucket[0] += 1
                bucket[1] += entry.nbytes
        rows = []
        for prefix, label in self._ZONE_KIND_LABELS:
            if prefix in kinds:
                entries, nbytes = kinds.pop(prefix)
                rows.append([f"  zone/{label}", entries, "", "", "", "",
                             "", "", "", nbytes / 1024.0])
        for prefix in sorted(kinds):
            entries, nbytes = kinds[prefix]
            rows.append([f"  zone/{prefix}", entries, "", "", "", "",
                         "", "", "", nbytes / 1024.0])
        return rows

    def stats_rows(self) -> List[list]:
        """``[tier, entries, hits, misses, shared hits, shared misses,
        hit %, invalidated, expired, KiB]`` rows for
        :func:`repro.bench.format_table` (shared columns are zero
        without an attached store).  The zone tier is followed by
        :meth:`zone_kind_rows` breaking its entries down by summary
        kind."""
        rows = []
        for tier, stats in self.stats().items():
            rows.append([
                tier, stats.entries, stats.hits, stats.misses,
                stats.shared_hits, stats.shared_misses,
                100.0 * stats.hit_rate, stats.invalidations,
                stats.expirations, stats.bytes / 1024.0,
            ])
            if tier == "zone":
                rows.extend(self.zone_kind_rows())
        return rows

    @staticmethod
    def hit_rates(before: Dict[str, int],
                  after: Dict[str, int]) -> Dict[str, float]:
        """Per-tier hit rates over the window between two counter
        snapshots (tiers with no lookups in the window are omitted)."""
        rates: Dict[str, float] = {}
        for tier in TIERS:
            hits = after.get(f"{tier}.hits", 0) - before.get(f"{tier}.hits", 0)
            misses = (after.get(f"{tier}.misses", 0)
                      - before.get(f"{tier}.misses", 0))
            if hits + misses:
                rates[tier] = hits / (hits + misses)
        return rates


def _shared_token(tier: str, key: tuple) -> str:
    """The cross-process key of a shared-tier entry.

    Plan/result keys are ``(fingerprint_hex, snapshot)`` — built from
    deterministic ``repr``s, so the same query text hashes to the same
    token in every worker process."""
    return f"{tier}|{key!r}"


def _result_is_frozen(value) -> bool:
    """Duck-typed immutability check for serving-tier entries (anything
    without a ``frozen`` attribute — e.g. a test stub — is let through)."""
    return bool(getattr(value, "frozen", True))


# -- canonical fingerprints ---------------------------------------------------


#: Parse memo: statements are frozen dataclasses, so sharing one parse
#: across repeated executions of the same text is safe — the warm
#: serving path skips the tokenizer entirely.
parse_cached = functools.lru_cache(maxsize=512)(parse)


def query_fingerprint(stmt, options_token: str) -> str:
    """A canonical fingerprint of a parsed statement + engine options.

    Fingerprinting the *parsed* form (frozen dataclasses with
    deterministic ``repr``) collapses whitespace, keyword case, and
    other textual noise; two texts that parse identically share one
    plan-tier entry."""
    basis = f"{options_token}|{stmt!r}"
    return hashlib.sha1(basis.encode()).hexdigest()


def axis_nbytes(axis) -> int:
    """Resident bytes of a cached :class:`GroupAxis` (decoded columns +
    the dimension-sized group vector)."""
    total = sum(values.nbytes for values in axis.columns.values())
    if axis.dim_codes is not None:
        total += axis.dim_codes.nbytes
    if axis.sorted_domain is not None:
        total += axis.sorted_domain.nbytes
    return total


def bound_nbytes(bound) -> int:
    """Resident bytes of a cached bound plan (leaf products + axes)."""
    total = 0
    for pf in bound.leaf.filters.values():
        total += pf.nbytes
    for axis in bound.leaf.axes:
        total += axis_nbytes(axis)
    return total


# -- one shared cache per database object -------------------------------------


_CACHES: "weakref.WeakKeyDictionary[Database, QueryCache]" = (
    weakref.WeakKeyDictionary())
_CACHES_LOCK = threading.Lock()

#: Lock contract, machine-checked by ``astore lint`` (lock-discipline).
#: The tier dicts, their stats, and the shared-store handle all move
#: together under the cache's reentrant lock; the process-wide registry
#: has its own (the unlocked get-or-create here was a check-then-act
#: race: two threads resolving the same database could mint two caches,
#: splitting single-flight and stamp-broadcast state between them).
GUARDED_BY = {
    "_CACHES": "_CACHES_LOCK",
    "QueryCache._tiers": "self._lock",
    "QueryCache._stats": "self._lock",
    "QueryCache._shared": "self._lock",
}


def query_cache_for(db: Database) -> QueryCache:
    """The shared :class:`QueryCache` of *db* (created on first use).

    Weakly keyed by object identity — stamps then track content
    *within* that object's lifetime, and the cache dies with the
    database, so entries can never outlive (or be misattributed to)
    their data.
    """
    with _CACHES_LOCK:
        cache = _CACHES.get(db)
        if cache is None:
            cache = _CACHES[db] = QueryCache()
        return cache

"""Deterministic fault injection for the distributed/serving stack.

A *chaos rule* arms one named call site with one fault action:

* ``kill``    — ``os._exit(137)``: the process dies exactly where a
  SIGKILL would land (a shard node mid-query, a fleet worker on spawn);
* ``delay``   — sleep ``value`` seconds (past a deadline, if the test
  arranges one);
* ``drop``    — raise :class:`ChaosDrop` (a ``ConnectionError``): the
  connection is torn exactly as if the peer vanished;
* ``corrupt`` — flip the leading bytes of the payload passing through
  the site, so the receiver sees garbage instead of a pickle;
* ``error``   — raise :class:`ChaosError`: a generic internal failure.

Sites are plain strings (``node.request``, ``node.response``,
``coordinator.send``, ``serve.request``, ``fleet.worker`` ...); code
under test calls :func:`chaos_point` (or :func:`chaos_point_async` on an
event loop) at each site and is otherwise unaffected — with no rules
installed a chaos point is a dict lookup.

Rules are deterministic, not probabilistic: each fires on an exact
*hit index* of its site (per process), so every recovery path is
reproducible.  The spec grammar is::

    action@site[:first][xcount][=value] [; more rules]

``first`` is the 1-based hit at which the rule starts firing (default
1), ``count`` how many consecutive hits fire (default 1; 0 = every hit
from ``first`` on), ``value`` the delay in seconds.  Examples:
``kill@node.request:3`` (die on the 3rd request), ``delay@node.run:1x0=0.4``
(delay every execution 0.4 s), ``drop@node.response`` (drop the first
response).  Specs travel to spawned processes through the
``ASTORE_CHAOS`` environment variable, loaded lazily on first use.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

ENV_VAR = "ASTORE_CHAOS"

_ACTIONS = ("kill", "delay", "drop", "corrupt", "error")


class ChaosDrop(ConnectionError):
    """An injected connection loss (the ``drop`` action)."""


class ChaosError(RuntimeError):
    """An injected generic failure (the ``error`` action)."""


@dataclass(frozen=True)
class ChaosRule:
    """One armed fault: fire *action* at hits [first, first+count) of *site*
    (count 0 = unbounded); *value* is the delay in seconds."""

    action: str
    site: str
    first: int = 1
    count: int = 1
    value: float = 0.0

    def due(self, hit: int) -> bool:
        if hit < self.first:
            return False
        return self.count == 0 or hit < self.first + self.count


def parse_rules(spec: str) -> List[ChaosRule]:
    """Parse a ``;``-separated rule spec (see module docstring)."""
    rules: List[ChaosRule] = []
    for part in (spec or "").split(";"):
        part = part.strip()
        if not part:
            continue
        body, _, raw_value = part.partition("=")
        action, sep, target = body.partition("@")
        action = action.strip()
        if not sep or action not in _ACTIONS:
            raise ValueError(f"bad chaos rule {part!r}: expected "
                             f"action@site with action in {_ACTIONS}")
        site, _, trigger = target.partition(":")
        site = site.strip()
        if not site:
            raise ValueError(f"bad chaos rule {part!r}: empty site")
        first, count = 1, 1
        if trigger:
            raw_first, x, raw_count = trigger.partition("x")
            first = int(raw_first) if raw_first else 1
            count = int(raw_count) if x else 1
        rules.append(ChaosRule(action, site, first, count,
                               float(raw_value) if raw_value else 0.0))
    return rules


def format_rules(rules: Sequence[ChaosRule]) -> str:
    """The spec string for *rules* (inverse of :func:`parse_rules`)."""
    parts = []
    for rule in rules:
        part = f"{rule.action}@{rule.site}"
        if rule.first != 1 or rule.count != 1:
            part += f":{rule.first}x{rule.count}"
        if rule.value:
            part += f"={rule.value:g}"
        parts.append(part)
    return ";".join(parts)


def _corrupt(payload):
    if isinstance(payload, (bytes, bytearray)) and payload:
        data = bytearray(payload)
        for i in range(min(8, len(data))):
            data[i] ^= 0xFF
        return bytes(data)
    return payload


class ChaosController:
    """Per-process rule set + per-site hit counters (thread-safe).

    ``fired`` records every triggered ``(site, action, hit)`` so tests
    can assert a fault actually fired, not just that recovery code ran.
    """

    def __init__(self, rules: Sequence[ChaosRule] = ()):
        self._rules: List[ChaosRule] = list(rules)
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: List[Tuple[str, str, int]] = []

    def install(self, spec: Union[str, Sequence[ChaosRule]]) -> None:
        rules = parse_rules(spec) if isinstance(spec, str) else list(spec)
        with self._lock:
            self._rules = rules
            self._hits.clear()
            self.fired.clear()

    def clear(self) -> None:
        self.install(())

    def _advance(self, site: str) -> List[ChaosRule]:
        with self._lock:
            if not self._rules:
                return []
            hit = self._hits[site] = self._hits.get(site, 0) + 1
            due = [r for r in self._rules if r.site == site and r.due(hit)]
            for rule in due:
                self.fired.append((site, rule.action, hit))
            return due

    def fire(self, site: str, payload=None, sleeper=time.sleep):
        """Trigger any rules due at *site*; returns the (possibly
        corrupted) payload.  ``kill`` never returns."""
        for rule in self._advance(site):
            if rule.action == "kill":
                os._exit(137)
            elif rule.action == "delay":
                sleeper(rule.value)
            elif rule.action == "drop":
                raise ChaosDrop(f"chaos: connection dropped at {site}")
            elif rule.action == "error":
                raise ChaosError(f"chaos: injected failure at {site}")
            elif rule.action == "corrupt":
                payload = _corrupt(payload)
        return payload


_CONTROLLER: Optional[ChaosController] = None
_CONTROLLER_LOCK = threading.Lock()


def controller() -> ChaosController:
    """The process-wide controller, created from ``ASTORE_CHAOS`` on
    first use (so spawned workers inherit faults through the env)."""
    global _CONTROLLER
    if _CONTROLLER is None:
        with _CONTROLLER_LOCK:
            if _CONTROLLER is None:
                _CONTROLLER = ChaosController(
                    parse_rules(os.environ.get(ENV_VAR, "")))
    return _CONTROLLER


def install_chaos(spec: Union[str, Sequence[ChaosRule]]) -> None:
    """Arm this process with *spec* (a spec string or rule list)."""
    controller().install(spec)


def clear_chaos() -> None:
    """Disarm every rule and reset hit counters."""
    controller().clear()


def chaos_fired() -> List[Tuple[str, str, int]]:
    """Every ``(site, action, hit)`` that has fired in this process."""
    return list(controller().fired)


def chaos_point(site: str, payload=None):
    """A named fault-injection site; returns *payload* (corrupted if a
    ``corrupt`` rule fired).  No-op unless rules are armed."""
    return controller().fire(site, payload)


async def chaos_point_async(site: str, payload=None):
    """:func:`chaos_point` for event-loop sites: delays use
    ``asyncio.sleep`` so an injected stall never blocks the loop."""
    import asyncio

    pending: List[float] = []
    payload = controller().fire(site, payload, sleeper=pending.append)
    for seconds in pending:
        await asyncio.sleep(seconds)
    return payload

"""Deterministic fault injection for the distributed/serving stack.

A *chaos rule* arms one named call site with one fault action:

* ``kill``    — ``os._exit(137)``: the process dies exactly where a
  SIGKILL would land (a shard node mid-query, a fleet worker on spawn);
* ``delay``   — sleep ``value`` seconds (past a deadline, if the test
  arranges one);
* ``drop``    — raise :class:`ChaosDrop` (a ``ConnectionError``): the
  connection is torn exactly as if the peer vanished;
* ``corrupt`` — flip the leading bytes of the payload passing through
  the site, so the receiver sees garbage instead of a pickle;
* ``error``   — raise :class:`ChaosError`: a generic internal failure;
* ``flap``    — alternate :class:`ChaosDrop` and success on consecutive
  hits within the rule's window: a link that is down, up, down, up —
  the deterministic version of a flapping node, which is what drives a
  membership view through suspect and back without ever reaching dead.

Sites are plain strings drawn from :data:`KNOWN_SITES`
(``node.request``, ``node.response``, ``coordinator.send``,
``serve.request``, ``fleet.worker``, ``membership.heartbeat``,
``node.register``, ``coordinator.admit`` ...); code under test calls
:func:`chaos_point` (or :func:`chaos_point_async` on an event loop) at
each site and is otherwise unaffected — with no rules installed a chaos
point is a dict lookup.  A spec naming a site outside the registry (or
attaching ``=value`` to an action that takes none) raises the typed
:class:`~repro.errors.ChaosSpecError` instead of silently arming a rule
that can never fire.

Rules are deterministic, not probabilistic: each fires on an exact
*hit index* of its site (per process), so every recovery path is
reproducible.  The spec grammar is::

    action@site[:first][xcount][=value] [; more rules]

``first`` is the 1-based hit at which the rule starts firing (default
1), ``count`` how many consecutive hits fire (default 1; 0 = every hit
from ``first`` on), ``value`` the delay in seconds.  Examples:
``kill@node.request:3`` (die on the 3rd request), ``delay@node.run:1x0=0.4``
(delay every execution 0.4 s), ``drop@node.response`` (drop the first
response).  Specs travel to spawned processes through the
``ASTORE_CHAOS`` environment variable, loaded lazily on first use.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ChaosSpecError

ENV_VAR = "ASTORE_CHAOS"

_ACTIONS = ("kill", "delay", "drop", "corrupt", "error", "flap")

#: Every call site the production code arms — a rule naming anything
#: else is a spec typo, and a typo'd site would otherwise just never
#: fire (the worst possible failure mode for a chaos test).
KNOWN_SITES = frozenset({
    "node.request",          # shard node: request received, not yet run
    "node.run",              # shard node: about to execute a shard
    "node.response",         # shard node: response frame leaving
    "node.register",         # membership server: a join announcement
    "coordinator.send",      # coordinator: request frame leaving
    "coordinator.recv",      # coordinator: response frame arriving
    "coordinator.admit",     # serve front door: request admission
    "membership.heartbeat",  # membership prober: one heartbeat probe
    "membership.request",    # membership client: join/members round trip
    "serve.request",         # serve layer: a query request accepted
    "fleet.worker",          # fleet worker process: just spawned
    "fleet.handoff",         # fleet supervisor: fd handoff to a worker
})


class ChaosDrop(ConnectionError):
    """An injected connection loss (the ``drop``/``flap`` actions)."""


class ChaosError(RuntimeError):
    """An injected generic failure (the ``error`` action)."""


@dataclass(frozen=True)
class ChaosRule:
    """One armed fault: fire *action* at hits [first, first+count) of *site*
    (count 0 = unbounded); *value* is the delay in seconds."""

    action: str
    site: str
    first: int = 1
    count: int = 1
    value: float = 0.0

    def due(self, hit: int) -> bool:
        if hit < self.first:
            return False
        if self.count != 0 and hit >= self.first + self.count:
            return False
        # flap = down, up, down, up...: only every other hit in the
        # window actually fails, starting with the first
        if self.action == "flap":
            return (hit - self.first) % 2 == 0
        return True


def parse_rules(spec: str) -> List[ChaosRule]:
    """Parse a ``;``-separated rule spec (see module docstring).

    Malformed rules raise the typed :class:`ChaosSpecError` (a
    ``ValueError`` subclass): unknown actions, unknown sites, empty
    sites, non-numeric triggers, and ``=value`` on any action other
    than ``delay`` (the only one that consumes a value).
    """
    rules: List[ChaosRule] = []
    for part in (spec or "").split(";"):
        part = part.strip()
        if not part:
            continue
        body, has_value, raw_value = part.partition("=")
        action, sep, target = body.partition("@")
        action = action.strip()
        if not sep or action not in _ACTIONS:
            raise ChaosSpecError(f"bad chaos rule {part!r}: expected "
                                 f"action@site with action in {_ACTIONS}")
        if has_value and action != "delay":
            raise ChaosSpecError(
                f"bad chaos rule {part!r}: only the delay action takes "
                f"=value (seconds)")
        site, _, trigger = target.partition(":")
        site = site.strip()
        if not site:
            raise ChaosSpecError(f"bad chaos rule {part!r}: empty site")
        if site not in KNOWN_SITES:
            raise ChaosSpecError(
                f"bad chaos rule {part!r}: unknown site {site!r} "
                f"(a typo'd site would never fire); known sites: "
                f"{', '.join(sorted(KNOWN_SITES))}")
        first, count = 1, 1
        if trigger:
            raw_first, x, raw_count = trigger.partition("x")
            try:
                first = int(raw_first) if raw_first else 1
                count = int(raw_count) if x else 1
            except ValueError:
                raise ChaosSpecError(
                    f"bad chaos rule {part!r}: trigger must be "
                    f":first[xcount] with integer hits") from None
        try:
            value = float(raw_value) if raw_value else 0.0
        except ValueError:
            raise ChaosSpecError(
                f"bad chaos rule {part!r}: =value must be a number "
                f"of seconds") from None
        rules.append(ChaosRule(action, site, first, count, value))
    return rules


def format_rules(rules: Sequence[ChaosRule]) -> str:
    """The spec string for *rules* (inverse of :func:`parse_rules`)."""
    parts = []
    for rule in rules:
        part = f"{rule.action}@{rule.site}"
        if rule.first != 1 or rule.count != 1:
            part += f":{rule.first}x{rule.count}"
        if rule.value:
            part += f"={rule.value:g}"
        parts.append(part)
    return ";".join(parts)


def _corrupt(payload):
    if isinstance(payload, (bytes, bytearray)) and payload:
        data = bytearray(payload)
        for i in range(min(8, len(data))):
            data[i] ^= 0xFF
        return bytes(data)
    return payload


class ChaosController:
    """Per-process rule set + per-site hit counters (thread-safe).

    ``fired`` records every triggered ``(site, action, hit)`` so tests
    can assert a fault actually fired, not just that recovery code ran.
    """

    def __init__(self, rules: Sequence[ChaosRule] = ()):
        self._rules: List[ChaosRule] = list(rules)
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: List[Tuple[str, str, int]] = []

    def install(self, spec: Union[str, Sequence[ChaosRule]]) -> None:
        rules = parse_rules(spec) if isinstance(spec, str) else list(spec)
        with self._lock:
            self._rules = rules
            self._hits.clear()
            self.fired.clear()

    def clear(self) -> None:
        self.install(())

    def _advance(self, site: str) -> List[ChaosRule]:
        with self._lock:
            if not self._rules:
                return []
            hit = self._hits[site] = self._hits.get(site, 0) + 1
            due = [r for r in self._rules if r.site == site and r.due(hit)]
            for rule in due:
                self.fired.append((site, rule.action, hit))
            return due

    def fire(self, site: str, payload=None, sleeper=time.sleep):
        """Trigger any rules due at *site*; returns the (possibly
        corrupted) payload.  ``kill`` never returns."""
        for rule in self._advance(site):
            if rule.action == "kill":
                os._exit(137)
            elif rule.action == "delay":
                sleeper(rule.value)
            elif rule.action in ("drop", "flap"):
                raise ChaosDrop(f"chaos: connection dropped at {site}")
            elif rule.action == "error":
                raise ChaosError(f"chaos: injected failure at {site}")
            elif rule.action == "corrupt":
                payload = _corrupt(payload)
        return payload


_CONTROLLER: Optional[ChaosController] = None
_CONTROLLER_LOCK = threading.Lock()


def controller() -> ChaosController:
    """The process-wide controller, created from ``ASTORE_CHAOS`` on
    first use (so spawned workers inherit faults through the env)."""
    global _CONTROLLER
    if _CONTROLLER is None:
        with _CONTROLLER_LOCK:
            if _CONTROLLER is None:
                _CONTROLLER = ChaosController(
                    parse_rules(os.environ.get(ENV_VAR, "")))
    return _CONTROLLER


def install_chaos(spec: Union[str, Sequence[ChaosRule]]) -> None:
    """Arm this process with *spec* (a spec string or rule list)."""
    controller().install(spec)


def clear_chaos() -> None:
    """Disarm every rule and reset hit counters."""
    controller().clear()


def chaos_fired() -> List[Tuple[str, str, int]]:
    """Every ``(site, action, hit)`` that has fired in this process."""
    return list(controller().fired)


def chaos_point(site: str, payload=None):
    """A named fault-injection site; returns *payload* (corrupted if a
    ``corrupt`` rule fired).  No-op unless rules are armed."""
    return controller().fire(site, payload)


async def chaos_point_async(site: str, payload=None):
    """:func:`chaos_point` for event-loop sites: delays use
    ``asyncio.sleep`` so an injected stall never blocks the loop."""
    import asyncio

    pending: List[float] = []
    payload = controller().fire(site, payload, sleeper=pending.append)
    for seconds in pending:
        await asyncio.sleep(seconds)
    return payload

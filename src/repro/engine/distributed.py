"""Fault-tolerant distributed scatter-gather: shard nodes + coordinator.

The ``remote`` entry of :data:`repro.engine.operators.BACKENDS`.  A
**shard node** (:class:`ShardNode`, ``astore node``) loads its own copy
of the database and serves pickled :class:`~repro.engine.sharding.BoundQuery`
shards over a length-prefixed TCP protocol; a **coordinator**
(:class:`RemoteShardBackend`) scatters one plan's shards over N nodes
and merges the returned :class:`~repro.engine.sharding.ShardOutcome`\\ s
in shard order — so the engine's sharded path
(:meth:`AStoreEngine._run_sharded`) produces the exact serial answer, as
it does for the process backend.

The interesting part is the failure model:

* **deadlines** — every node request runs under a socket timeout
  (``EngineOptions.node_timeout``); a stuck node cannot pin a query;
* **retry** — a failed request (timeout, connection error, torn or
  corrupted frame) retries on the same node with exponential backoff +
  jitter, up to ``EngineOptions.node_retries`` times;
* **node loss** — retries exhausted (or a failed heartbeat) mark the
  node dead for this coordinator;
* **re-shard** — shards stranded on a dead node re-scatter to the
  surviving nodes, and when none survive they run locally on the
  coordinator's own copy.  Shard boundaries depend only on
  ``(plan, shard, nshards)``, so a re-sharded outcome is bit-identical
  to the one the dead node would have produced;
* **stamps** — nodes hold point-in-time copies.  Each ``run`` request
  carries the coordinator's mutation stamps, checked against the
  node-side :class:`~repro.core.shmcache.StampLane` (the fleet's
  ``publish_stamps`` protocol over a socket instead of shared memory):
  a node whose data trails the stamps *refuses* the shard rather than
  serving a pre-mutation result, and a coordinator that observes a
  local mutation broadcasts its new stamps to every node before
  degrading those shards to local execution;
* **membership** (PR 9) — instead of a fixed node list, the backend can
  follow a :mod:`~repro.engine.membership` view: nodes that register
  (or *re*-register after a crash) fold into the next scatter wave
  (``nodes_joined``), each link sits behind a :class:`CircuitBreaker`
  (open after consecutive failures, half-open probe before
  readmission), and ``node_hedge`` arms hedged shard requests — after
  that many seconds without an answer the shard races on a second live
  node and the first answer wins (outcomes are deterministic, so either
  answer is *the* answer).

A node handles SIGTERM gracefully: stop accepting, finish the in-flight
shard, deregister from membership, exit 0 — only SIGKILL is a crash.

Chaos sites (:mod:`repro.engine.chaos`): ``node.request`` (a kill here
is a mid-query death), ``node.run``, ``node.response``,
``coordinator.send``, ``coordinator.recv``.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import pickle
import queue
import random
import signal
import socket
import struct
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.shmcache import StampLane
from ..errors import ExecutionError
from .chaos import ChaosDrop, chaos_point, install_chaos
from .sharding import ShardOutcome, database_stamp
from . import sharding as _sharding

#: Frames larger than this are a protocol error, not a payload.
_MAX_FRAME = 1 << 30

_CONNECT_TIMEOUT = 5.0


# -- wire protocol ------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message, site: str = "") -> None:
    """Pickle *message* and send it length-prefixed (4-byte LE)."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if site:
        data = chaos_point(site, data)
    sock.sendall(struct.pack("<I", len(data)) + data)


def recv_frame(sock: socket.socket, site: str = ""):
    """Receive one length-prefixed pickled frame."""
    (length,) = struct.unpack("<I", _recv_exact(sock, 4))
    if length > _MAX_FRAME:
        raise ExecutionError(f"oversized frame ({length} bytes)")
    data = _recv_exact(sock, length)
    if site:
        data = chaos_point(site, data)
    return pickle.loads(data)


# -- shard node ---------------------------------------------------------------


class ShardNode:
    """One remote shard worker: a database copy + a TCP request loop.

    Requests are pickled tuples, one frame in, one frame out:

    * ``("ping",)`` → ``("pong", pid)`` — the heartbeat;
    * ``("stamps", stamps)`` → ``("ok",)`` — a coordinator broadcasting
      post-mutation stamps into this node's :class:`StampLane`;
    * ``("lane",)`` → ``("ok", published)`` — the lane's published
      counts (introspection: tests pin what survived a reconnect);
    * ``("run", plan_bytes, plan_seq, shard, nshards, use_array,
      stamps)`` → ``("ok", ShardOutcome)``, or ``("stale", local_stamps)``
      when the stamps show this node's copy predates a mutation, or
      ``("err", message)`` on an execution failure;
    * ``("shutdown",)`` → ``("ok",)``, then the node exits its loop.

    One thread per connection; the plan-pickle memo mirrors the process
    backend's worker cache (``plan_seq`` keyed), so a flight of cached
    plans deserializes each plan once, not once per shard.
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0):
        self.db = db
        self.lane = StampLane()
        self.requests = 0
        self.shards_served = 0
        self.refusals = 0
        self._stop = threading.Event()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._plan_lock = threading.Lock()
        self._plan_cache: Tuple[int, object] = (-1, None)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` request (or
        :meth:`stop`); each connection gets its own handler thread."""
        self._listener.settimeout(0.25)
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name="astore-node-conn", daemon=True)
                thread.start()
        finally:
            self.close()

    def stop(self) -> None:
        self._stop.set()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight requests to finish — the graceful-stop
        half of SIGTERM: the current shard completes and its response
        goes out before the process exits."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        with contextlib.suppress(Exception), conn:
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (EOFError, OSError):
                    break
                # a kill armed here dies holding a received request —
                # exactly a node lost mid-query
                chaos_point("node.request")
                with self._inflight_cv:
                    self._inflight += 1
                try:
                    response = self._handle(request)
                finally:
                    with self._inflight_cv:
                        self._inflight -= 1
                        self._inflight_cv.notify_all()
                try:
                    send_frame(conn, response, site="node.response")
                except ChaosDrop:
                    break  # injected connection loss: tear, don't answer
                if request and request[0] == "shutdown":
                    break

    def _handle(self, request) -> tuple:
        self.requests += 1
        try:
            kind = request[0]
            if kind == "ping":
                return ("pong", os.getpid())
            if kind == "stamps":
                self.lane.publish(request[1])
                return ("ok",)
            if kind == "lane":
                return ("ok", self.lane.snapshot())
            if kind == "shutdown":
                self.stop()
                return ("ok",)
            if kind == "run":
                return self._run_shard(*request[1:])
            return ("err", f"unknown request {kind!r}")
        except ChaosDrop:
            raise
        except Exception as exc:  # noqa: BLE001 - protocol: answer, not tear
            return ("err", f"{type(exc).__name__}: {exc}")

    def _run_shard(self, plan_bytes: bytes, plan_seq: int, shard: int,
                   nshards: int, use_array, stamps) -> tuple:
        if not self.lane.admits(stamps, self.db):
            # this copy predates a mutation the coordinator has seen
            # (or the lane heard about): refuse rather than serve stale
            self.refusals += 1
            return ("stale", database_stamp(self.db))
        with self._plan_lock:
            seq, plan = self._plan_cache
            if seq != plan_seq:
                plan = pickle.loads(plan_bytes)
                self._plan_cache = (plan_seq, plan)
        chaos_point("node.run")
        outcome = plan.run_shard(self.db, shard, nshards, use_array)
        self.shards_served += 1
        return ("ok", outcome)


def _join_with_retry(join: str, address: str, attempts: int = 12,
                     delay: float = 0.25) -> tuple:
    """Announce *address* to the membership server at *join*, retrying
    briefly — a node often races the coordinator's bind at startup."""
    from ..errors import MembershipError
    from .membership import announce_join

    for attempt in range(attempts):
        try:
            stamps, _ = announce_join(join, address)
            return stamps
        except MembershipError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
    return ()  # pragma: no cover - unreachable


def run_node(database_path: str, host: str = "127.0.0.1", port: int = 0,
             announce=print, ready=None, join: str = "",
             drain_timeout: float = 10.0) -> None:
    """``astore node``: load *database_path*, serve shards until shutdown.

    *ready*, if given, is a pipe connection that receives
    ``(host, port, pid)`` once the node is listening (how
    :func:`start_local_nodes` learns the bound ports).

    *join*, if given, is a membership server's ``host:port``: the node
    announces itself there before signalling ready and folds the join
    reply's stamps into its lane — the rejoin catch-up, so a restarted
    node with a pre-mutation copy refuses shards instead of serving
    stale answers.  SIGTERM is graceful: stop accepting, finish the
    in-flight shard, deregister, exit 0.
    """
    from ..io import load_database

    db = load_database(database_path)
    node = ShardNode(db, host, port)
    if join:
        node.lane.publish(_join_with_retry(join, node.address))
    with contextlib.suppress(ValueError):  # ValueError: not the main thread
        signal.signal(signal.SIGTERM, lambda signum, frame: node.stop())
    if ready is not None:
        # startup-readiness pipe to the spawning harness, not a network
        # path: chaos here could only wedge test setup
        ready.send((node.host, node.port, os.getpid()))  # astore: ignore[chaos-coverage]
    announce(f"astore node: serving shards of {database_path} on "
             f"{node.host}:{node.port} (pid {os.getpid()})")
    node.serve_forever()
    node.drain(drain_timeout)
    if join:
        from .membership import announce_leave

        announce_leave(join, node.address)
    announce(f"astore node: stopped after {node.requests} requests "
             f"({node.shards_served} shards, {node.refusals} stale "
             f"refusals)")


def _node_main(database_path: str, host: str, port: int, chaos_spec: str,
               join: str, conn) -> None:
    """Spawn entry point of one local shard node (top-level: picklable)."""
    if chaos_spec:
        install_chaos(chaos_spec)
    with contextlib.suppress(KeyboardInterrupt):
        run_node(database_path, host=host, port=port,
                 announce=lambda *_: None, ready=conn, join=join)


@dataclass
class NodeHandle:
    """One spawned local shard node."""

    process: "multiprocessing.process.BaseProcess"
    host: str
    port: int
    pid: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


#: Every live LocalNodes set, reaped at interpreter exit — an aborted
#: test run must not orphan node processes (each holds a database copy).
_LIVE_NODES: "weakref.WeakSet[LocalNodes]" = weakref.WeakSet()


@atexit.register
def _reap_local_nodes() -> None:
    for nodes in list(_LIVE_NODES):
        with contextlib.suppress(Exception):
            nodes.reap()


class LocalNodes:
    """A set of shard-node processes over one database archive.

    The test/bench/CI harness: spawns *count* nodes (each loading its
    own copy of *database_path*), exposes their addresses, and can
    SIGKILL one mid-flight to exercise the re-shard path — or SIGTERM
    it (:meth:`terminate`, graceful) and :meth:`restart` it on the same
    port to exercise rejoin.  Per-node chaos specs arm deterministic
    faults inside a node process; *membership*, if given, is a
    membership server address every node joins on startup.
    """

    def __init__(self, database_path: str, count: int = 2,
                 host: str = "127.0.0.1",
                 chaos: Optional[Sequence[str]] = None,
                 start_timeout: float = 120.0,
                 membership: str = ""):
        self._ctx = multiprocessing.get_context("spawn")
        self.database_path = str(database_path)
        self.host = host
        self.membership = membership
        self.start_timeout = start_timeout
        self._specs = list(chaos or [])
        self.nodes: List[NodeHandle] = []
        _LIVE_NODES.add(self)
        for index in range(count):
            self.nodes.append(self._spawn(index, port=0))

    def _spawn(self, index: int, port: int) -> NodeHandle:
        parent, child = self._ctx.Pipe(duplex=False)
        spec = self._specs[index] if index < len(self._specs) else ""
        process = self._ctx.Process(
            target=_node_main,
            args=(self.database_path, self.host, port, spec,
                  self.membership, child),
            name=f"astore-node-{index}")
        process.start()
        child.close()
        if not parent.poll(self.start_timeout):
            self.close()
            raise ExecutionError(
                f"shard node {index} not ready after {self.start_timeout}s")
        # readiness pipe (see run_node): harness setup, not chaos surface
        node_host, node_port, pid = parent.recv()  # astore: ignore[chaos-coverage]
        parent.close()
        return NodeHandle(process, node_host, node_port, pid)

    @property
    def addresses(self) -> Tuple[str, ...]:
        return tuple(node.address for node in self.nodes)

    def kill(self, index: int) -> int:
        """SIGKILL node *index* (mid-flight node loss); returns its pid."""
        node = self.nodes[index]
        with contextlib.suppress(ProcessLookupError):
            os.kill(node.pid, signal.SIGKILL)
        node.process.join(timeout=10)
        return node.pid

    def terminate(self, index: int, timeout: float = 15.0) -> Optional[int]:
        """SIGTERM node *index* (graceful stop: the node finishes its
        in-flight shard and deregisters); returns its exit code."""
        node = self.nodes[index]
        with contextlib.suppress(ProcessLookupError):
            os.kill(node.pid, signal.SIGTERM)
        node.process.join(timeout=timeout)
        return node.process.exitcode

    def restart(self, index: int) -> NodeHandle:
        """Respawn a killed/terminated node on its old port — the rejoin
        path: same address, new process, new incarnation."""
        old = self.nodes[index]
        if old.process.is_alive():
            raise ExecutionError(
                f"node {index} is still running; kill or terminate first")
        handle = self._spawn(index, port=old.port)
        self.nodes[index] = handle
        return handle

    def reap(self) -> None:
        """Kill every child outright (the atexit path: no sockets, no
        graceful anything — just don't leak processes)."""
        for node in self.nodes:
            if node.process.is_alive():
                with contextlib.suppress(Exception):
                    node.process.kill()

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Ask every live node to exit its loop; True if all exited."""
        for node in self.nodes:
            if not node.process.is_alive():
                continue
            with contextlib.suppress(Exception):
                # teardown must always run for real: a chaos site here
                # would let an armed spec leak node processes
                with socket.create_connection(  # astore: ignore[chaos-coverage]
                        (node.host, node.port), timeout=2.0) as sock:
                    sock.settimeout(2.0)
                    send_frame(sock, ("shutdown",))
                    recv_frame(sock)
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            node.process.join(timeout=max(0.1, deadline - time.monotonic()))
        return all(not node.process.is_alive() for node in self.nodes)

    def close(self) -> None:
        _LIVE_NODES.discard(self)
        self.shutdown(timeout=5.0)
        for node in self.nodes:
            if node.process.is_alive():
                node.process.terminate()
                node.process.join(timeout=5)
            if node.process.is_alive():  # pragma: no cover - last resort
                node.process.kill()
                node.process.join(timeout=5)

    def __enter__(self) -> "LocalNodes":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- coordinator --------------------------------------------------------------


class _ShardRefused(Exception):
    """The node's copy is stale: re-route, don't retry."""


class _NodeLost(Exception):
    """Retries exhausted: the node is dead to this coordinator."""


class CircuitBreaker:
    """Per-node admission control: ``closed`` → ``open`` after
    ``threshold`` consecutive request failures, ``half-open`` once
    ``reset_seconds`` have passed (exactly one probe request is
    readmitted), ``closed`` again when the probe succeeds.

    Keeps a scatter wave from queueing shards on a node that keeps
    failing, and gates the membership view's reactivation of a link
    this coordinator already watched die: membership may vouch for the
    address, but the link only takes traffic again through the
    half-open probe.  *clock* is injectable so tests drive the reset
    window deterministically.
    """

    def __init__(self, threshold: int = 3, reset_seconds: float = 2.0,
                 clock=time.monotonic, on_transition=None):
        self.threshold = max(1, int(threshold))
        self.reset_seconds = float(reset_seconds)
        self.clock = clock
        self.on_transition = on_transition
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self._lock = threading.Lock()

    def _note(self, transition: Optional[str]) -> None:
        if transition and self.on_transition is not None:
            self.on_transition(transition)

    def admits(self) -> bool:
        """May this node take a request right now?  The first call after
        an open breaker's reset window flips to half-open and admits —
        that request is the probe; until it resolves, nothing else is."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open" and (
                    self.clock() - self.opened_at >= self.reset_seconds):
                self.state = "half-open"
            else:
                # open inside the reset window, or a half-open probe
                # already in flight: nothing admitted
                return False
        self._note("half_open")
        return True

    def record(self, ok: bool) -> None:
        """Fold one request outcome in."""
        transition = None
        with self._lock:
            if ok:
                if self.state != "closed":
                    transition = "closed"
                self.state, self.failures = "closed", 0
            else:
                self.failures += 1
                if self.state == "half-open" or (
                        self.state == "closed"
                        and self.failures >= self.threshold):
                    self.state = "open"
                    self.opened_at = self.clock()
                    transition = "opened"
                elif self.state == "open":
                    self.opened_at = self.clock()
        self._note(transition)


class _NodeLink:
    """One remote node as the coordinator sees it: a persistent
    connection, health flags, a circuit breaker, and a lock serializing
    requests on it."""

    def __init__(self, address: str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ExecutionError(
                f"bad node address {address!r} (expected host:port)")
        self.address = address
        self.host, self.port = host, int(port)
        self.alive = True
        self.stale = False
        self.ever_connected = False
        self.incarnation = 0
        self.breaker = CircuitBreaker()
        self.sock: Optional[socket.socket] = None
        self.lock = threading.Lock()

    def request(self, message, timeout: float):
        """One request/response round trip under *timeout* (deadline for
        connect, send, and the full response)."""
        with self.lock:
            if self.sock is None:
                self.sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=min(_CONNECT_TIMEOUT, timeout))
                self.ever_connected = True
            self.sock.settimeout(timeout)
            send_frame(self.sock, message, site="coordinator.send")
            return recv_frame(self.sock, site="coordinator.recv")

    def reset(self) -> None:
        with self.lock:
            sock, self.sock = self.sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()


#: Lock contract, machine-checked by ``astore lint`` (lock-discipline):
#: the link list and the by-address map must stay coherent (the
#: duplicate-link race this caught: two concurrent runs folding the
#: same membership view could admit one address twice), and the counter
#: dict is bumped from scatter threads, the heartbeat thread, and the
#: breaker transition callback.  Per-link fields (``alive``/``stale``)
#: are deliberately lock-free flags: single-word reads whose staleness
#: only costs an extra retry, never correctness.
GUARDED_BY = {
    "RemoteShardBackend.links": "self._link_lock",
    "RemoteShardBackend._link_map": "self._link_lock",
    "RemoteShardBackend.counters": "self._counter_lock",
    # refcount rides under the shard-registry lock, same contract as
    # ProcessShardBackend.refs (release_shard_backend serves both)
    "RemoteShardBackend.refs": "_REGISTRY_LOCK",
}


class RemoteShardBackend:
    """Scatter a bound plan's shards over remote nodes; gather in order.

    Duck-compatible with :class:`~repro.engine.sharding.ProcessShardBackend`
    where the engine touches it (``run``/``retain``/``refs``/``close``/
    ``is_stale``), plus ``distributed = True`` so the engine passes a
    per-run *report* dict that lands in ``ExecutionStats``
    (``remote_retries`` / ``remote_reshards`` / ``remote_nodes_lost`` /
    ``remote_local_shards`` / ``remote_nodes_joined``).

    ``is_stale`` is always False: a mutation does not evict this
    backend — the next ``run`` broadcasts the new stamps (every node's
    lane then refuses pre-mutation serves, to this or any coordinator)
    and the affected shards execute locally on the coordinator's own,
    current copy.
    """

    distributed = True

    _plan_seq = _sharding.ProcessShardBackend._plan_seq  # one global lane

    def __init__(self, db, nodes: Sequence[str] = (), workers: int = 0,
                 node_timeout: float = 30.0, node_retries: int = 2,
                 retry_base: float = 0.05, heartbeat_seconds: float = 2.0,
                 membership=None, node_hedge: float = 0.0,
                 breaker_threshold: int = 3, breaker_reset: float = 2.0):
        if not nodes and membership is None:
            raise ExecutionError(
                "the remote backend needs node addresses "
                "(EngineOptions.remote_nodes / --nodes host:port,...) "
                "or a membership view")
        self.db = db
        self.membership = membership
        self.node_hedge = float(node_hedge)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset = float(breaker_reset)
        self.node_timeout = float(node_timeout)
        self.node_retries = max(0, int(node_retries))
        self.retry_base = float(retry_base)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.stamp = database_stamp(db)
        self.refs = 0
        self._registry_key = None  # release_shard_backend compatibility
        self._plan_pickles = {}  # id(plan) -> (seq, bytes); plans are cached
        self._memo_lock = threading.Lock()
        self._published: Optional[tuple] = None
        self._closed = threading.Event()
        self.counters: Dict[str, int] = {
            "retries": 0, "reshards": 0, "nodes_lost": 0,
            "local_shards": 0, "stale_refusals": 0, "heartbeats": 0,
            "nodes_joined": 0, "hedges": 0, "hedge_wins": 0,
            "breaker_opened": 0, "breaker_half_open": 0,
            "breaker_closed": 0}
        self._counter_lock = threading.Lock()
        self.links: List[_NodeLink] = []
        self._link_map: Dict[str, _NodeLink] = {}
        self._link_lock = threading.Lock()
        for address in nodes:
            self._add_link(address, joined=False)
        self._refresh_membership(None)
        # workers=2 is the floor for a membership view nobody has
        # joined yet: shards just degrade to local execution until the
        # first node registers
        self.workers = int(workers) or len(self.links) or 2
        self._heartbeat: Optional[threading.Thread] = None
        if self.heartbeat_seconds > 0:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop, name="astore-remote-heartbeat",
                daemon=True)
            self._heartbeat.start()

    # -- lifecycle (ProcessShardBackend-compatible) -------------------------

    def is_stale(self, db) -> bool:
        return False  # mutations degrade per-run; see class docstring

    def retain(self) -> "RemoteShardBackend":
        with _sharding._REGISTRY_LOCK:
            self.refs += 1
        return self

    def close(self) -> None:
        self._closed.set()
        with self._link_lock:
            links = list(self.links)
        for link in links:
            link.reset()

    def __enter__(self) -> "RemoteShardBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- counters -----------------------------------------------------------

    def _bump(self, key: str, amount: int,
              report: Optional[Dict[str, int]]) -> None:
        with self._counter_lock:
            self.counters[key] += amount
            if report is not None:
                report[key] = report.get(key, 0) + amount

    # -- membership ---------------------------------------------------------

    def _add_link(self, address: str, incarnation: int = 0,
                  joined: bool = True,
                  report: Optional[Dict[str, int]] = None) -> _NodeLink:
        link = _NodeLink(address)
        link.incarnation = incarnation
        link.breaker = self._new_breaker()
        with self._link_lock:
            existing = self._link_map.get(address)
            if existing is not None:
                # two runs refreshed membership concurrently: the first
                # admission wins; minting a second link for the same
                # address would split breaker/staleness state
                return existing
            self._link_map[address] = link
            self.links.append(link)
        if joined:
            self._bump("nodes_joined", 1, report)
        return link

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            self.breaker_threshold, self.breaker_reset,
            on_transition=lambda t: self._bump(f"breaker_{t}", 1, None))

    def _refresh_membership(
            self, report: Optional[Dict[str, int]]) -> None:
        """Fold the membership view into the link set: new registrations
        become links, re-registrations (incarnation bumps) resurrect
        links with fresh state, and a node membership still vouches for
        but this coordinator watched die is reactivated breaker-gated —
        it only takes traffic again through the half-open probe."""
        if self.membership is None:
            return
        for address, state, incarnation in self.membership.members():
            with self._link_lock:
                link = self._link_map.get(address)
            if link is None:
                if state != "dead":
                    self._add_link(address, incarnation, report=report)
                continue
            if incarnation > link.incarnation:
                # a genuine restart: new process on the old address —
                # fresh connection, fresh staleness, fresh breaker
                link.incarnation = incarnation
                link.reset()
                link.stale = False
                link.alive = True
                link.ever_connected = False
                link.breaker = self._new_breaker()
                self._bump("nodes_joined", 1, report)
            elif state != "dead" and not link.alive:
                link.alive = True  # breaker still gates admission

    # -- health -------------------------------------------------------------

    def alive_nodes(self) -> List[_NodeLink]:
        with self._link_lock:
            links = list(self.links)
        return [link for link in links
                if link.alive and not link.stale and link.breaker.admits()]

    def _mark_dead(self, link: _NodeLink,
                   report: Optional[Dict[str, int]]) -> None:
        if link.alive:
            link.alive = False
            link.reset()
            self._bump("nodes_lost", 1, report)

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self.heartbeat_seconds):
            with self._link_lock:
                links = list(self.links)
            for link in links:
                # only probe nodes we have actually spoken to: a node
                # still starting up must not be declared dead on sight
                if not link.alive or not link.ever_connected:
                    continue
                try:
                    response = link.request(
                        ("ping",), timeout=min(self.node_timeout, 2.0))
                    if response[0] != "pong":
                        raise ExecutionError(f"bad pong {response!r}")
                    self._bump("heartbeats", 1, None)
                except Exception:  # noqa: BLE001 - any failure = dead node
                    link.reset()
                    self._mark_dead(link, None)

    # -- stamps -------------------------------------------------------------

    def publish_stamps(self, report: Optional[Dict[str, int]] = None) -> None:
        """Broadcast the coordinator's current mutation stamps to every
        node's lane (the ``SharedQueryStore.publish_stamps`` protocol
        over the wire); idempotent per stamp value."""
        stamps = database_stamp(self.db)
        with self._link_lock:
            links = list(self.links)
        for link in links:
            if not link.alive:
                continue
            with contextlib.suppress(Exception):
                link.request(("stamps", stamps),
                             timeout=min(self.node_timeout, 5.0))
        self._published = stamps

    # -- scatter/gather -----------------------------------------------------

    def run(self, plan, nshards: Optional[int] = None,
            use_array: Optional[bool] = None,
            report: Optional[Dict[str, int]] = None) -> List[ShardOutcome]:
        """Run *plan* over ``nshards`` shards across the nodes; outcomes
        come back in shard order whatever happened along the way."""
        nshards = nshards or self.workers
        stamps = database_stamp(self.db)
        if stamps != self.stamp and stamps != self._published:
            # the coordinator's copy moved on: tell every lane before
            # any shard can be served stale, then let the stale checks
            # below route those shards to local execution
            self.publish_stamps(report)
        with self._memo_lock:
            memo = self._plan_pickles.get(id(plan))
            if memo is None or memo[2] is not plan:
                memo = (next(self._plan_seq),
                        pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL),
                        plan)
                self._plan_pickles[id(plan)] = memo
        seq, plan_bytes, _ = memo

        outcomes: List[Optional[ShardOutcome]] = [None] * nshards
        todo = list(range(nshards))
        wave = 0
        while todo:
            # a node that (re)registered since the last wave folds in
            # here: rejoin is just membership refresh + scatter
            self._refresh_membership(report)
            nodes = self.alive_nodes()
            if not nodes:
                if wave:
                    self._bump("reshards", len(todo), report)
                self._bump("local_shards", len(todo), report)
                for shard in todo:
                    outcomes[shard] = plan.run_shard(
                        self.db, shard, nshards, use_array)
                break
            if wave:
                self._bump("reshards", len(todo), report)
            assignment: Dict[_NodeLink, List[int]] = {}
            for position, shard in enumerate(todo):
                assignment.setdefault(
                    nodes[position % len(nodes)], []).append(shard)
            failed: List[int] = []
            failed_lock = threading.Lock()

            def scatter(link: _NodeLink, shards: List[int]) -> None:
                for position, shard in enumerate(shards):
                    message = ("run", plan_bytes, seq, shard, nshards,
                               use_array, stamps)
                    try:
                        outcome = self._request_shard_hedged(
                            link, message, report)
                    except _ShardRefused:
                        link.stale = True
                        self._bump("stale_refusals", 1, report)
                        with failed_lock:
                            failed.extend(shards[position:])
                        return
                    except _NodeLost:
                        with failed_lock:
                            failed.extend(shards[position:])
                        return
                    outcomes[shard] = outcome

            threads = [threading.Thread(target=scatter, args=item,
                                        name="astore-remote-scatter")
                       for item in assignment.items()]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            todo = sorted(failed)
            wave += 1
        return outcomes  # type: ignore[return-value]

    def _request_shard_hedged(self, link: _NodeLink, message,
                              report: Optional[Dict[str, int]]) -> ShardOutcome:
        """One shard with optional hedging: when the primary hasn't
        answered after ``node_hedge`` seconds, race the same shard on a
        second live node and take whichever answers first — shard
        outcomes are deterministic, so either answer is *the* answer.
        When nothing wins, the primary's own failure propagates so the
        scatter loop's stale/lost bookkeeping lands on the right link."""
        if self.node_hedge <= 0:
            return self._request_shard(link, message, report)
        results: "queue.Queue" = queue.Queue()

        def attempt(target: _NodeLink) -> None:
            try:
                results.put(
                    (target, "ok", self._request_shard(target, message,
                                                       report)))
            except BaseException as exc:  # noqa: BLE001 - relayed below
                results.put((target, "err", exc))

        threading.Thread(target=attempt, args=(link,), daemon=True,
                         name="astore-hedge-primary").start()
        launched = 1
        collected: List[tuple] = []
        try:
            collected.append(results.get(timeout=self.node_hedge))
        except queue.Empty:
            alternates = [alt for alt in self.alive_nodes()
                          if alt is not link]
            if alternates:
                self._bump("hedges", 1, report)
                threading.Thread(target=attempt, args=(alternates[0],),
                                 daemon=True,
                                 name="astore-hedge-secondary").start()
                launched += 1
        while True:
            for target, kind, value in collected:
                if kind == "ok":
                    if target is not link:
                        self._bump("hedge_wins", 1, report)
                    return value
            if len(collected) == launched:
                primary = next((entry for entry in collected
                                if entry[0] is link), collected[0])
                raise primary[2]
            collected.append(results.get())

    def _request_shard(self, link: _NodeLink, message,
                       report: Optional[Dict[str, int]]) -> ShardOutcome:
        """One shard on one node, under the deadline/retry policy."""
        delay = self.retry_base
        last: Optional[BaseException] = None
        for attempt in range(self.node_retries + 1):
            try:
                response = link.request(message, timeout=self.node_timeout)
                if not isinstance(response, tuple) or not response:
                    raise ExecutionError(
                        f"malformed node response {response!r}")
                if response[0] == "ok":
                    link.breaker.record(True)
                    return response[1]
                if response[0] == "stale":
                    # the node answered: healthy link, stale data
                    link.breaker.record(True)
                    raise _ShardRefused()
                # ("err", ...): node-side failure — retriable (a flaky
                # node re-shards away; a deterministic plan error
                # surfaces identically from the local fallback)
                raise ExecutionError(f"node {link.address}: {response[1]}")
            except _ShardRefused:
                raise
            except Exception as exc:  # noqa: BLE001 - every failure mode
                # (timeout, refused/torn connection, corrupt frame,
                # node-side error) takes the same retry path
                last = exc
                link.breaker.record(False)
                link.reset()
                if attempt < self.node_retries:
                    self._bump("retries", 1, report)
                    time.sleep(delay * (1.0 + 0.25 * random.random()))
                    delay *= 2
        self._mark_dead(link, report)
        raise _NodeLost(f"node {link.address} lost after "
                        f"{self.node_retries + 1} attempts: {last}")


def acquire_remote_backend(db, options) -> RemoteShardBackend:
    """The engine's checkout hook (mirrors ``acquire_shard_backend``):
    a coordinator configured from *options*, first reference taken.
    ``options.membership`` (a membership server address) replaces the
    static node list with a live view."""
    membership = None
    if getattr(options, "membership", ""):
        from .membership import MembershipClient

        membership = MembershipClient(options.membership)
    backend = RemoteShardBackend(
        db, options.remote_nodes,
        # workers=1 is the engine default, not a request for one shard:
        # spread over the nodes unless the caller asked for more
        workers=options.workers if options.workers > 1 else 0,
        node_timeout=options.node_timeout,
        node_retries=options.node_retries,
        membership=membership,
        node_hedge=getattr(options, "node_hedge", 0.0),
        breaker_threshold=getattr(options, "breaker_threshold", 3),
        breaker_reset=getattr(options, "breaker_reset", 2.0))
    backend.retain()
    return backend


def start_local_nodes(database_path: str, count: int = 2,
                      chaos: Optional[Sequence[str]] = None,
                      membership: str = "") -> LocalNodes:
    """Spawn *count* local shard nodes over *database_path*."""
    return LocalNodes(database_path, count=count, chaos=chaos,
                      membership=membership)

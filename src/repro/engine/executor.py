"""The AIRScan executor: A-Store's generic SPJGA query processor.

Every query runs the paper's three-phase model over the virtual universal
table (Section 3):

1. **Leaf processing** — evaluate dimension predicates once, producing
   packed predicate vectors, and build group vectors for GROUP BY columns
   on dimensions (Sections 4.2, 4.3);
2. **Scan and filter** — scan the root (fact) table with a selection
   vector, evaluating predicates in increasing-selectivity order; dimension
   predicates are answered by probing the predicate vectors through the
   AIR columns (or by direct AIR probing when the optimizer chose not to
   build a filter); group codes are combined into the Measure Index;
3. **Aggregation** — scan the measure columns at the selected positions
   only and scatter into the multidimensional aggregation array (or the
   hash fallback); sort for ORDER BY at the end.

The five query-processor variants of the paper's Table 6 are exposed as
:data:`VARIANTS` — configuration presets over the same executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Bitmap, Database, SelectionVector
from ..errors import ExecutionError
from ..plan.binder import LogicalPlan, bind
from ..plan.expressions import BoundColumn, BoundExpression, bound_columns
from ..plan.optimizer import CacheModel, PhysicalPlan, optimize
from .aggregate import (
    AggregationState,
    array_aggregate,
    finalize,
    hash_aggregate,
)
from .expression import evaluate_measure, evaluate_predicate
from .grouping import (
    GroupAxis,
    build_axes,
    single_axis,
    combine_codes,
    decode_group_columns,
    total_groups,
)
from .orderby import sort_indices, top_k_indices
from .result import ExecutionStats, QueryResult
from .slice import (
    ArraySlice,
    PositionalProvider,
    dimension_provider,
    universal_provider,
)


@dataclass(frozen=True)
class EngineOptions:
    """Executor configuration (one row of the paper's Table 6).

    * ``scan`` — ``"column"`` for vector-based column-wise scan,
      ``"row"`` for chunked row-wise scan (full-tuple materialization);
    * ``use_predicate_filter`` — build packed predicate vectors for
      dimension predicates (Section 4.2);
    * ``use_array_aggregation`` — ``True``/``False``/``"auto"`` (the
      cache-model decision of Section 4.3);
    * ``workers`` — horizontal fact-table partitions processed
      independently and merged (Section 5); 1 = serial;
    * ``parallel_backend`` — ``"thread"`` or ``"serial"`` partition loop.
    """

    scan: str = "column"
    use_predicate_filter: bool = True
    use_array_aggregation: object = "auto"
    cache: CacheModel = field(default_factory=CacheModel)
    workers: int = 1
    parallel_backend: str = "thread"
    chunk_rows: int = 65536
    sample_size: int = 4096
    variant_name: str = "AIRScan_C_P_G"


#: The five query processors of the paper's Table 6.
VARIANTS: Dict[str, EngineOptions] = {
    "AIRScan_R": EngineOptions(
        scan="row", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_R"),
    "AIRScan_R_P": EngineOptions(
        scan="row", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_R_P"),
    "AIRScan_C": EngineOptions(
        scan="column", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_C"),
    "AIRScan_C_P": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_C_P"),
    "AIRScan_C_P_G": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation="auto",
        variant_name="AIRScan_C_P_G"),
}


class PredicateFilter:
    """A dimension predicate vector (Section 4.2).

    Stores both the packed bit vector (whose size drives the optimizer's
    fit-in-cache decision and the paper's LLC argument) and the unpacked
    boolean array used for the actual probe — a probe is then a single
    positional gather, ``mask[air_positions]``.
    """

    __slots__ = ("packed", "_mask")

    def __init__(self, mask: np.ndarray):
        self._mask = np.ascontiguousarray(mask, dtype=bool)
        self.packed = Bitmap.from_bool_array(self._mask)

    def probe(self, positions: np.ndarray) -> np.ndarray:
        """Which of the given dimension positions pass the predicate."""
        return self._mask[positions]

    @property
    def density(self) -> float:
        """Fraction of dimension rows passing (probe selectivity)."""
        return float(self._mask.mean()) if len(self._mask) else 0.0

    @property
    def nbytes(self) -> int:
        """Packed size — what must stay cache-resident."""
        return self.packed.nbytes


@dataclass
class _LeafState:
    """Outcome of the leaf-processing stage."""

    filters: Dict[str, PredicateFilter] = field(default_factory=dict)
    filter_density: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, BoundExpression] = field(default_factory=dict)
    probe_selectivity: Dict[str, float] = field(default_factory=dict)
    axes: List[GroupAxis] = field(default_factory=list)


class AStoreEngine:
    """A-Store's OLAP engine over a loaded (airified) database."""

    def __init__(self, db: Database, options: Optional[EngineOptions] = None):
        self.db = db
        self.options = options or EngineOptions()

    @classmethod
    def variant(cls, db: Database, name: str, **overrides) -> "AStoreEngine":
        """An engine configured as one of the paper's Table 6 variants."""
        if name not in VARIANTS:
            raise ExecutionError(
                f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
            )
        options = VARIANTS[name]
        if overrides:
            options = replace(options, **overrides)
        return cls(db, options)

    # -- planning ---------------------------------------------------------

    def plan(self, query) -> PhysicalPlan:
        """Bind and optimize a SQL string (or parsed statement)."""
        logical = bind(query, self.db)
        return optimize(
            logical, self.db,
            cache=self.options.cache,
            use_predicate_filter=self.options.use_predicate_filter,
            array_agg=self.options.use_array_aggregation,
            sample_size=self.options.sample_size,
        )

    def explain(self, query) -> str:
        """The optimizer's plan description for *query*."""
        return self.plan(query).explain()

    # -- execution ----------------------------------------------------------

    def query(self, query, snapshot: Optional[int] = None) -> QueryResult:
        """Plan and execute *query*; see :meth:`execute`."""
        return self.execute(self.plan(query), snapshot=snapshot)

    def execute(self, physical: PhysicalPlan,
                snapshot: Optional[int] = None) -> QueryResult:
        """Run a physical plan, optionally against an MVCC *snapshot*."""
        t_total = time.perf_counter()
        logical = physical.logical
        stats = ExecutionStats(variant=self.options.variant_name)
        for dd in physical.dim_decisions:
            stats.filter_modes[dd.first_dim] = (
                "vector" if dd.use_filter else "probe"
            )

        t0 = time.perf_counter()
        leaf = self._leaf_stage(physical, snapshot)
        stats.leaf_seconds = time.perf_counter() - t0

        base = self._base_positions(logical.root, snapshot)
        stats.rows_scanned = len(base)

        if logical.is_projection:
            result = self._execute_projection(physical, leaf, base, stats)
        elif self.options.scan == "row":
            result = self._execute_row_scan(physical, leaf, base, stats)
        else:
            result = self._execute_column_scan(physical, leaf, base, stats)
        stats.total_seconds = time.perf_counter() - t_total
        return result

    # -- stage 1: leaf processing ------------------------------------------------

    def _leaf_stage(self, physical: PhysicalPlan,
                    snapshot: Optional[int]) -> _LeafState:
        logical = physical.logical
        leaf = _LeafState()
        for dd in physical.dim_decisions:
            if not dd.use_filter:
                leaf.probes[dd.first_dim] = dd.predicate
                leaf.probe_selectivity[dd.first_dim] = dd.estimated_selectivity
                continue
            provider = dimension_provider(self.db, dd.first_dim, logical.paths)
            mask = evaluate_predicate(dd.predicate, provider)
            dim = self.db.table(dd.first_dim)
            if snapshot is not None or dim.has_deletes:
                mask = mask & dim.live_mask(snapshot)
            pf = PredicateFilter(mask)
            leaf.filters[dd.first_dim] = pf
            leaf.filter_density[dd.first_dim] = pf.density
        if logical.group_keys and not logical.is_projection:
            leaf.axes = build_axes(self.db, logical)
        return leaf

    def _base_positions(self, root: str, snapshot: Optional[int]) -> np.ndarray:
        table = self.db.table(root)
        if snapshot is not None or table.has_deletes:
            return np.flatnonzero(table.live_mask(snapshot)).astype(np.int64)
        return np.arange(table.num_rows, dtype=np.int64)

    # -- stage 2: scan and filter ---------------------------------------------

    def _selection_steps(self, physical: PhysicalPlan,
                         leaf: _LeafState) -> List[tuple]:
        """All filtering steps, ordered by estimated selectivity."""
        steps = []
        for expr, sel in physical.fact_conjuncts:
            steps.append((sel, "fact", expr))
        for first_dim, pf in leaf.filters.items():
            steps.append((leaf.filter_density[first_dim], "filter",
                          (first_dim, pf)))
        for first_dim, predicate in leaf.probes.items():
            steps.append((leaf.probe_selectivity[first_dim], "probe",
                          predicate))
        steps.sort(key=lambda s: s[0])
        return steps

    def _scan_select(self, physical: PhysicalPlan, leaf: _LeafState,
                     base: np.ndarray) -> np.ndarray:
        """Vector-based column-wise scan: shrink the selection vector."""
        logical = physical.logical
        nrows = self.db.table(logical.root).num_rows
        sel = SelectionVector(base, nrows)
        for _, kind, payload in self._selection_steps(physical, leaf):
            if len(sel) == 0:
                break
            provider = universal_provider(
                self.db, logical.root, logical.paths, sel.positions)
            if kind == "fact":
                mask = evaluate_predicate(payload, provider)
            elif kind == "filter":
                first_dim, pf = payload
                mask = pf.probe(provider.positions_for(first_dim))
            else:  # probe: evaluate on dimension columns through AIR
                mask = evaluate_predicate(payload, provider)
            sel = sel.refine(mask)
        return sel.positions

    # -- stages 2b+3: grouping and aggregation for one partition -----------------

    def _scan_partition(self, physical: PhysicalPlan, leaf: _LeafState,
                        base: np.ndarray) -> tuple:
        """Scan-and-filter plus Measure Index for one fact partition."""
        logical = physical.logical
        t0 = time.perf_counter()
        selected = self._scan_select(physical, leaf, base)
        provider = universal_provider(
            self.db, logical.root, logical.paths, selected)
        cards = [axis.card for axis in leaf.axes]
        if leaf.axes:
            codes = [axis.fact_codes(provider) for axis in leaf.axes]
            composite = combine_codes(codes, cards)
        else:
            composite = np.zeros(len(selected), dtype=np.int64)
        return provider, composite, time.perf_counter() - t0

    def _aggregate_scanned(self, physical: PhysicalPlan, leaf: _LeafState,
                           scanned: tuple, use_array: bool) -> tuple:
        """Measure-column aggregation for one scanned partition."""
        logical = physical.logical
        provider, composite, _ = scanned
        t1 = time.perf_counter()
        measures = self._evaluate_measures(logical, provider)
        if use_array or not leaf.axes:
            cards = [axis.card for axis in leaf.axes]
            ngroups = total_groups(cards) if leaf.axes else 1
            state = array_aggregate(logical.aggregates, measures,
                                    composite, ngroups)
        else:
            state = hash_aggregate(logical.aggregates, measures, composite)
        return state, time.perf_counter() - t1

    def _evaluate_measures(self, logical: LogicalPlan,
                           provider: PositionalProvider) -> Dict[str, np.ndarray]:
        measures = {}
        for spec in logical.aggregates:
            if spec.expr is not None:
                measures[spec.name] = evaluate_measure(spec.expr, provider)
        return measures

    # -- column-wise execution ---------------------------------------------------

    def _execute_column_scan(self, physical: PhysicalPlan, leaf: _LeafState,
                             base: np.ndarray, stats: ExecutionStats) -> QueryResult:
        partitions = self._partition(base)
        scanned = self._run_partitions(
            partitions,
            lambda part: self._scan_partition(physical, leaf, part),
        )
        total_selected = 0
        for provider, _, t_scan in scanned:
            total_selected += provider.length
            stats.scan_seconds += t_scan
        stats.rows_selected = total_selected

        # Section 4.3's sparsity check, made with the *actual* selection
        # size: the dense array is only worthwhile when it is not hugely
        # larger than the number of tuples feeding it.
        use_array = bool(physical.use_array_agg and leaf.axes)
        if use_array:
            ngroups = total_groups([axis.card for axis in leaf.axes])
            use_array = ngroups <= max(4096, 8 * total_selected)
        stats.used_array_aggregation = use_array or not leaf.axes

        outcomes = self._run_partitions(
            scanned,
            lambda part: self._aggregate_scanned(physical, leaf, part,
                                                 use_array),
        )
        state: Optional[AggregationState] = None
        for part_state, t_agg in outcomes:
            stats.aggregation_seconds += t_agg
            state = part_state if state is None else state.merge(part_state)
        return self._assemble(physical, leaf, state, stats)

    def _partition(self, base: np.ndarray) -> List[np.ndarray]:
        workers = max(1, self.options.workers)
        if workers == 1 or len(base) < workers:
            return [base]
        return [chunk for chunk in np.array_split(base, workers)
                if len(chunk)]

    def _run_partitions(self, partitions, fn):
        if len(partitions) == 1 or self.options.parallel_backend == "serial":
            return [fn(part) for part in partitions]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=len(partitions)) as pool:
            return list(pool.map(fn, partitions))

    # -- row-wise execution -----------------------------------------------------

    def _execute_row_scan(self, physical: PhysicalPlan, leaf: _LeafState,
                          base: np.ndarray, stats: ExecutionStats) -> QueryResult:
        """Chunked row-wise scan: materialize the full tuple, then filter.

        Every referenced column — including dimension attributes reached
        through AIR — is fetched for *every* row of the chunk before any
        predicate is applied.  This reproduces the cost profile of
        tuple-at-a-time processing (no selection-vector skipping) without
        a per-row interpreter loop.
        """
        logical = physical.logical
        needed = self._referenced_columns(physical, leaf)
        group_values: List[List[np.ndarray]] = [
            [] for _ in logical.group_keys]
        measure_values: Dict[str, List[np.ndarray]] = {
            spec.name: [] for spec in logical.aggregates if spec.expr is not None
        }
        predicates = [expr for expr, _ in physical.fact_conjuncts]
        predicates += list(leaf.probes.values())

        for start in range(0, len(base), self.options.chunk_rows):
            chunk = base[start: start + self.options.chunk_rows]
            t0 = time.perf_counter()
            provider = universal_provider(
                self.db, logical.root, logical.paths, chunk)
            materialized = {
                column: provider.fetch(column.table, column.name).decode()
                for column in needed
            }
            mprov = _MaterializedProvider(materialized)
            mask = np.ones(len(chunk), dtype=bool)
            for expr in predicates:
                mask &= evaluate_predicate(expr, mprov)
            for first_dim, pf in leaf.filters.items():
                mask &= pf.probe(provider.positions_for(first_dim))
            stats.scan_seconds += time.perf_counter() - t0

            t1 = time.perf_counter()
            passing = _MaterializedProvider(
                {column: values[mask] for column, values in materialized.items()}
            )
            for i, key in enumerate(logical.group_keys):
                group_values[i].append(
                    passing.fetch(key.column.table, key.column.name).decode()
                )
            for spec in logical.aggregates:
                if spec.expr is not None:
                    measure_values[spec.name].append(
                        evaluate_measure(spec.expr, passing))
            stats.rows_selected += int(mask.sum())
            stats.aggregation_seconds += time.perf_counter() - t1

        t2 = time.perf_counter()
        axes: List[GroupAxis] = []
        codes: List[np.ndarray] = []
        for i, key in enumerate(logical.group_keys):
            values = (np.concatenate(group_values[i]) if group_values[i]
                      else np.empty(0, dtype=object))
            uniq, inverse = np.unique(values, return_inverse=True)
            axes.append(single_axis(key, len(uniq), uniq))
            codes.append(inverse.astype(np.int64))
        measures = {
            name: (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.float64))
            for name, chunks in measure_values.items()
        }
        if axes:
            composite = combine_codes(codes, [a.card for a in axes])
            state = hash_aggregate(logical.aggregates, measures, composite)
        else:
            composite = np.zeros(stats.rows_selected, dtype=np.int64)
            state = array_aggregate(logical.aggregates, measures, composite, 1)
        stats.used_array_aggregation = not axes
        stats.aggregation_seconds += time.perf_counter() - t2
        leaf_row = _LeafState(axes=axes)
        return self._assemble(physical, leaf_row, state, stats)

    def _referenced_columns(self, physical: PhysicalPlan,
                            leaf: _LeafState) -> List[BoundColumn]:
        logical = physical.logical
        needed: List[BoundColumn] = []
        seen = set()

        def add(expr):
            for column in bound_columns(expr):
                if column not in seen:
                    seen.add(column)
                    needed.append(column)

        for expr, _ in physical.fact_conjuncts:
            add(expr)
        for predicate in leaf.probes.values():
            add(predicate)
        for key in logical.group_keys:
            add(key.column)
        for spec in logical.aggregates:
            if spec.expr is not None:
                add(spec.expr)
        for key in logical.projection_columns:
            add(key.column)
        return needed

    # -- projection (pure SPJ) ----------------------------------------------------

    def _execute_projection(self, physical: PhysicalPlan, leaf: _LeafState,
                            base: np.ndarray, stats: ExecutionStats) -> QueryResult:
        logical = physical.logical
        t0 = time.perf_counter()
        selected = self._scan_select(physical, leaf, base)
        stats.rows_selected = len(selected)
        stats.scan_seconds = time.perf_counter() - t0
        provider = universal_provider(
            self.db, logical.root, logical.paths, selected)
        columns = {
            key.name: provider.fetch(key.column.table, key.column.name).decode()
            for key in logical.projection_columns
        }
        stats.groups = len(selected)
        return self._finish(logical, columns, stats)

    # -- result assembly -----------------------------------------------------------

    def _assemble(self, physical: PhysicalPlan, leaf: _LeafState,
                  state: Optional[AggregationState],
                  stats: ExecutionStats) -> QueryResult:
        logical = physical.logical
        if state is None:
            raise ExecutionError("no aggregation state produced")
        ids, aggs = finalize(state)
        if not logical.group_keys and len(ids) == 0:
            # scalar aggregate over an empty selection: one all-zero row
            ids = np.zeros(1, dtype=np.int64)
            aggs = {spec.name: _empty_scalar(spec.func)
                    for spec in logical.aggregates}
        columns: Dict[str, np.ndarray] = {}
        if leaf.axes:
            columns.update(decode_group_columns(leaf.axes, ids))
        columns.update(aggs)
        stats.groups = len(ids)
        return self._finish(logical, columns, stats)

    def _finish(self, logical: LogicalPlan, columns: Dict[str, np.ndarray],
                stats: ExecutionStats) -> QueryResult:
        ordered = {name: columns[name] for name in logical.output_order}
        nrows = len(next(iter(ordered.values()), []))
        if logical.order_by and nrows > 1:
            if logical.limit is not None and logical.limit < nrows:
                perm = top_k_indices(ordered, logical.order_by,
                                     logical.limit)
            else:
                perm = sort_indices(ordered, logical.order_by)
            ordered = {name: values[perm] for name, values in ordered.items()}
        if logical.limit is not None:
            ordered = {name: values[: logical.limit]
                       for name, values in ordered.items()}
        return QueryResult(logical.output_order, ordered, stats)


def _empty_scalar(func: str) -> np.ndarray:
    if func == "COUNT":
        return np.zeros(1, dtype=np.int64)
    if func in ("SUM",):
        return np.zeros(1, dtype=np.int64)
    return np.array([np.nan])


class _MaterializedProvider:
    """Provider over already-materialized (decoded) column arrays."""

    def __init__(self, columns: Dict[BoundColumn, np.ndarray]):
        self._columns = columns

    def fetch(self, table: str, name: str) -> ArraySlice:
        try:
            return ArraySlice(self._columns[BoundColumn(table, name)])
        except KeyError:
            raise ExecutionError(
                f"column {table}.{name} was not materialized"
            ) from None

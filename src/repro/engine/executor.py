"""The AIRScan executor: binding and dispatch over the operator pipeline.

Queries run the paper's three-phase model (Section 3), but each phase is
now expressed with the shared physical layer of
:mod:`repro.engine.operators` instead of a hand-threaded loop:

1. **Leaf processing** — :meth:`AStoreEngine._bind_leaf` evaluates
   dimension predicates once into packed :class:`PredicateFilter`
   vectors and builds the group axes (Sections 4.2, 4.3);
2. **Scan and filter** — the optimizer's ``PhysicalPlan.pipeline`` DAG
   is rewritten for the engine variant (row- vs column-wise, deferred
   vs short-circuiting filters), bound to concrete operators, and driven
   over horizontal fact-table morsels by the
   :class:`~repro.engine.operators.MorselDispatcher`;
3. **Aggregation** — per-morsel partial aggregation states merge
   element-wise; ORDER BY/LIMIT run during result assembly.

The five query-processor variants of the paper's Table 6 are exposed as
:data:`VARIANTS` — each is a different *DAG rewrite* over the same
operators (see :func:`rewrite_for_options`), so the comparison isolates
the execution-model differences, not separate code paths.  The same
operators power the Section 6 baselines (:mod:`repro.baselines.engines`).

The executor itself only binds plans, constructs DAGs, and assembles
results; all scanning, probing, and aggregating lives in the operators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Database
from ..errors import ExecutionError
from ..plan.binder import LogicalPlan, bind
from ..plan.expressions import BoundColumn, BoundExpression, bound_columns
from ..plan.optimizer import CacheModel, OpSpec, PhysicalPlan, optimize
from .aggregate import AggregationState, finalize
from .grouping import GroupAxis, build_axes, decode_group_columns, total_groups
from .operators import (
    Aggregate,
    AIRProbe,
    ApplyMask,
    Filter,
    FilterLike,
    GroupCombine,
    MaterializeColumns,
    Morsel,
    MorselDispatcher,
    Operator,
    PredicateFilter,
    Project,
    ValueGather,
    merge_timings,
    value_grouping,
)
from .orderby import sort_indices, top_k_indices
from .result import ExecutionStats, QueryResult
from .slice import dimension_provider, universal_provider
from .expression import evaluate_predicate


@dataclass(frozen=True)
class EngineOptions:
    """Executor configuration (one row of the paper's Table 6).

    * ``scan`` — ``"column"`` for vector-based column-wise scan,
      ``"row"`` for chunked row-wise scan (full-tuple materialization);
    * ``use_predicate_filter`` — build packed predicate vectors for
      dimension predicates (Section 4.2);
    * ``use_array_aggregation`` — ``True``/``False``/``"auto"`` (the
      cache-model decision of Section 4.3);
    * ``workers`` — horizontal fact-table partitions processed
      independently and merged (Section 5); 1 = serial;
    * ``parallel_backend`` — a :data:`repro.engine.operators.BACKENDS`
      name (``"thread"`` or ``"serial"`` today);
    * ``morsel_rows`` — split each column-scan partition into fixed-size
      morsels (0 = one morsel per partition, the paper's layout);
    * ``chunk_rows`` — block size of the row-wise scan variants.
    """

    scan: str = "column"
    use_predicate_filter: bool = True
    use_array_aggregation: object = "auto"
    cache: CacheModel = field(default_factory=CacheModel)
    workers: int = 1
    parallel_backend: str = "thread"
    morsel_rows: int = 0
    chunk_rows: int = 65536
    sample_size: int = 4096
    variant_name: str = "AIRScan_C_P_G"


#: The five query processors of the paper's Table 6.
VARIANTS: Dict[str, EngineOptions] = {
    "AIRScan_R": EngineOptions(
        scan="row", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_R"),
    "AIRScan_R_P": EngineOptions(
        scan="row", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_R_P"),
    "AIRScan_C": EngineOptions(
        scan="column", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_C"),
    "AIRScan_C_P": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_C_P"),
    "AIRScan_C_P_G": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation="auto",
        variant_name="AIRScan_C_P_G"),
}


@dataclass
class _LeafState:
    """Outcome of the leaf-processing stage."""

    filters: Dict[str, PredicateFilter] = field(default_factory=dict)
    filter_density: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, BoundExpression] = field(default_factory=dict)
    probe_selectivity: Dict[str, float] = field(default_factory=dict)
    axes: List[GroupAxis] = field(default_factory=list)


# -- variant DAG rewrites -----------------------------------------------------


def rewrite_for_options(pipeline: Sequence[OpSpec], options: EngineOptions,
                        logical: LogicalPlan) -> Tuple[OpSpec, ...]:
    """Rewrite the optimizer's operator DAG for an engine variant.

    The column-wise variants run the plan as emitted.  The row-wise
    variants (``AIRScan_R*``) rewrite the DAG into full-tuple form:
    a ``materialize`` node is inserted after the scan, every filter-like
    node is marked ``defer`` (each predicate sees every row of the
    block; a single ``apply-mask`` shrinks afterwards), and
    grouping/aggregation turn into value-based ``gather`` +
    ``value-aggregate`` nodes, since without group vectors the row
    engine groups on observed values.
    """
    if options.scan != "row" or logical.is_projection:
        return tuple(pipeline)
    specs: List[OpSpec] = []
    for spec in pipeline:
        if spec.op == "scan":
            specs.append(replace_spec(spec, detail=f"{spec.detail}:row"))
            specs.append(OpSpec("materialize", "referenced columns"))
        elif spec.op in ("filter", "air-probe"):
            specs.append(replace_spec(spec, detail=f"{spec.detail}:defer"))
        elif spec.op == "group-combine":
            specs.append(OpSpec("gather", spec.detail))
        elif spec.op == "aggregate":
            if not any(s.op == "gather" for s in specs):
                specs.append(OpSpec("gather", ""))
            specs.append(OpSpec("value-aggregate", "hash",
                                payload=spec.payload))
        else:
            specs.append(spec)
    # the deferred masks are applied once, before gathering
    gather_at = next(i for i, s in enumerate(specs) if s.op == "gather")
    specs.insert(gather_at, OpSpec("apply-mask"))
    return tuple(specs)


def replace_spec(spec: OpSpec, **changes) -> OpSpec:
    """A copy of *spec* with the given fields replaced."""
    return replace(spec, **changes)


class AStoreEngine:
    """A-Store's OLAP engine over a loaded (airified) database."""

    def __init__(self, db: Database, options: Optional[EngineOptions] = None):
        self.db = db
        self.options = options or EngineOptions()

    @classmethod
    def variant(cls, db: Database, name: str, **overrides) -> "AStoreEngine":
        """An engine configured as one of the paper's Table 6 variants."""
        if name not in VARIANTS:
            raise ExecutionError(
                f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
            )
        options = VARIANTS[name]
        if overrides:
            options = replace(options, **overrides)
        return cls(db, options)

    # -- planning ---------------------------------------------------------

    def plan(self, query) -> PhysicalPlan:
        """Bind and optimize a SQL string (or parsed statement)."""
        logical = bind(query, self.db)
        return optimize(
            logical, self.db,
            cache=self.options.cache,
            use_predicate_filter=self.options.use_predicate_filter,
            array_agg=self.options.use_array_aggregation,
            sample_size=self.options.sample_size,
        )

    def explain(self, query) -> str:
        """The optimizer's plan, with this variant's DAG rewrite applied."""
        physical = self.plan(query)
        rewritten = rewrite_for_options(
            physical.pipeline, self.options, physical.logical)
        if rewritten == physical.pipeline:
            return physical.explain()
        text = physical.explain()
        lines = [f"variant {self.options.variant_name} rewrites pipeline to:"]
        for i, spec in enumerate(rewritten):
            arrow = "   " if i == 0 else " ->"
            lines.append(f" {arrow} {spec.render()}")
        return text + "\n" + "\n".join(lines)

    # -- execution ----------------------------------------------------------

    def query(self, query, snapshot: Optional[int] = None) -> QueryResult:
        """Plan and execute *query*; see :meth:`execute`."""
        return self.execute(self.plan(query), snapshot=snapshot)

    def execute(self, physical: PhysicalPlan,
                snapshot: Optional[int] = None) -> QueryResult:
        """Run a physical plan, optionally against an MVCC *snapshot*."""
        t_total = time.perf_counter()
        logical = physical.logical
        stats = ExecutionStats(variant=self.options.variant_name)
        for dd in physical.dim_decisions:
            stats.filter_modes[dd.first_dim] = (
                "vector" if dd.use_filter else "probe"
            )

        t0 = time.perf_counter()
        leaf = self._bind_leaf(physical, snapshot)
        stats.leaf_seconds = time.perf_counter() - t0

        base = self._base_positions(logical.root, snapshot)
        stats.rows_scanned = len(base)

        specs = rewrite_for_options(physical.pipeline, self.options, logical)
        if logical.is_projection:
            result = self._run_projection(physical, specs, leaf, base, stats)
        elif self.options.scan == "row":
            result = self._run_row_scan(physical, specs, leaf, base, stats)
        else:
            result = self._run_column_scan(physical, specs, leaf, base, stats)
        stats.total_seconds = time.perf_counter() - t_total
        return result

    # -- stage 1: leaf processing (binding) ----------------------------------

    def _bind_leaf(self, physical: PhysicalPlan,
                   snapshot: Optional[int]) -> _LeafState:
        """Evaluate dimension predicates and build group axes once."""
        logical = physical.logical
        leaf = _LeafState()
        for dd in physical.dim_decisions:
            if not dd.use_filter:
                leaf.probes[dd.first_dim] = dd.predicate
                leaf.probe_selectivity[dd.first_dim] = dd.estimated_selectivity
                continue
            provider = dimension_provider(self.db, dd.first_dim, logical.paths)
            mask = evaluate_predicate(dd.predicate, provider)
            dim = self.db.table(dd.first_dim)
            if snapshot is not None or dim.has_deletes:
                mask = mask & dim.live_mask(snapshot)
            pf = PredicateFilter(mask)
            leaf.filters[dd.first_dim] = pf
            leaf.filter_density[dd.first_dim] = pf.density
        if logical.group_keys and not logical.is_projection:
            leaf.axes = build_axes(self.db, logical)
        return leaf

    def _base_positions(self, root: str, snapshot: Optional[int]) -> np.ndarray:
        table = self.db.table(root)
        if snapshot is not None or table.has_deletes:
            return np.flatnonzero(table.live_mask(snapshot)).astype(np.int64)
        return np.arange(table.num_rows, dtype=np.int64)

    def _morsel(self, logical: LogicalPlan, positions: np.ndarray) -> Morsel:
        return Morsel(positions, universal_provider(
            self.db, logical.root, logical.paths, positions))

    # -- DAG binding ----------------------------------------------------------

    def _bind_filter_ops(self, specs: Sequence[OpSpec], leaf: _LeafState,
                         defer: bool = False) -> List[FilterLike]:
        """Bind the filter-like DAG nodes, ordered by runtime selectivity.

        The plan orders filters by *estimated* selectivity; once the
        predicate vectors exist their exact density is known, so the
        bound operators are re-sorted on the refreshed numbers (stable,
        like the plan order).
        """
        ops: List[FilterLike] = []
        for spec in specs:
            if spec.op == "filter":
                ops.append(Filter(spec.payload, selectivity=spec.selectivity,
                                  defer=defer))
            elif spec.op == "air-probe":
                dd = spec.payload
                if dd.first_dim in leaf.filters:
                    ops.append(AIRProbe(
                        dd.first_dim, "vector", leaf.filters[dd.first_dim],
                        selectivity=leaf.filter_density[dd.first_dim],
                        defer=defer))
                else:
                    ops.append(AIRProbe(
                        dd.first_dim, "predicate", leaf.probes[dd.first_dim],
                        selectivity=leaf.probe_selectivity[dd.first_dim],
                        defer=defer))
        ops.sort(key=lambda op: op.selectivity)
        return ops

    # -- column-wise execution ------------------------------------------------

    def _run_column_scan(self, physical: PhysicalPlan,
                         specs: Sequence[OpSpec], leaf: _LeafState,
                         base: np.ndarray, stats: ExecutionStats) -> QueryResult:
        logical = physical.logical
        dispatcher = MorselDispatcher(self.options.parallel_backend)
        morsels = [
            self._morsel(logical, chunk)
            for part in dispatcher.partition(base, self.options.workers)
            for chunk in dispatcher.chunk(part, self.options.morsel_rows)
        ]
        stats.morsels = len(morsels)

        def scan_pipeline() -> List[Operator]:
            return [*self._bind_filter_ops(specs, leaf),
                    GroupCombine(leaf.axes)]

        scanned = dispatcher.run(morsels, scan_pipeline)
        merge_timings(stats, scanned)
        total_selected = 0
        for result in scanned:
            total_selected += len(result.morsel)
            stats.scan_seconds += result.seconds
        stats.rows_selected = total_selected

        # Section 4.3's sparsity check, made with the *actual* selection
        # size: the dense array is only worthwhile when it is not hugely
        # larger than the number of tuples feeding it.
        use_array = bool(physical.use_array_agg and leaf.axes)
        if use_array:
            ngroups = total_groups([axis.card for axis in leaf.axes])
            use_array = ngroups <= max(4096, 8 * total_selected)
        stats.used_array_aggregation = use_array or not leaf.axes

        cards = [axis.card for axis in leaf.axes]
        ngroups = total_groups(cards) if leaf.axes else 1

        def agg_pipeline() -> List[Operator]:
            return [Aggregate(logical.aggregates, ngroups,
                              use_array or not leaf.axes)]

        outcomes = dispatcher.run([r.morsel for r in scanned], agg_pipeline)
        merge_timings(stats, outcomes)
        state: Optional[AggregationState] = None
        for result in outcomes:
            stats.aggregation_seconds += result.seconds
            for partial in result.finishes.values():
                state = partial if state is None else state.merge(partial)
        return self._assemble(physical, leaf, state, stats)

    # -- row-wise execution ---------------------------------------------------

    def _run_row_scan(self, physical: PhysicalPlan, specs: Sequence[OpSpec],
                      leaf: _LeafState, base: np.ndarray,
                      stats: ExecutionStats) -> QueryResult:
        """Chunked row-wise scan: materialize the full tuple, then filter.

        Every referenced column — including dimension attributes reached
        through AIR — is fetched for *every* row of the chunk before any
        predicate is applied (the ``materialize`` + ``defer`` DAG
        rewrite), reproducing tuple-at-a-time cost without a per-row
        interpreter loop.
        """
        logical = physical.logical
        dispatcher = MorselDispatcher("serial")
        morsels = [self._morsel(logical, chunk) for chunk in
                   dispatcher.chunk(base, self.options.chunk_rows)]
        stats.morsels = len(morsels)
        needed = self._referenced_columns(physical, leaf)

        def pipeline() -> List[Operator]:
            ops: List[Operator] = [MaterializeColumns(needed)]
            ops.extend(self._bind_filter_ops(specs, leaf, defer=True))
            ops.append(ApplyMask())
            ops.append(ValueGather(logical))
            return ops

        results = dispatcher.run(morsels, pipeline)
        merge_timings(stats, results)
        gathered = None
        for result in results:
            stats.scan_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if not label.startswith(("gather", "apply-mask")))
            stats.aggregation_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if label.startswith(("gather", "apply-mask")))
            for partial in result.finishes.values():
                gathered = (partial if gathered is None
                            else gathered.merge(partial))

        t2 = time.perf_counter()
        axes, state = value_grouping(logical, gathered)
        stats.rows_selected = gathered.selected
        stats.used_array_aggregation = not axes
        stats.aggregation_seconds += time.perf_counter() - t2
        leaf_row = _LeafState(axes=axes)
        return self._assemble(physical, leaf_row, state, stats)

    def _referenced_columns(self, physical: PhysicalPlan,
                            leaf: _LeafState) -> List[BoundColumn]:
        logical = physical.logical
        needed: List[BoundColumn] = []
        seen = set()

        def add(expr):
            for column in bound_columns(expr):
                if column not in seen:
                    seen.add(column)
                    needed.append(column)

        for expr, _ in physical.fact_conjuncts:
            add(expr)
        for predicate in leaf.probes.values():
            add(predicate)
        for key in logical.group_keys:
            add(key.column)
        for spec in logical.aggregates:
            if spec.expr is not None:
                add(spec.expr)
        for key in logical.projection_columns:
            add(key.column)
        return needed

    # -- projection (pure SPJ) ------------------------------------------------

    def _run_projection(self, physical: PhysicalPlan, specs: Sequence[OpSpec],
                        leaf: _LeafState, base: np.ndarray,
                        stats: ExecutionStats) -> QueryResult:
        logical = physical.logical
        dispatcher = MorselDispatcher("serial")
        project = Project(logical.projection_columns)

        def pipeline() -> List[Operator]:
            return [*self._bind_filter_ops(specs, leaf), project]

        results = dispatcher.run([self._morsel(logical, base)], pipeline)
        merge_timings(stats, results)
        (result,) = results
        stats.rows_selected = len(result.morsel)
        stats.scan_seconds = result.seconds
        stats.groups = len(result.morsel)
        stats.morsels = 1
        columns = result.finishes[project.label]
        return self._finish(logical, columns, stats)

    # -- result assembly ------------------------------------------------------

    def _assemble(self, physical: PhysicalPlan, leaf: _LeafState,
                  state: Optional[AggregationState],
                  stats: ExecutionStats) -> QueryResult:
        logical = physical.logical
        if state is None:
            raise ExecutionError("no aggregation state produced")
        ids, aggs = finalize(state)
        if not logical.group_keys and len(ids) == 0:
            # scalar aggregate over an empty selection: one all-zero row
            ids = np.zeros(1, dtype=np.int64)
            aggs = {spec.name: _empty_scalar(spec.func)
                    for spec in logical.aggregates}
        columns: Dict[str, np.ndarray] = {}
        if leaf.axes:
            columns.update(decode_group_columns(leaf.axes, ids))
        columns.update(aggs)
        stats.groups = len(ids)
        return self._finish(logical, columns, stats)

    def _finish(self, logical: LogicalPlan, columns: Dict[str, np.ndarray],
                stats: ExecutionStats) -> QueryResult:
        ordered = {name: columns[name] for name in logical.output_order}
        nrows = len(next(iter(ordered.values()), []))
        if logical.order_by and nrows > 1:
            if logical.limit is not None and logical.limit < nrows:
                perm = top_k_indices(ordered, logical.order_by,
                                     logical.limit)
            else:
                perm = sort_indices(ordered, logical.order_by)
            ordered = {name: values[perm] for name, values in ordered.items()}
        if logical.limit is not None:
            ordered = {name: values[: logical.limit]
                       for name, values in ordered.items()}
        return QueryResult(logical.output_order, ordered, stats)


def _empty_scalar(func: str) -> np.ndarray:
    if func == "COUNT":
        return np.zeros(1, dtype=np.int64)
    if func in ("SUM",):
        return np.zeros(1, dtype=np.int64)
    return np.array([np.nan])

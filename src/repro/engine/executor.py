"""The AIRScan executor: compiling queries to portable bound plans.

Queries run the paper's three-phase model (Section 3), expressed with the
shared physical layer of :mod:`repro.engine.operators`:

1. **Leaf processing** — :meth:`AStoreEngine._bind_leaf` evaluates
   dimension predicates once into packed :class:`PredicateFilter`
   vectors and builds the group axes (Sections 4.2, 4.3);
2. **Scan and filter** — the optimizer's ``PhysicalPlan.pipeline`` DAG
   is rewritten for the engine variant (row- vs column-wise, deferred
   vs short-circuiting filters) and, together with the leaf products,
   compiled into a picklable
   :class:`~repro.engine.sharding.BoundQuery`; the bound plan is then
   driven over horizontal fact-table morsels either in-process
   (``serial``/``thread`` backends, via the
   :class:`~repro.engine.operators.MorselDispatcher`) or across worker
   processes (``process`` backend, via
   :class:`~repro.engine.sharding.ProcessShardBackend` and the
   shared-memory column arena);
3. **Aggregation** — per-morsel/per-shard partial aggregation states
   merge element-wise; ORDER BY/LIMIT run during result assembly.

The five query-processor variants of the paper's Table 6 are exposed as
:data:`VARIANTS` — each is a different *DAG rewrite* over the same
operators (see :func:`rewrite_for_options`), so the comparison isolates
the execution-model differences, not separate code paths.  The same
operators power the Section 6 baselines (:mod:`repro.baselines.engines`).

The executor itself only compiles bound plans, dispatches them, and
assembles results; all scanning, probing, and aggregating lives in the
operators, and everything a worker process needs lives in the bound plan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Database
from ..errors import ExecutionError, ShardExecutionError
from ..plan.binder import LogicalPlan, bind
from ..plan.optimizer import CacheModel, OpSpec, PhysicalPlan, optimize
from .aggregate import AggregationState, finalize
from .cache import (
    QueryCache,
    axis_nbytes,
    bound_nbytes,
    parse_cached,
    query_cache_for,
    query_fingerprint,
    table_stamps,
)
from .grouping import GroupAxis, build_axes, decode_group_columns
from .operators import (
    BACKENDS,
    MorselDispatcher,
    merge_timings,
    value_grouping,
)
from .orderby import sort_indices, top_k_indices
from .result import ExecutionStats, QueryResult
from .sharding import (
    BoundQuery,
    LeafFilterSpec,
    LeafProducts,
    ProcessShardBackend,
    PruneCounters,
    acquire_shard_backend,
    build_predicate_filter,
    fold_outcomes,
    merge_outcome_states,
    release_shard_backend,
)


@dataclass(frozen=True)
class EngineOptions:
    """Executor configuration (one row of the paper's Table 6).

    * ``scan`` — ``"column"`` for vector-based column-wise scan,
      ``"row"`` for chunked row-wise scan (full-tuple materialization);
    * ``use_predicate_filter`` — build packed predicate vectors for
      dimension predicates (Section 4.2);
    * ``use_array_aggregation`` — ``True``/``False``/``"auto"`` (the
      cache-model decision of Section 4.3);
    * ``workers`` — horizontal fact-table partitions (shards) processed
      independently and merged (Section 5); 1 = serial;
    * ``parallel_backend`` — a :data:`repro.engine.operators.BACKENDS`
      name: ``"serial"``, ``"thread"``, or ``"process"`` (portable bound
      plans over shared-memory shards);
    * ``morsel_rows`` — split each column-scan partition into fixed-size
      morsels (0 = one morsel per partition, the paper's layout);
    * ``chunk_rows`` — block size of the row-wise scan variants;
    * ``use_cache`` — consult the database's shared, mutation-stamped
      :class:`~repro.engine.cache.QueryCache` for compile artifacts
      (plans, leaf products, group axes);
    * ``cache_results`` — additionally serve exact query repeats from
      the cache's result tier (the serving tier; stamped like every
      other tier, so mutations invalidate instead of going stale);
    * ``result_ttl_seconds`` / ``result_cache_entries`` — bounds on the
      serving tier (0 = leave the shared cache's current bound);
    * ``use_pruning`` — block-level data skipping: zone maps decide per
      fact-table block whether any (or every) row can pass, so morsels
      that cannot contribute are never run;
    * ``adaptive_filters`` — micro-adaptive filter ordering: the scan
      chain re-orders by the pass-rates observed on earlier morsels
      (with periodic re-exploration), never changing results;
    * ``zone_block_rows`` — force a zone-map block size (0 = per-table
      default, :func:`repro.core.statistics.default_zone_block_rows`);
    * ``leaf_ship_bytes`` — packed predicate vectors larger than this
      ship to process workers as rebuild recipes instead of bits
      (worker-side leaf processing over the shared arena);
    * ``shared_store`` — segment name of a cross-process
      :class:`~repro.core.shmcache.SharedQueryStore` to attach as the
      second level behind the query cache's plan/result tiers (empty =
      per-process caching only; serving-fleet workers set this).
    """

    scan: str = "column"
    use_predicate_filter: bool = True
    use_array_aggregation: object = "auto"
    cache: CacheModel = field(default_factory=CacheModel)
    workers: int = 1
    parallel_backend: str = "thread"
    morsel_rows: int = 0
    chunk_rows: int = 65536
    sample_size: int = 4096
    variant_name: str = "AIRScan_C_P_G"
    use_cache: bool = True
    cache_results: bool = False
    result_ttl_seconds: float = 0.0
    result_cache_entries: int = 0
    use_pruning: bool = True
    adaptive_filters: bool = True
    zone_block_rows: int = 0
    leaf_ship_bytes: int = 64 << 10
    shared_store: str = ""
    remote_nodes: Tuple[str, ...] = ()
    node_timeout: float = 30.0
    node_retries: int = 2
    #: membership server address (host:port) — replaces the static
    #: remote_nodes list with a live cluster view when set
    membership: str = ""
    #: hedge a shard request to a second live node after this many
    #: seconds without an answer (0 = no hedging)
    node_hedge: float = 0.0
    #: per-node circuit breaker: open after this many consecutive
    #: request failures...
    breaker_threshold: int = 3
    #: ...and allow one half-open probe after this many seconds
    breaker_reset: float = 2.0


#: The five query processors of the paper's Table 6.
VARIANTS: Dict[str, EngineOptions] = {
    "AIRScan_R": EngineOptions(
        scan="row", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_R"),
    "AIRScan_R_P": EngineOptions(
        scan="row", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_R_P"),
    "AIRScan_C": EngineOptions(
        scan="column", use_predicate_filter=False, use_array_aggregation=False,
        variant_name="AIRScan_C"),
    "AIRScan_C_P": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation=False,
        variant_name="AIRScan_C_P"),
    "AIRScan_C_P_G": EngineOptions(
        scan="column", use_predicate_filter=True, use_array_aggregation="auto",
        variant_name="AIRScan_C_P_G"),
}


# -- variant DAG rewrites -----------------------------------------------------


def rewrite_for_options(pipeline: Sequence[OpSpec], options: EngineOptions,
                        logical: LogicalPlan) -> Tuple[OpSpec, ...]:
    """Rewrite the optimizer's operator DAG for an engine variant.

    The column-wise variants run the plan as emitted.  The row-wise
    variants (``AIRScan_R*``) rewrite the DAG into full-tuple form:
    a ``materialize`` node is inserted after the scan, every filter-like
    node is marked ``defer`` (each predicate sees every row of the
    block; a single ``apply-mask`` shrinks afterwards), and
    grouping/aggregation turn into value-based ``gather`` +
    ``value-aggregate`` nodes, since without group vectors the row
    engine groups on observed values.
    """
    if options.scan != "row" or logical.is_projection:
        return tuple(pipeline)
    specs: List[OpSpec] = []
    for spec in pipeline:
        if spec.op == "scan":
            specs.append(replace_spec(spec, detail=f"{spec.detail}:row"))
            specs.append(OpSpec("materialize", "referenced columns"))
        elif spec.op in ("filter", "air-probe"):
            specs.append(replace_spec(spec, detail=f"{spec.detail}:defer"))
        elif spec.op == "group-combine":
            specs.append(OpSpec("gather", spec.detail))
        elif spec.op == "aggregate":
            if not any(s.op == "gather" for s in specs):
                specs.append(OpSpec("gather", ""))
            specs.append(OpSpec("value-aggregate", "hash",
                                payload=spec.payload))
        else:
            specs.append(spec)
    # the deferred masks are applied once, before gathering
    gather_at = next(i for i, s in enumerate(specs) if s.op == "gather")
    specs.insert(gather_at, OpSpec("apply-mask"))
    return tuple(specs)


def replace_spec(spec: OpSpec, **changes) -> OpSpec:
    """A copy of *spec* with the given fields replaced."""
    return replace(spec, **changes)


class AStoreEngine:
    """A-Store's OLAP engine over a loaded (airified) database.

    An engine that has served ``process``-backed queries owns a
    shared-memory arena and a worker pool; release them with
    :meth:`close` (or use the engine as a context manager).
    """

    def __init__(self, db: Database, options: Optional[EngineOptions] = None):
        self.db = db
        self.options = options or EngineOptions()
        self._shard_backend: Optional[ProcessShardBackend] = None
        # guards the engine's shard-backend slot: concurrent queries on
        # one engine must not double-release a stale backend (each run
        # additionally pins the backend it checked out, see
        # _checkout_backend)
        self._backend_lock = threading.Lock()
        # one cache is shared per database object, so every engine (and
        # variant) over the same data reuses dimension scans and axes
        self.cache: Optional[QueryCache] = (
            query_cache_for(db) if self.options.use_cache else None)
        if self.cache is not None and (self.options.result_ttl_seconds
                                       or self.options.result_cache_entries):
            self.cache.configure_result_tier(
                ttl_seconds=self.options.result_ttl_seconds or None,
                max_entries=self.options.result_cache_entries or None)
        if self.cache is not None and self.options.shared_store:
            # fleet workers: one process-wide mapping per segment, shared
            # by every engine over it; the fleet supervisor owns/unlinks
            from ..core.shmcache import attach_store
            self.cache.attach_shared_store(
                attach_store(self.options.shared_store))

    @classmethod
    def variant(cls, db: Database, name: str, **overrides) -> "AStoreEngine":
        """An engine configured as one of the paper's Table 6 variants."""
        if name not in VARIANTS:
            raise ExecutionError(
                f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
            )
        options = VARIANTS[name]
        if overrides:
            options = replace(options, **overrides)
        return cls(db, options)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release process-backend resources (worker pool + shared arena)."""
        with self._backend_lock:
            backend, self._shard_backend = self._shard_backend, None
        if backend is not None:
            release_shard_backend(backend)

    def __enter__(self) -> "AStoreEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- planning ---------------------------------------------------------

    def plan(self, query) -> PhysicalPlan:
        """Bind and optimize a SQL string (or parsed statement)."""
        logical = bind(query, self.db)
        return optimize(
            logical, self.db,
            cache=self.options.cache,
            use_predicate_filter=self.options.use_predicate_filter,
            array_agg=self.options.use_array_aggregation,
            sample_size=self.options.sample_size,
        )

    def explain(self, query) -> str:
        """The optimizer's plan, with this variant's DAG rewrite applied."""
        physical = self.plan(query)
        rewritten = rewrite_for_options(
            physical.pipeline, self.options, physical.logical)
        if rewritten == physical.pipeline:
            return physical.explain()
        text = physical.explain()
        lines = [f"variant {self.options.variant_name} rewrites pipeline to:"]
        for i, spec in enumerate(rewritten):
            arrow = "   " if i == 0 else " ->"
            lines.append(f" {arrow} {spec.render()}")
        return text + "\n" + "\n".join(lines)

    # -- compilation --------------------------------------------------------

    def _cache_token(self) -> str:
        """The compile-relevant options, canonicalized for fingerprints.

        Only fields that change the *compiled artifact* participate —
        ``workers``/``parallel_backend`` affect how a bound plan is
        dispatched, not what it contains, so engines differing only in
        backend share plan-tier entries.
        """
        o = self.options
        return (f"{o.variant_name}|{o.scan}|{o.use_predicate_filter}|"
                f"{o.use_array_aggregation}|{o.cache.llc_bytes}|"
                f"{o.morsel_rows}|{o.chunk_rows}|{o.sample_size}|"
                f"{o.use_pruning}|{o.adaptive_filters}|{o.zone_block_rows}|"
                f"{o.leaf_ship_bytes}")

    def compile(self, query, snapshot: Optional[int] = None) -> BoundQuery:
        """Compile *query* into a portable bound plan.

        The result is a self-contained, picklable artifact: the
        variant-rewritten operator DAG, the evaluated leaf products, and
        the plan metadata.  It can be executed here
        (:meth:`run_compiled`), pickled to another process, or rebuilt
        against any attached copy of the same database.

        With the query cache active, a repeated (or merely textually
        different but structurally identical) query returns the *same*
        bound-plan object, revalidated against the mutation stamps of
        every table it touches; ``leaf_seconds`` then reflects the
        lookup, not a recompile.

        Note for concurrent callers: a cached plan is shared, so the
        ``leaf_seconds``/``cache_events`` bookkeeping stamped on here is
        last-writer-wins (timing skew only, never results).
        :meth:`query` routes those per-execution values out-of-band
        instead, so the serving path is free of even that skew.
        """
        bound, leaf_seconds, events = self._compile_cached(query, snapshot)
        bound.leaf_seconds = leaf_seconds
        bound.cache_events = events
        return bound

    def _compile_cached(self, query, snapshot: Optional[int]
                        ) -> Tuple[BoundQuery, float, Dict[str, int]]:
        """Compile through the plan tier, returning the (possibly
        shared) plan plus this call's own ``(leaf_seconds, events)`` —
        nothing per-execution is written onto the shared object."""
        if self.cache is None:
            bound = self._compile(self.plan(query), snapshot)
            return bound, bound.leaf_seconds, dict(bound.cache_events)
        t0 = time.perf_counter()
        stmt = parse_cached(query) if isinstance(query, str) else query
        key = (query_fingerprint(stmt, self._cache_token()), snapshot)
        bound = self.cache.get("plan", key, self.db)
        if bound is not None:
            # Same object on purpose: shard backends memoize the plan
            # pickle by object identity, and any value-shared key would
            # risk shipping stale bytes after a recompile.
            return bound, time.perf_counter() - t0, {"plan_hits": 1}
        # stamps are captured BEFORE compiling: if a writer mutates a
        # table mid-compile, the stored entry carries the pre-mutation
        # stamp and the next lookup discards it — stamped-after, a
        # stale artifact could wear a fresh stamp forever
        pre_stamps = {name: table.mutation_count
                      for name, table in self.db.tables.items()}
        events = {"plan_misses": 1}
        bound = self._compile(self.plan(stmt), snapshot, events)
        bound.cache_key = key
        self.cache.put("plan", key, bound,
                       tuple(sorted((name, pre_stamps[name])
                                    for name in set(bound.logical.tables))),
                       bound_nbytes(bound))
        return bound, bound.leaf_seconds, dict(events)

    def _compile(self, physical: PhysicalPlan, snapshot: Optional[int],
                 events: Optional[Dict[str, int]] = None) -> BoundQuery:
        t0 = time.perf_counter()
        events = {} if events is None else events
        leaf = self._bind_leaf(physical, snapshot, events)
        logical = physical.logical
        specs = rewrite_for_options(physical.pipeline, self.options, logical)
        bound = BoundQuery(
            variant=self.options.variant_name,
            scan="projection" if logical.is_projection else self.options.scan,
            specs=specs,
            logical=logical,
            leaf=leaf,
            snapshot=snapshot,
            morsel_rows=self.options.morsel_rows,
            chunk_rows=self.options.chunk_rows,
            use_array_hint=bool(physical.use_array_agg),
            cache_events=events,
            prune_enabled=self.options.use_pruning,
            adaptive=self.options.adaptive_filters,
            zone_block_rows=self.options.zone_block_rows,
        )
        bound.leaf_seconds = time.perf_counter() - t0
        return bound

    # -- execution ----------------------------------------------------------

    def query(self, query, snapshot: Optional[int] = None) -> QueryResult:
        """Compile (through the cache, when enabled) and execute *query*.

        Safe for concurrent callers: per-execution bookkeeping travels
        out-of-band instead of through fields of the shared cached plan.
        """
        bound, leaf_seconds, events = self._compile_cached(query, snapshot)
        return self.run_compiled(bound, leaf_seconds=leaf_seconds,
                                 cache_events=events)

    def execute(self, physical: PhysicalPlan,
                snapshot: Optional[int] = None) -> QueryResult:
        """Run a physical plan, optionally against an MVCC *snapshot*."""
        return self.run_compiled(self._compile(physical, snapshot))

    def result_key(self, query, snapshot: Optional[int] = None
                   ) -> Optional[tuple]:
        """The plan/result-tier cache key of *query* on this engine
        (``None`` with the cache disabled) — what the serving layer uses
        to coalesce concurrent identical queries."""
        if self.cache is None:
            return None
        stmt = parse_cached(query) if isinstance(query, str) else query
        return (query_fingerprint(stmt, self._cache_token()), snapshot)

    def serve_cached(self, query, snapshot: Optional[int] = None,
                     key: Optional[tuple] = None) -> Optional[QueryResult]:
        """Result-tier-only lookup: a per-caller copy of the cached
        result for an exact repeat, or ``None`` on a miss (including
        cache/serving disabled or a stale entry).  Never compiles or
        executes — this is the non-blocking fast path the async serving
        layer answers from without leaving the event loop.  Callers
        that already hold the :meth:`result_key` pass it to skip the
        parse + fingerprint."""
        if self.cache is None or not self.options.cache_results:
            return None
        t0 = time.perf_counter()
        if key is None:
            key = self.result_key(query, snapshot)
        hit = self.cache.get("result", key, self.db)
        if hit is None:
            return None
        return _served_result(hit, time.perf_counter() - t0)

    def run_compiled(self, bound: BoundQuery,
                     leaf_seconds: Optional[float] = None,
                     cache_events: Optional[Dict[str, int]] = None
                     ) -> QueryResult:
        """Execute a (possibly unpickled) bound plan on this engine's
        database, honouring the configured backend.

        With ``cache_results`` enabled, an exact repeat whose mutation
        stamps still hold is served straight from the result tier — as
        a frozen, per-caller copy, so served results can never alias
        each other's mutations.  ``leaf_seconds``/``cache_events``
        override the plan's stamped-on bookkeeping (the plan object is
        shared between concurrent callers when cached; :meth:`query`
        passes this call's own values)."""
        if leaf_seconds is None:
            leaf_seconds = bound.leaf_seconds
        if cache_events is None:
            cache_events = dict(bound.cache_events)
        bound.hydrate(self.db)  # lazily-shipped leaf filters, if unpickled
        serve = (self.cache is not None and self.options.cache_results
                 and bound.cache_key is not None)
        serve_stamps = None
        t_total = time.perf_counter()
        if serve:
            hit = self.cache.get("result", bound.cache_key, self.db)
            if hit is not None:
                return _served_result(
                    hit, time.perf_counter() - t_total + leaf_seconds)
            # pre-execution stamps: a mutation racing this execution
            # leaves the stored result stamped stale, never stale-fresh
            serve_stamps = table_stamps(self.db, bound.logical.tables)
        stats = ExecutionStats(variant=bound.variant)
        stats.leaf_seconds = leaf_seconds
        stats.cache_events = dict(cache_events)
        for dim in bound.leaf.filters:
            stats.filter_modes[dim] = "vector"
        for dim in bound.leaf.probes:
            stats.filter_modes[dim] = "probe"

        base = bound.base_positions(self.db)
        stats.rows_scanned = len(base)

        if not BACKENDS[self.options.parallel_backend].inline:
            result = self._run_sharded(bound, base, stats)
        elif bound.scan == "projection":
            result = self._run_projection(bound, base, stats)
        elif bound.scan == "row":
            result = self._run_row_scan(bound, base, stats)
        else:
            result = self._run_column_scan(bound, base, stats)
        # leaf binding happened at compile time; fold it back in so the
        # total covers all three phases (phase sums never exceed it)
        stats.total_seconds = (time.perf_counter() - t_total
                               + leaf_seconds)
        if serve:
            # the cached copy is frozen (immutable views, private column
            # map) and this caller gets its own wrapper over the same
            # arrays — nobody holds a handle that can corrupt the tier
            frozen = result.freeze()
            nbytes = sum(int(getattr(col, "nbytes", 0))
                         for col in frozen.columns.values())
            self.cache.put("result", bound.cache_key, frozen,
                           serve_stamps, nbytes)
            return frozen.served_copy(stats)
        return result

    # -- stage 1: leaf processing (binding) ----------------------------------

    def _bind_leaf(self, physical: PhysicalPlan, snapshot: Optional[int],
                   events: Optional[Dict[str, int]] = None) -> LeafProducts:
        """Evaluate dimension predicates and build group axes once.

        Both products are consulted against (and stored into) the query
        cache per artifact: a packed predicate vector is keyed by its
        canonical bound predicate — so *different* queries sharing a
        dimension slice (the SSB query families) reuse one dimension
        scan — and group axes are keyed by their key set.  Every entry
        is stamped with the mutation counts of the tables it read.
        """
        events = {} if events is None else events
        logical = physical.logical
        leaf = LeafProducts()
        cache = self.cache
        ship_limit = self.options.leaf_ship_bytes
        for dd in physical.dim_decisions:
            if not dd.use_filter:
                leaf.probes[dd.first_dim] = dd.predicate
                leaf.probe_selectivity[dd.first_dim] = dd.estimated_selectivity
                continue
            spec = LeafFilterSpec(dd.first_dim, dd.predicate, snapshot)
            key = involved = stamps = None
            if cache is not None:
                # the mask gathers through the whole subtree reachable
                # from the first-level dimension, so all of it stamps
                # (and keys) the entry; stamps are read before the
                # evaluation so a concurrent mutation invalidates
                involved = tuple(sorted(
                    {dd.first_dim} | logical.subtree_of(dd.first_dim)))
                key = ("pf", dd.first_dim, involved, snapshot, dd.predicate)
                stamps = table_stamps(self.db, involved)
                hit = cache.get("leaf", key, self.db)
                if hit is not None:
                    pf, density = hit
                    leaf.filters[dd.first_dim] = pf
                    leaf.filter_density[dd.first_dim] = density
                    if pf.nbytes > ship_limit:
                        leaf.lazy_specs[dd.first_dim] = spec
                    _bump(events, "leaf_hits")
                    continue
            pf = build_predicate_filter(self.db, logical.paths, spec)
            density = pf.density
            leaf.filters[dd.first_dim] = pf
            leaf.filter_density[dd.first_dim] = density
            if pf.nbytes > ship_limit:
                # a big vector crosses process boundaries as its recipe:
                # workers rebuild it from the shared arena instead of
                # unpickling dimension-sized payloads per plan
                leaf.lazy_specs[dd.first_dim] = spec
            if cache is not None:
                cache.put("leaf", key, (pf, density), stamps, pf.nbytes)
                _bump(events, "leaf_misses")
        if logical.group_keys and not logical.is_projection:
            leaf.axes = build_axes(self.db, logical,
                                   memo=self._axis_memo(events))
        return leaf

    def _axis_memo(self, events: Dict[str, int]):
        """A ``build_axes`` memo backed by the cache's axis tier."""
        cache = self.cache
        if cache is None:
            return None

        def memo(key_id: tuple, involved, build):
            axis = cache.get("axis", key_id, self.db)
            if axis is not None:
                _bump(events, "axis_hits")
                return axis
            stamps = table_stamps(self.db, involved)  # pre-build
            axis = build()
            cache.put("axis", key_id, axis, stamps, axis_nbytes(axis))
            _bump(events, "axis_misses")
            return axis

        return memo

    # -- column-wise execution ------------------------------------------------

    def _run_column_scan(self, bound: BoundQuery, base: np.ndarray,
                         stats: ExecutionStats) -> QueryResult:
        dispatcher = MorselDispatcher(self.options.parallel_backend)
        counters = PruneCounters()
        morsels = bound.make_morsels(self.db, base, self.options.workers,
                                     bound.morsel_rows, prune=counters)
        stats.morsels = len(morsels)
        self._fold_prune(stats, counters)

        reorders_before = self._reorders(bound)
        scanned = dispatcher.run(morsels, bound.scan_pipeline)
        stats.filters_reordered += self._reorders(bound) - reorders_before
        merge_timings(stats, scanned)
        total_selected = 0
        for result in scanned:
            total_selected += len(result.morsel)
            stats.scan_seconds += result.seconds
        stats.rows_selected = total_selected

        # Section 4.3's sparsity check, made with the *actual* selection
        # size now that the scan has run.
        use_array = bound.decide_use_array(total_selected)
        stats.used_array_aggregation = use_array or not bound.leaf.axes

        outcomes = dispatcher.run(
            [r.morsel for r in scanned],
            lambda: bound.aggregate_pipeline(use_array))
        merge_timings(stats, outcomes)
        state: Optional[AggregationState] = None
        for result in outcomes:
            stats.aggregation_seconds += result.seconds
            for partial in result.finishes.values():
                state = partial if state is None else state.merge(partial)
        return self._assemble(bound.logical, bound.leaf.axes, state, stats)

    # -- row-wise execution ---------------------------------------------------

    def _run_row_scan(self, bound: BoundQuery, base: np.ndarray,
                      stats: ExecutionStats) -> QueryResult:
        """Chunked row-wise scan: materialize the full tuple, then filter.

        Every referenced column — including dimension attributes reached
        through AIR — is fetched for *every* row of the chunk before any
        predicate is applied (the ``materialize`` + ``defer`` DAG
        rewrite), reproducing tuple-at-a-time cost without a per-row
        interpreter loop.
        """
        dispatcher = MorselDispatcher("serial")
        counters = PruneCounters()
        morsels = bound.make_morsels(self.db, base, 1, bound.chunk_rows,
                                     prune=counters)
        stats.morsels = len(morsels)
        self._fold_prune(stats, counters)

        results = dispatcher.run(morsels, bound.row_pipeline)
        merge_timings(stats, results)
        gathered = None
        for result in results:
            stats.scan_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if not label.startswith(("gather", "apply-mask")))
            stats.aggregation_seconds += sum(
                seconds for label, seconds in result.timings.items()
                if label.startswith(("gather", "apply-mask")))
            for partial in result.finishes.values():
                gathered = (partial if gathered is None
                            else gathered.merge(partial))
        return self._finish_row_scan(bound, gathered, stats)

    def _finish_row_scan(self, bound: BoundQuery, gathered,
                         stats: ExecutionStats) -> QueryResult:
        t2 = time.perf_counter()
        axes, state = value_grouping(bound.logical, gathered)
        stats.rows_selected = gathered.selected
        stats.used_array_aggregation = not axes
        stats.aggregation_seconds += time.perf_counter() - t2
        return self._assemble(bound.logical, axes, state, stats)

    # -- projection (pure SPJ) ------------------------------------------------

    def _run_projection(self, bound: BoundQuery, base: np.ndarray,
                        stats: ExecutionStats) -> QueryResult:
        dispatcher = MorselDispatcher("serial")
        counters = PruneCounters()
        results = dispatcher.run(
            bound.make_morsels(self.db, base, 1, 0, allow_identity=False,
                               prune=counters),
            bound.projection_pipeline)
        self._fold_prune(stats, counters)
        merge_timings(stats, results)
        chunks = [value for result in results
                  for value in result.finishes.values()]
        stats.rows_selected = sum(len(r.morsel) for r in results)
        stats.scan_seconds = sum(r.seconds for r in results)
        stats.groups = stats.rows_selected
        stats.morsels = len(results)
        return self._finish(bound.logical,
                            _concat_projection(bound.logical, chunks), stats)

    # -- stats helpers --------------------------------------------------------

    @staticmethod
    def _fold_prune(stats: ExecutionStats, counters: PruneCounters) -> None:
        stats.morsels_skipped += counters.blocks_skipped
        stats.morsels_accepted += counters.blocks_accepted
        stats.morsels_scanned += counters.blocks_scanned
        stats.prune_gated += counters.gated

    @staticmethod
    def _reorders(bound: BoundQuery) -> int:
        state = bound.__dict__.get("_reorder")
        return state.reorders if state is not None else 0

    # -- sharded (process-backend) execution ----------------------------------

    def _checkout_backend(self) -> ProcessShardBackend:
        """A fresh (non-stale) shard backend, pinned for one run.

        The engine-level lock makes the stale-check/release/re-acquire
        sequence atomic — two concurrent queries on one engine can
        never double-release the shared slot — and the extra
        :meth:`~ProcessShardBackend.retain` reference keeps the
        checked-out backend's pool and arena alive for the duration of
        this run even if a concurrent query observes a mutation and
        swaps the engine onto a fresh export mid-flight.  Callers pair
        it with :func:`release_shard_backend`.
        """
        with self._backend_lock:
            backend = self._shard_backend
            if backend is not None and backend.is_stale(self.db):
                # the arena is a point-in-time copy; a mutation since
                # export means the shards would serve stale rows —
                # re-export
                release_shard_backend(backend)
                backend = self._shard_backend = None
            if backend is None:
                if self.options.parallel_backend == "remote":
                    from .distributed import acquire_remote_backend

                    backend = self._shard_backend = acquire_remote_backend(
                        self.db, self.options)
                else:
                    backend = self._shard_backend = acquire_shard_backend(
                        self.db, self.options.workers)
            backend.retain()
            return backend

    def _drop_backend_slot(self, backend) -> None:
        """Evict a failed backend from the engine slot (if it still
        holds it) and drop this run's reference — the next sharded
        query checks out a fresh pool instead of the broken one."""
        with self._backend_lock:
            if self._shard_backend is backend:
                release_shard_backend(backend)
                self._shard_backend = None
        release_shard_backend(backend)

    def _run_sharded(self, bound: BoundQuery, base: np.ndarray,
                     stats: ExecutionStats) -> QueryResult:
        """Run the bound plan over horizontal shards in worker processes.

        Scan and aggregation fuse into one worker trip per shard, so the
        §4.3 array-vs-hash decision is made up front from the bound
        selectivities (their product over the exact predicate-vector
        densities); per-shard partial states merge in shard order.
        """
        # warm the parent's zone maps for this plan's prunable columns
        # before a (first) arena export, so workers attach the
        # summaries zero-copy instead of re-deriving them
        bound.warm_zone_maps(self.db)
        use_array: Optional[bool] = None
        agg_labels: Tuple[str, ...] = ("gather", "apply-mask")
        if bound.scan == "column":
            use_array = bound.decide_use_array(
                bound.estimated_selected(len(base)))
            agg_labels = ("aggregate",)
        nshards = self.options.workers
        backend = self._checkout_backend()
        report: Dict[str, int] = {}
        try:
            if getattr(backend, "distributed", False):
                # distributed backends report their failure-path
                # counters (retries, re-shards, node losses, local
                # degrades) per run; their shard count defaults to the
                # node count when workers was left at 1
                nshards = backend.workers
                outcomes = backend.run(bound, nshards=nshards,
                                       use_array=use_array, report=report)
            else:
                outcomes = backend.run(bound, nshards=nshards,
                                       use_array=use_array)
        except ShardExecutionError:
            # the pool (or node set) died under this query: evict the
            # broken backend and degrade to serial shards — same plan,
            # same shard boundaries, same answer, no hang
            self._drop_backend_slot(backend)
            stats.shard_fallbacks += 1
            outcomes = [bound.run_shard(self.db, shard, nshards, use_array)
                        for shard in range(nshards)]
        except BaseException:
            release_shard_backend(backend)
            raise
        else:
            release_shard_backend(backend)
        stats.remote_retries += report.get("retries", 0)
        stats.remote_reshards += report.get("reshards", 0)
        stats.remote_nodes_lost += report.get("nodes_lost", 0)
        stats.remote_local_shards += report.get("local_shards", 0)
        stats.remote_nodes_joined += report.get("nodes_joined", 0)
        fold_outcomes(outcomes, stats, agg_labels)

        if bound.scan == "projection":
            chunks = [value for outcome in outcomes
                      for values in outcome.finishes.values()
                      for value in values]
            stats.groups = stats.rows_selected
            return self._finish(
                bound.logical, _concat_projection(bound.logical, chunks),
                stats)

        merged = merge_outcome_states(outcomes)
        if bound.scan == "row":
            return self._finish_row_scan(bound, merged, stats)
        stats.used_array_aggregation = bool(use_array) or not bound.leaf.axes
        return self._assemble(bound.logical, bound.leaf.axes, merged, stats)

    # -- result assembly ------------------------------------------------------

    def _assemble(self, logical: LogicalPlan, axes: Sequence[GroupAxis],
                  state: Optional[AggregationState],
                  stats: ExecutionStats) -> QueryResult:
        if state is None:
            raise ExecutionError("no aggregation state produced")
        ids, aggs = finalize(state)
        if not logical.group_keys and len(ids) == 0:
            # scalar aggregate over an empty selection: one all-zero row
            ids = np.zeros(1, dtype=np.int64)
            aggs = {spec.name: _empty_scalar(spec.func)
                    for spec in logical.aggregates}
        columns: Dict[str, np.ndarray] = {}
        if axes:
            columns.update(decode_group_columns(axes, ids))
        columns.update(aggs)
        stats.groups = len(ids)
        return self._finish(logical, columns, stats)

    def _finish(self, logical: LogicalPlan, columns: Dict[str, np.ndarray],
                stats: ExecutionStats) -> QueryResult:
        ordered = {name: columns[name] for name in logical.output_order}
        nrows = len(next(iter(ordered.values()), []))
        if logical.order_by and nrows > 1:
            if logical.limit is not None and logical.limit < nrows:
                perm = top_k_indices(ordered, logical.order_by,
                                     logical.limit)
            else:
                perm = sort_indices(ordered, logical.order_by)
            ordered = {name: values[perm] for name, values in ordered.items()}
        if logical.limit is not None:
            ordered = {name: values[: logical.limit]
                       for name, values in ordered.items()}
        return QueryResult(logical.output_order, ordered, stats)


def _bump(events: Dict[str, int], key: str) -> None:
    events[key] = events.get(key, 0) + 1


def _served_result(cached: QueryResult, seconds: float) -> QueryResult:
    """A result-tier hit: a per-caller copy of the cached result.

    Column arrays are shared with the cached copy but frozen
    (read-only views), and the caller gets its own column map — so a
    served result can be neither written through nor used to corrupt
    the cache.  Counters carry over; timings reflect the lookup, which
    is the point of the serving tier.
    """
    src = cached.stats
    stats = ExecutionStats(variant=src.variant)
    stats.rows_scanned = src.rows_scanned
    stats.rows_selected = src.rows_selected
    stats.groups = src.groups
    stats.morsels = src.morsels
    stats.morsels_skipped = src.morsels_skipped
    stats.morsels_accepted = src.morsels_accepted
    stats.morsels_scanned = src.morsels_scanned
    stats.prune_gated = src.prune_gated
    stats.used_array_aggregation = src.used_array_aggregation
    stats.filter_modes = dict(src.filter_modes)
    stats.total_seconds = seconds
    stats.cache_events = {"result_hits": 1}
    return cached.served_copy(stats)


def _concat_projection(logical: LogicalPlan,
                       chunks: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Stitch per-morsel/per-shard projection chunks back together."""
    if len(chunks) == 1:
        return chunks[0]
    out: Dict[str, np.ndarray] = {}
    for key in logical.projection_columns:
        parts = [chunk[key.name] for chunk in chunks]
        out[key.name] = (np.concatenate(parts) if parts
                         else np.empty(0, dtype=object))
    return out


def _empty_scalar(func: str) -> np.ndarray:
    if func == "COUNT":
        return np.zeros(1, dtype=np.int64)
    if func in ("SUM",):
        return np.zeros(1, dtype=np.int64)
    return np.array([np.nan])

"""Vectorized evaluation of bound expressions over column slices.

Predicates on dictionary-compressed columns are evaluated against the
*dictionary* (a handful of values) and then mapped through the codes with
one gather — the paper's "predicates become integer comparisons on
compression codes" optimization, generalized to ranges, IN and LIKE.
"""

from __future__ import annotations

import re

import numpy as np

from ..errors import ExecutionError
from ..plan.expressions import (
    BoundAnd,
    BoundArith,
    BoundBetween,
    BoundColumn,
    BoundCompare,
    BoundExpression,
    BoundIn,
    BoundLike,
    BoundLiteral,
    BoundNot,
    BoundOr,
)
from .slice import ArraySlice, DictSlice, PositionalProvider

_COMPARE_OPS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
    "%": np.mod,
}


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (``%``, ``_``) into a compiled regex."""
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$")


def evaluate_predicate(expr: BoundExpression,
                       provider: PositionalProvider) -> np.ndarray:
    """Evaluate a boolean expression; returns a bool array over base rows."""
    result = _eval(expr, provider)
    if isinstance(result, DictSlice):
        raise ExecutionError("expression is not a predicate")
    values = result.values if isinstance(result, ArraySlice) else result
    if values.dtype != np.bool_:
        raise ExecutionError("expression is not a predicate")
    return values


def evaluate_measure(expr: BoundExpression,
                     provider: PositionalProvider) -> np.ndarray:
    """Evaluate a numeric expression; returns a value array over base rows."""
    result = _eval(expr, provider)
    if isinstance(result, DictSlice):
        result = ArraySlice(result.decode())
    values = result.values if isinstance(result, ArraySlice) else result
    if values.dtype == np.bool_:
        raise ExecutionError("predicate used where a measure was expected")
    return values


def _eval(expr: BoundExpression, provider: PositionalProvider):
    if isinstance(expr, BoundColumn):
        return provider.fetch(expr.table, expr.name)
    if isinstance(expr, BoundLiteral):
        return expr.value
    if isinstance(expr, BoundArith):
        left = _to_values(_eval(expr.left, provider))
        right = _to_values(_eval(expr.right, provider))
        return ArraySlice(np.asarray(_ARITH_OPS[expr.op](left, right)))
    if isinstance(expr, BoundCompare):
        return ArraySlice(_compare(expr, provider))
    if isinstance(expr, BoundBetween):
        mask = _between(expr, provider)
        return ArraySlice(~mask if expr.negated else mask)
    if isinstance(expr, BoundIn):
        mask = _in_list(expr, provider)
        return ArraySlice(~mask if expr.negated else mask)
    if isinstance(expr, BoundLike):
        mask = _like(expr, provider)
        return ArraySlice(~mask if expr.negated else mask)
    if isinstance(expr, BoundAnd):
        # accumulate in place into an owned copy of the first term's
        # mask: one allocation however many conjuncts (a term's mask may
        # alias stored column data, so the copy is also what makes the
        # in-place fold safe)
        out = None
        for term in expr.terms:
            mask = evaluate_predicate(term, provider)
            out = (np.array(mask, dtype=bool) if out is None
                   else np.logical_and(out, mask, out=out))
        return ArraySlice(out)
    if isinstance(expr, BoundOr):
        out = None
        for term in expr.terms:
            mask = evaluate_predicate(term, provider)
            out = (np.array(mask, dtype=bool) if out is None
                   else np.logical_or(out, mask, out=out))
        return ArraySlice(out)
    if isinstance(expr, BoundNot):
        return ArraySlice(~evaluate_predicate(expr.term, provider))
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _to_values(operand):
    if isinstance(operand, DictSlice):
        return operand.decode()
    if isinstance(operand, ArraySlice):
        return operand.values
    return operand  # literal scalar


def _compare(expr: BoundCompare, provider: PositionalProvider) -> np.ndarray:
    op = _COMPARE_OPS[expr.op]
    left = _eval(expr.left, provider)
    right = _eval(expr.right, provider)
    # dictionary trick: compare the dictionary, gather through codes
    if isinstance(left, DictSlice) and _is_scalar(right):
        per_code = op(left.dictionary_values(), right)
        return per_code.astype(bool)[left.codes]
    if isinstance(right, DictSlice) and _is_scalar(left):
        per_code = op(left, right.dictionary_values())
        return per_code.astype(bool)[right.codes]
    return np.asarray(op(_to_values(left), _to_values(right)), dtype=bool)


def _between(expr: BoundBetween, provider: PositionalProvider) -> np.ndarray:
    target = _eval(expr.expr, provider)
    low = _eval(expr.low, provider)
    high = _eval(expr.high, provider)
    if isinstance(target, DictSlice) and _is_scalar(low) and _is_scalar(high):
        dv = target.dictionary_values()
        per_code = (dv >= low) & (dv <= high)
        return per_code.astype(bool)[target.codes]
    values = _to_values(target)
    return (values >= _to_values(low)) & (values <= _to_values(high))


def _in_list(expr: BoundIn, provider: PositionalProvider) -> np.ndarray:
    target = _eval(expr.expr, provider)
    if isinstance(target, DictSlice):
        codes = target.dictionary.lookup_many(list(expr.values))
        wanted = codes[codes >= 0]
        return np.isin(target.codes, wanted)
    values = _to_values(target)
    pool = np.array(list(expr.values), dtype=values.dtype if
                    values.dtype.kind != "O" else object)
    return np.isin(values, pool)


def _like(expr: BoundLike, provider: PositionalProvider) -> np.ndarray:
    target = _eval(expr.expr, provider)
    regex = like_to_regex(expr.pattern)
    if isinstance(target, DictSlice):
        per_code = np.array(
            [bool(regex.match(str(v))) for v in target.dictionary.values],
            dtype=bool,
        )
        if len(per_code) == 0:
            return np.zeros(len(target), dtype=bool)
        return per_code[target.codes]
    values = _to_values(target)
    return np.array([bool(regex.match(str(v))) for v in values], dtype=bool)


def _is_scalar(operand) -> bool:
    return not isinstance(operand, (ArraySlice, DictSlice))

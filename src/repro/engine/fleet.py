"""The serving fleet: N server processes over one arena and one store.

``astore serve --workers N`` runs a :class:`ServeFleet`: *N* spawned
worker processes, each a full :class:`~repro.engine.serve.AsyncEngine`
+ :class:`~repro.engine.serve.QueryServer` on its own event loop —
its own GIL, its own core — all answering on **one** listening address.
What PR 5 could only simulate with threads behind a single GIL becomes
real parallel serving:

* **One socket, N acceptors.**  Where the platform has ``SO_REUSEPORT``
  (Linux, the BSDs), every worker binds + listens on the same address
  and the kernel load-balances accepted connections across them.  The
  supervisor holds a bound (never listening) placeholder socket so the
  port stays reserved across worker respawns.  Without ``SO_REUSEPORT``
  the supervisor itself accepts and ships each connection's fd to a
  worker over its control pipe (``multiprocessing.reduction``) — same
  protocol, same drain rules, via
  :meth:`~repro.engine.serve.QueryServer.handle_socket`.
* **One data copy.**  In ``arena`` mode (the default) the supervisor
  exports the database once into a shared-memory
  :class:`~repro.core.arena.ColumnArena` and workers attach read-only,
  zero-copy — N workers, one copy of the columns, exported zone maps
  included.  ``copy`` mode gives every worker its own writable load
  from an ``.npz`` path instead (what the racing-mutation tests use).
* **One cache fleet-wide.**  The supervisor owns a
  :class:`~repro.core.shmcache.SharedQueryStore`; every worker's
  :class:`~repro.engine.cache.QueryCache` attaches it as the second
  level behind its plan/result tiers, so one worker's compile or
  execution is every sibling's warm hit, and mutation stamps broadcast
  through it keep cross-process invalidation exact.
* **Supervision.**  The supervisor respawns workers that die (a
  SIGKILLed worker costs its in-flight connections, nothing else — the
  stale-segment sweep plus kernel-released record locks mean no leaked
  ``/dev/shm`` segments and no stranded store lock).  A ``SHUTDOWN``
  received by *any* worker fans out: the worker tells the supervisor,
  the supervisor broadcasts ``drain`` to every sibling, each worker
  finishes its in-flight requests and exits, and :meth:`ServeFleet.wait`
  returns 0 only after every child is reaped.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.connection
import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.arena import ArenaManifest, ColumnArena, attach_database
from ..core.shmcache import (
    SharedQueryStore,
    close_attached_stores,
    store_available,
    sweep_stale_segments,
)
from ..core.statistics import fresh_zone_entries
from ..errors import AStoreError
from .cache import query_cache_for
from .chaos import chaos_point
from .executor import EngineOptions
from .serve import AsyncEngine, QueryServer, serve_tcp

#: Control-pipe messages (worker -> supervisor are tuples; supervisor ->
#: worker are the strings "drain" / ("conn",) + an fd in handoff mode).
_READY, _SHUTDOWN, _EXITING = "ready", "shutdown", "exiting"


def reuseport_available() -> bool:
    """Whether this platform can share one listening port kernel-side."""
    return hasattr(socket, "SO_REUSEPORT")


def _reuseport_socket(host: str, port: int) -> socket.socket:
    """A TCP socket bound with ``SO_REUSEPORT`` (not yet listening)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass
class FleetSpec:
    """Everything a spawned worker needs (picklable, shipped once)."""

    host: str
    port: int
    options: EngineOptions
    store_name: str = ""                      # "" = no shared store
    manifest: Optional[ArenaManifest] = None  # arena mode
    database_path: str = ""                   # copy mode
    max_concurrency: Optional[int] = None
    drain_seconds: float = 10.0
    handoff: bool = False                     # no SO_REUSEPORT: fd handoff
    request_timeout: Optional[float] = None   # per-request deadline (s)
    max_pending: int = 0                      # overload front door (0 = off)


def _fleet_worker_main(spec: FleetSpec, index: int, conn) -> None:
    """Entry point of one spawned fleet worker."""
    import asyncio

    # a `kill@fleet.worker` rule makes this worker die on spawn — the
    # deterministic crash the supervisor's backoff respawn is tested with
    chaos_point("fleet.worker")
    try:
        asyncio.run(_fleet_worker(spec, index, conn))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass


async def _fleet_worker(spec: FleetSpec, index: int, conn) -> None:
    import asyncio

    attached = None
    if spec.manifest is not None:
        attached = attach_database(spec.manifest)
        db = attached.db
        # seed the zone tier from the parent's exported summaries, the
        # same way process-backend shard workers do
        cache = query_cache_for(db)
        for store_key, value in attached.zone_maps:
            table = store_key[1]
            stamps = ((table, db.table(table).mutation_count),)
            cache.put("zone", store_key, value, stamps, value.nbytes)
    else:
        from ..io import load_database
        db = load_database(spec.database_path)

    options = spec.options
    if spec.store_name:
        options = replace(options, shared_store=spec.store_name)
    engine = AsyncEngine(db, options=options,
                         max_concurrency=spec.max_concurrency)

    loop = asyncio.get_running_loop()
    if spec.handoff:
        server = QueryServer(engine=engine, drain_seconds=spec.drain_seconds,
                             request_timeout=spec.request_timeout,
                             max_pending=spec.max_pending)
    else:
        sock = _reuseport_socket(spec.host, spec.port)
        server = await serve_tcp(engine, sock=sock,
                                 request_timeout=spec.request_timeout,
                                 max_pending=spec.max_pending)
        server.drain_seconds = spec.drain_seconds

    def on_control() -> None:
        from multiprocessing import reduction
        try:
            while conn.poll():
                message = conn.recv()
                if message == "drain":
                    server.shutdown_event.set()
                elif message == ("conn",):
                    fd = reduction.recv_handle(conn)
                    client = socket.socket(fileno=fd)
                    loop.create_task(server.handle_socket(client))
        except (EOFError, OSError):
            # supervisor died: drain what we have and exit
            with contextlib.suppress(Exception):
                loop.remove_reader(conn.fileno())
            server.shutdown_event.set()

    loop.add_reader(conn.fileno(), on_control)
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server.shutdown_event.set)

    async def notify_shutdown() -> None:
        # tell the supervisor the moment a SHUTDOWN (or signal) lands,
        # so the drain fans out to siblings while we are still draining
        await server.shutdown_event.wait()
        with contextlib.suppress(Exception):
            conn.send((_SHUTDOWN, os.getpid()))

    notifier = asyncio.create_task(notify_shutdown())
    conn.send((_READY, os.getpid()))
    try:
        await server.wait_closed()  # serves until SHUTDOWN/drain, then drains
    finally:
        notifier.cancel()
        with contextlib.suppress(Exception):
            await notifier
        with contextlib.suppress(Exception):
            loop.remove_reader(conn.fileno())
        with contextlib.suppress(Exception):
            conn.send((_EXITING, os.getpid(), server.requests))
        if attached is not None:
            attached.close()
        close_attached_stores()


@dataclass
class _Worker:
    index: int
    process: "multiprocessing.process.BaseProcess"
    pipe: "multiprocessing.connection.Connection"
    clean_exit: bool = False
    spawned: float = 0.0  # monotonic spawn time — crash streaks reset
    #                       when a worker survived long enough


class ServeFleet:
    """Supervisor for a multi-process serving fleet.

    Typical use (the CLI's ``astore serve --workers N`` path)::

        fleet = ServeFleet(db, options=options, workers=4, port=7433)
        host, port = fleet.start()
        exit_code = fleet.wait()     # serves until a SHUTDOWN fans out

    ``data_mode="arena"`` (default) exports *db* once into shared
    memory; ``data_mode="copy"`` makes every worker load its own
    writable copy from *database_path* (mutation tests).  The shared
    query store is on by default wherever the platform supports it.
    """

    def __init__(self, db=None, *, database_path: str = "",
                 options: Optional[EngineOptions] = None,
                 host: str = "127.0.0.1", port: int = 0, workers: int = 2,
                 max_concurrency: Optional[int] = None,
                 data_mode: str = "arena", shared_store: bool = True,
                 store_bytes: int = 64 << 20, drain_seconds: float = 10.0,
                 respawn_limit: int = 16, respawn_base: float = 0.1,
                 respawn_cap: float = 5.0,
                 request_timeout: Optional[float] = None,
                 max_pending: int = 0,
                 force_handoff: bool = False,
                 announce=None):
        if os.name != "posix":
            raise AStoreError("the serving fleet requires a POSIX platform")
        if data_mode not in ("arena", "copy"):
            raise AStoreError(f"unknown fleet data mode {data_mode!r}")
        if data_mode == "arena" and db is None:
            raise AStoreError("arena mode needs a loaded database")
        if data_mode == "copy" and not database_path:
            raise AStoreError("copy mode needs a database path")
        self.db = db
        self.database_path = str(database_path)
        self.options = options or EngineOptions(parallel_backend="serial",
                                                cache_results=True)
        self.host, self.port = host, int(port)
        self.workers = max(1, int(workers))
        self.max_concurrency = max_concurrency
        self.data_mode = data_mode
        self.shared_store = bool(shared_store) and store_available()
        self.store_bytes = store_bytes
        self.drain_seconds = drain_seconds
        self.respawn_limit = int(respawn_limit)
        self.respawn_base = float(respawn_base)
        self.respawn_cap = float(respawn_cap)
        self.request_timeout = request_timeout
        self.max_pending = int(max_pending)
        self.handoff = bool(force_handoff) or not reuseport_available()
        self.announce = announce or (lambda *_: None)
        self.swept: List[str] = []
        self.respawns = 0
        #: every backoff applied before a respawn, in order (seconds) —
        #: what the crash-loop tests assert exponential growth on
        self.respawn_backoffs: List[float] = []
        self._crash_counts: Dict[int, int] = {}
        self._respawn_at: Dict[int, float] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: Dict[int, _Worker] = {}
        self._spec: Optional[FleetSpec] = None
        self._store: Optional[SharedQueryStore] = None
        self._arena: Optional[ColumnArena] = None
        self._placeholder: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._accept_stop = threading.Event()
        self._pipe_lock = threading.Lock()
        self._draining = False
        self._failed = False
        self._started = False
        self._closed = False
        self._rr = 0  # round-robin cursor (handoff mode)

    # -- lifecycle ----------------------------------------------------------

    def start(self, ready_timeout: float = 120.0) -> Tuple[str, int]:
        """Sweep stale segments, export data, spawn workers, and wait
        until every worker is accepting.  Returns the bound address."""
        if self._started:
            raise AStoreError("fleet already started")
        self._started = True
        self.swept = sweep_stale_segments()
        if self.swept:
            self.announce(f"astore serve: swept stale shared-store "
                          f"segments: {', '.join(self.swept)}")
        if self.shared_store:
            self._store = SharedQueryStore.create(data_bytes=self.store_bytes)
        if self.handoff:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((self.host, self.port))
            self._listener.listen(128)
            self.port = self._listener.getsockname()[1]
        else:
            # a bound, never-listening placeholder: reserves the port for
            # the reuseport group across worker deaths and respawns
            self._placeholder = _reuseport_socket(self.host, self.port)
            self.port = self._placeholder.getsockname()[1]

        manifest = None
        if self.data_mode == "arena":
            self._arena = ColumnArena.export(
                self.db, zone_entries=fresh_zone_entries(
                    self.db, query_cache_for(self.db)))
            manifest = self._arena.manifest
        self._spec = FleetSpec(
            host=self.host, port=self.port, options=self.options,
            store_name=self._store.segment if self._store else "",
            manifest=manifest, database_path=self.database_path,
            max_concurrency=self.max_concurrency,
            drain_seconds=self.drain_seconds, handoff=self.handoff,
            request_timeout=self.request_timeout,
            max_pending=self.max_pending)

        for index in range(self.workers):
            self._spawn(index)
        self._await_ready(ready_timeout)
        if self.handoff:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="astore-fleet-accept",
                daemon=True)
            self._accept_thread.start()
        self.announce(
            f"astore serve: fleet of {self.workers} worker(s) listening on "
            f"{self.host}:{self.port} "
            f"({'fd-handoff' if self.handoff else 'SO_REUSEPORT'}, "
            f"data={self.data_mode}, "
            f"shared_store={'on' if self._store else 'off'})")
        return (self.host, self.port)

    def _spawn(self, index: int) -> None:
        parent_pipe, child_pipe = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main, args=(self._spec, index, child_pipe),
            name=f"astore-fleet-{index}")
        process.start()
        child_pipe.close()
        self._workers[index] = _Worker(index, process, parent_pipe,
                                       spawned=time.monotonic())

    def _await_ready(self, timeout: float) -> None:
        pending = set(self._workers)
        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise AStoreError(
                    f"fleet workers not ready after {timeout:.0f}s "
                    f"(still waiting on {sorted(pending)})")
            ready = multiprocessing.connection.wait(
                [self._workers[i].pipe for i in pending],
                timeout=min(remaining, 0.5))
            for pipe in ready:
                index = next(i for i in pending
                             if self._workers[i].pipe is pipe)
                try:
                    # supervisor<->worker control pipe, not a network
                    # path: chaos coverage here would break respawn
                    message = pipe.recv()  # astore: ignore[chaos-coverage]
                except (EOFError, OSError):
                    process = self._workers[index].process
                    process.join(timeout=5)
                    exitcode = process.exitcode
                    self.close()
                    raise AStoreError(
                        f"fleet worker {index} died during startup "
                        f"(exitcode={exitcode})") from None
                if message and message[0] == _READY:
                    pending.discard(index)

    # -- serving ------------------------------------------------------------

    def wait(self) -> int:
        """Monitor the fleet until it drains; respawn dead workers.

        A crashed worker respawns after an exponential backoff with
        jitter — ``min(cap, base·2^(streak-1)) · (1 + 0.25·rand)`` —
        so a worker crashing on arrival (bad data, poisoned query,
        chaos rule) cannot pin the supervisor in a hot fork loop; the
        streak resets once a worker survives ~30 s.  Every applied
        backoff is recorded in :attr:`respawn_backoffs` and announced.

        Returns the exit code: 0 when a SHUTDOWN (or
        :meth:`request_stop`) drained every worker and all children
        were reaped cleanly, 1 otherwise."""
        while self._workers or self._respawn_at:
            pipes = [w.pipe for w in self._workers.values()]
            if pipes:
                with contextlib.suppress(OSError):
                    for pipe in multiprocessing.connection.wait(pipes,
                                                                timeout=0.25):
                        self._drain_pipe(pipe)
            else:  # only pending respawns left — pace the loop
                time.sleep(0.05)
            now = time.monotonic()
            for index in list(self._respawn_at):
                if self._draining:
                    self._respawn_at.clear()
                    break
                if now >= self._respawn_at[index]:
                    del self._respawn_at[index]
                    self._spawn(index)
            for index in list(self._workers):
                worker = self._workers[index]
                if worker.process.is_alive():
                    continue
                worker.process.join()
                self._drain_pipe(worker.pipe)  # flush any final messages
                worker.pipe.close()
                del self._workers[index]
                if self._draining or worker.clean_exit:
                    if not worker.clean_exit and worker.process.exitcode != 0:
                        self._failed = True
                    continue
                # unexpected death mid-serve: respawn into the same slot
                self.respawns += 1
                if self.respawns > self.respawn_limit:
                    self.announce(
                        f"astore serve: worker {index} died "
                        f"(exitcode={worker.process.exitcode}); respawn "
                        f"limit {self.respawn_limit} exceeded, draining")
                    self._failed = True
                    self.request_stop()
                    continue
                streak = self._crash_counts.get(index, 0) + 1
                if time.monotonic() - worker.spawned >= 30.0:
                    streak = 1  # it served for a while: not a crash loop
                self._crash_counts[index] = streak
                backoff = (min(self.respawn_cap,
                               self.respawn_base * 2 ** (streak - 1))
                           * (1.0 + 0.25 * random.random()))
                self.respawn_backoffs.append(backoff)
                self._respawn_at[index] = time.monotonic() + backoff
                self.announce(
                    f"astore serve: worker {index} died "
                    f"(exitcode={worker.process.exitcode}); respawning in "
                    f"{backoff * 1e3:.0f} ms (crash {streak})")
        self.close()
        return 0 if (self._draining and not self._failed) else 1

    def _drain_pipe(self, pipe) -> None:
        try:
            while pipe.poll():
                # control pipe (see _await_ready): not chaos surface
                message = pipe.recv()  # astore: ignore[chaos-coverage]
                if not message:
                    continue
                if message[0] == _SHUTDOWN and not self._draining:
                    self.announce("astore serve: SHUTDOWN received; "
                                  "draining fleet")
                    self.request_stop()
                elif message[0] == _EXITING:
                    for worker in self._workers.values():
                        if worker.pipe is pipe:
                            worker.clean_exit = True
        except (EOFError, OSError):
            pass

    def request_stop(self) -> None:
        """Fan a graceful drain out to every worker."""
        self._draining = True
        self._accept_stop.set()
        for worker in self._workers.values():
            if worker.process.is_alive():
                with contextlib.suppress(Exception):
                    with self._pipe_lock:
                        # graceful-drain control message: chaos must not
                        # be able to wedge shutdown
                        worker.pipe.send("drain")  # astore: ignore[chaos-coverage]

    # -- fd handoff (no SO_REUSEPORT) ---------------------------------------

    def _accept_loop(self) -> None:  # pragma: no cover - exercised via tests
        from multiprocessing import reduction

        self._listener.settimeout(0.25)
        while not self._accept_stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            worker = self._pick_worker()
            if worker is None:
                client.close()
                continue
            try:
                # the fd handoff is this path's network hop: make it
                # injectable so chaos runs can drop a connection between
                # accept and the worker picking it up
                chaos_point("fleet.handoff", payload=worker.process.pid)
                with self._pipe_lock:
                    worker.pipe.send(("conn",))
                    reduction.send_handle(worker.pipe, client.fileno(),
                                          worker.process.pid)
            except Exception:
                pass
            client.close()  # the worker holds its own duplicate now

    def _pick_worker(self) -> Optional[_Worker]:
        alive = [w for w in self._workers.values() if w.process.is_alive()]
        if not alive:
            return None
        self._rr += 1
        return alive[self._rr % len(alive)]

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Release supervisor-owned resources (idempotent).  Called by
        :meth:`wait` after the last child is reaped; safe on error paths
        with workers still up (they are terminated, not drained)."""
        if self._closed:
            return
        self._closed = True
        self._accept_stop.set()
        for worker in self._workers.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            with contextlib.suppress(Exception):
                worker.pipe.close()
        self._workers.clear()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
        for sock in (self._placeholder, self._listener):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        self._placeholder = self._listener = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ServeFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.request_stop()
        if self._workers:
            self.wait()
        self.close()


def run_fleet(db=None, *, database_path: str = "",
              options: Optional[EngineOptions] = None,
              host: str = "127.0.0.1", port: int = 7433, workers: int = 2,
              max_concurrency: Optional[int] = None, data_mode: str = "arena",
              shared_store: bool = True,
              request_timeout: Optional[float] = None,
              max_pending: int = 0,
              announce=print) -> int:
    """``astore serve --workers N``: start a fleet, serve until a
    SHUTDOWN fans out (Ctrl-C drains gracefully), return the exit code."""
    fleet = ServeFleet(db, database_path=database_path, options=options,
                       host=host, port=port, workers=workers,
                       max_concurrency=max_concurrency, data_mode=data_mode,
                       shared_store=shared_store,
                       request_timeout=request_timeout,
                       max_pending=max_pending, announce=announce)
    fleet.start()
    try:
        code = fleet.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        announce("astore serve: interrupt; draining fleet")
        fleet.request_stop()
        code = fleet.wait()
    announce(f"astore serve: fleet stopped (respawns={fleet.respawns}, "
             f"exit={code})")
    return code

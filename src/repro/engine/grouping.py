"""Group vectors, group axes, and the Measure Index (Section 4.3).

For every GROUP BY column the engine builds a *group axis*: a compact
integer code domain plus the decoded values of each code.  Dimension-table
axes are the paper's *group vectors* — codes precomputed once over the
(first-level) dimension during leaf processing, then mapped to fact rows
by probing through the AIR column.  The per-row combination of all axis
codes is the paper's *Measure Index*: the flattened multidimensional-array
index of each fact tuple's group.

Group keys that reach the fact table through the *same* first-level
dimension are fused into one axis over their observed value combinations.
This implements the paper's remark that "the dimensionality of the
aggregation array can be further reduced if there are functional
dependencies among the grouping columns": e.g. grouping by ``d_year`` and
``d_yearmonth`` yields one axis of ~84 observed pairs instead of a
7 × 84 = 588-cell plane, and snowflake keys like ``n_name``/``r_name``
(both folding onto ``customer``) collapse the same way.

All encodings are global (independent of which fact rows are selected), so
per-partition aggregation states merge without re-encoding — this is what
makes the multicore path of Section 5 a pure element-wise merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Database
from ..errors import ExecutionError, PlanError
from ..plan.binder import GroupKey, LogicalPlan
from .slice import DictSlice, PositionalProvider, dimension_provider


@dataclass
class GroupAxis:
    """One dimension of the aggregation array.

    An axis decodes into one output column per key in ``keys``;
    ``columns[name][code]`` is the value of output *name* for axis code
    *code*, and ``card`` is the axis domain size.  For axes on dimension
    tables, ``dim_codes`` is the group vector over the rows of
    ``first_dim`` and fact rows obtain their code by a positional gather.
    For fact-table axes the code is derived from the value itself
    (dictionary code, offset integer, or sorted-unique rank).
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    keys: Tuple[GroupKey, ...]
    card: int
    columns: Dict[str, np.ndarray]
    first_dim: Optional[str] = None
    dim_codes: Optional[np.ndarray] = None
    int_offset: Optional[int] = None
    sorted_domain: Optional[np.ndarray] = None

    @property
    def key(self) -> GroupKey:
        """The single key of a one-column axis."""
        if len(self.keys) != 1:
            raise ExecutionError("axis has multiple keys")
        return self.keys[0]

    @property
    def values(self) -> np.ndarray:
        """Decoded values of a one-column axis (code order)."""
        return self.columns[self.key.name]

    def fact_codes(self, provider: PositionalProvider) -> np.ndarray:
        """Codes for each base row of *provider* (the fact-side gather)."""
        if self.dim_codes is not None:
            positions = provider.positions_for(self.first_dim)
            if positions is None:
                return self.dim_codes
            return self.dim_codes[positions]
        column = self.key.column
        sl = provider.fetch(column.table, column.name)
        if isinstance(sl, DictSlice):
            return sl.codes.astype(np.int64)
        if self.int_offset is not None:
            return (sl.values.astype(np.int64) - self.int_offset)
        codes = np.searchsorted(self.sorted_domain, sl.values)
        return codes.astype(np.int64)


def single_axis(key: GroupKey, card: int, values: np.ndarray,
                **kwargs) -> GroupAxis:
    """Convenience constructor for a one-column axis."""
    return GroupAxis(keys=(key,), card=max(1, card),
                     columns={key.name: values}, **kwargs)


def build_axes(db: Database, logical: LogicalPlan,
               memo=None) -> List[GroupAxis]:
    """Build the group axes, fusing same-path dimension keys.

    Axes are emitted in GROUP BY order of their first constituent key;
    the output columns themselves are reassembled by name, so fusing
    never changes the result, only the Measure Index domain.

    Axis encodings are *global* — independent of which fact rows any
    query selects — so they are exactly shareable between queries.
    ``memo`` taps into that: a callable ``memo(key, involved_tables,
    build)`` that may return a cached axis for *key* (validated against
    the mutation stamps of *involved_tables*) or call ``build()`` and
    remember it (see :mod:`repro.engine.cache`).
    """
    axes: List[GroupAxis] = []
    dim_batches: Dict[str, List[GroupKey]] = {}
    order: List[tuple] = []
    for key in logical.group_keys:
        if key.column.table == logical.root:
            order.append(("fact", key))
        else:
            first_dim = _first_dim_of(logical, key.column.table)
            if first_dim not in dim_batches:
                order.append(("dim", first_dim))
            dim_batches.setdefault(first_dim, []).append(key)
    for kind, payload in order:
        if kind == "fact":
            def build(payload=payload):
                return _fact_axis(db, logical, payload)
            involved = (logical.root,)
            key_id = ("fact", logical.root, payload)
        else:
            keys = tuple(dim_batches[payload])

            def build(payload=payload, keys=keys):
                return _dim_axis(db, logical, payload, list(keys))
            # the axis reads the whole subtree reachable through the
            # first-level dimension (snowflake keys gather through the
            # intermediate AIR columns), so all of it stamps the entry
            involved = tuple(sorted(
                {payload} | logical.subtree_of(payload)))
            key_id = ("dim", payload, keys, involved)
        axes.append(build() if memo is None else memo(key_id, involved, build))
    return axes


def _dim_axis(db: Database, logical: LogicalPlan, first_dim: str,
              keys: List[GroupKey]) -> GroupAxis:
    """A (possibly fused) axis over keys sharing one first-level dim."""
    provider = dimension_provider(db, first_dim, logical.paths)
    per_key: List[tuple] = []
    for key in keys:
        sl = provider.fetch(key.column.table, key.column.name)
        if isinstance(sl, DictSlice):
            per_key.append((key, sl.codes.astype(np.int64),
                            len(sl.dictionary), sl.dictionary_values()))
        else:
            uniq, inverse = np.unique(sl.values, return_inverse=True)
            per_key.append((key, inverse.astype(np.int64), len(uniq), uniq))

    if len(per_key) == 1:
        key, codes, card, values = per_key[0]
        return single_axis(key, card, values, first_dim=first_dim,
                           dim_codes=codes)

    # functional-dependency fusion: one code per *observed* combination
    combined = per_key[0][1].copy()
    for _, codes, card, _ in per_key[1:]:
        combined = combined * np.int64(max(1, card)) + codes
    uniq, inverse = np.unique(combined, return_inverse=True)
    columns: Dict[str, np.ndarray] = {}
    representative = np.full(len(uniq), -1, dtype=np.int64)
    representative[inverse] = np.arange(len(combined), dtype=np.int64)
    for key, codes, card, values in per_key:
        columns[key.name] = values[codes[representative]]
    return GroupAxis(
        keys=tuple(k for k, _, _, _ in per_key),
        card=max(1, len(uniq)),
        columns=columns,
        first_dim=first_dim,
        dim_codes=inverse.astype(np.int64),
    )


def _fact_axis(db: Database, logical: LogicalPlan, key: GroupKey) -> GroupAxis:
    """Axis over a fact-table column, encoded from global column stats."""
    column = db.table(logical.root)[key.column.name]
    from ..core.column import DictColumn

    if isinstance(column, DictColumn):
        values = np.empty(column.cardinality, dtype=object)
        values[:] = column.dictionary.values
        return single_axis(key, column.cardinality, values)
    raw = column.values()
    if len(raw) == 0:
        return single_axis(key, 1, np.zeros(1, dtype=raw.dtype), int_offset=0)
    if raw.dtype.kind in ("i", "u"):
        lo, hi = int(raw.min()), int(raw.max())
        domain = hi - lo + 1
        if domain <= 4 * len(np.unique(raw[: 65536])) + 1024 or domain <= 65536:
            return single_axis(
                key, domain, np.arange(lo, hi + 1, dtype=raw.dtype),
                int_offset=lo)
    uniq = np.unique(raw)
    return single_axis(key, len(uniq), uniq, sorted_domain=uniq)


def _first_dim_of(logical: LogicalPlan, table: str) -> str:
    for path in logical.paths:
        if table in path.tables[1:]:
            return path.references[0].parent_table
    raise PlanError(f"table {table!r} is not on any reference path")


def combine_codes(code_arrays: Sequence[np.ndarray],
                  cards: Sequence[int]) -> np.ndarray:
    """Ravel per-axis codes into the flat Measure Index.

    One owned allocation (the output), however many axes: later axes
    fold in with in-place multiply-add instead of per-axis temporaries —
    this runs once per morsel on every selected row.
    """
    if not code_arrays:
        raise ExecutionError("no group axes to combine")
    composite = code_arrays[0].astype(np.int64)  # astype copies: owned
    for codes, card in zip(code_arrays[1:], cards[1:]):
        np.multiply(composite, np.int64(card), out=composite)
        np.add(composite, codes, out=composite, casting="unsafe")
    return composite


def total_groups(cards: Sequence[int]) -> int:
    """Size of the dense aggregation array (product of axis domains)."""
    total = 1
    for card in cards:
        total *= max(1, card)
    return total


def decode_group_columns(axes: Sequence[GroupAxis],
                         composite: np.ndarray) -> dict:
    """Unravel composite codes back into per-key value columns."""
    out = {}
    remaining = composite.astype(np.int64)
    for axis in reversed(list(axes)):
        codes = remaining % axis.card
        remaining = remaining // axis.card
        for name, values in axis.columns.items():
            out[name] = values[codes]
    return out

"""Cluster membership: heartbeat failure detection, join, and rejoin.

PR 8's ``remote`` backend took its node list at construction and never
revised it: a SIGKILLed node was lost to that coordinator forever.  This
module replaces the static list with a **membership view**:

* :class:`ClusterView` — the state machine.  Each member is ``alive``,
  ``suspect``, or ``dead``; a missed heartbeat moves alive → suspect
  (after ``suspect_after`` consecutive misses) and suspect → dead
  (after ``dead_after``).  A successful probe moves suspect → alive;
  **dead is sticky** — a dead member is only readmitted by
  re-registering, which bumps its *incarnation* so every observer can
  tell a genuine restart from a flapping link.
* :class:`MembershipServer` — the coordinator-side TCP endpoint
  (``astore serve --membership-port``, or embedded in a bench).  Nodes
  self-register (``astore node --join host:p`` sends a ``join`` frame);
  the join reply carries the coordinator's current mutation stamps so a
  restarted node can seed its :class:`~repro.core.shmcache.StampLane`
  *before* accepting shards — a stale copy refuses work instead of
  serving pre-mutation answers.  A prober thread heartbeats every
  registered member (the same ping protocol the scatter layer uses) and
  drives the view's transitions.
* :class:`MembershipClient` — a cheap read-side handle for processes
  that are not the coordinator (fleet serve workers): polls ``members``
  with a small TTL cache and is duck-compatible with
  :class:`ClusterView` where :class:`RemoteShardBackend` reads it.

Chaos sites: ``node.register`` (a join announcement arriving at the
server) and ``membership.heartbeat`` (one outgoing probe) — a ``flap``
rule armed on the heartbeat site drives a member deterministically
through alive → suspect → alive without ever reaching dead.

The wire protocol reuses :func:`~repro.engine.distributed.send_frame` /
``recv_frame`` (length-prefixed pickle frames), one request per
connection round trip:

* ``("join", address, pid)`` → ``("ok", stamps, incarnation)``
* ``("leave", address)``     → ``("ok",)``
* ``("members",)``           → ``("ok", members, generation)`` where
  *members* is ``[(address, state, incarnation), ...]``
* ``("ping",)``              → ``("pong", pid)``
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import MembershipError
from .chaos import chaos_point
from .distributed import _CONNECT_TIMEOUT, recv_frame, send_frame

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


#: Lock contract, machine-checked by ``astore lint`` (lock-discipline):
#: the member table and its transition log shift together under the
#: view lock (register/probe/leave all read-modify-write both); the
#: coordinator-side MembershipClient snapshot and its fetch time move
#: together under the client lock.
GUARDED_BY = {
    "ClusterView._members": "self._lock",
    "ClusterView.transitions": "self._lock",
    "MembershipClient._snapshot": "self._lock",
    "MembershipClient._fetched_at": "self._lock",
}


@dataclass
class Member:
    """One node as the membership view sees it."""

    address: str
    state: str = ALIVE
    incarnation: int = 1
    missed: int = 0
    pid: int = 0

    def snapshot(self) -> Tuple[str, str, int]:
        return (self.address, self.state, self.incarnation)


class ClusterView:
    """The membership state machine (thread-safe).

    ``suspect_after`` / ``dead_after`` are counts of *consecutive*
    missed heartbeats: with the defaults a member is suspect after 2
    misses and dead after 4.  ``generation`` increments on every state
    change so readers can cheaply detect "anything moved"; every
    transition is appended to ``transitions`` as
    ``(address, old_state, new_state, generation)`` for tests to pin.
    """

    def __init__(self, suspect_after: int = 2, dead_after: int = 4):
        if not 0 < suspect_after <= dead_after:
            raise MembershipError(
                f"need 0 < suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}")
        self.suspect_after = int(suspect_after)
        self.dead_after = int(dead_after)
        self.generation = 0
        self.transitions: List[Tuple[str, str, str, int]] = []
        self._members: Dict[str, Member] = {}
        self._lock = threading.Lock()

    def _shift(self, member: Member, state: str) -> None:  # astore: holds[self._lock]
        if member.state == state:
            return
        old, member.state = member.state, state
        self.generation += 1
        self.transitions.append((member.address, old, state, self.generation))

    # -- writes -------------------------------------------------------------

    def register(self, address: str, pid: int = 0) -> Member:
        """A node announced itself: admit it as alive.  Re-registering
        (the rejoin path, dead or not) bumps the incarnation so links
        that gave up on the old process know this is a new one."""
        if ":" not in address:
            raise MembershipError(
                f"bad member address {address!r} (expected host:port)")
        with self._lock:
            member = self._members.get(address)
            if member is None:
                member = Member(address=address, pid=pid)
                self._members[address] = member
                self.generation += 1
                self.transitions.append(
                    (address, "", ALIVE, self.generation))
            else:
                member.incarnation += 1
                member.pid = pid or member.pid
                member.missed = 0
                self._shift(member, ALIVE)
            return member

    def leave(self, address: str) -> None:
        """A node deregistered (graceful shutdown): drop it entirely —
        a clean exit is not a failure and should not read as one."""
        with self._lock:
            member = self._members.pop(address, None)
            if member is not None:
                self.generation += 1
                self.transitions.append(
                    (address, member.state, "", self.generation))

    def record_probe(self, address: str, ok: bool) -> Optional[str]:
        """Fold one heartbeat result into the view; returns the member's
        state after the probe (None if unknown).  Dead stays dead: only
        :meth:`register` readmits."""
        with self._lock:
            member = self._members.get(address)
            if member is None:
                return None
            if member.state == DEAD:
                return DEAD
            if ok:
                member.missed = 0
                self._shift(member, ALIVE)
            else:
                member.missed += 1
                if member.missed >= self.dead_after:
                    self._shift(member, DEAD)
                elif member.missed >= self.suspect_after:
                    self._shift(member, SUSPECT)
            return member.state

    # -- reads --------------------------------------------------------------

    def members(self) -> List[Tuple[str, str, int]]:
        """Snapshot of every member as ``(address, state, incarnation)``."""
        with self._lock:
            return [m.snapshot() for m in self._members.values()]

    def get(self, address: str) -> Optional[Member]:
        with self._lock:
            return self._members.get(address)

    def live_addresses(self) -> List[str]:
        """Addresses a scatter wave may target (alive + suspect — a
        suspect node still serves until it is actually declared dead)."""
        with self._lock:
            return [m.address for m in self._members.values()
                    if m.state != DEAD]

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {m.address: m.state for m in self._members.values()}


def _ping_member(address: str, timeout: float) -> bool:
    """One heartbeat probe against a shard node's ping endpoint."""
    host, _, port = address.rpartition(":")
    try:
        chaos_point("membership.heartbeat")
        with socket.create_connection(
                (host, int(port)), timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_frame(sock, ("ping",))
            response = recv_frame(sock)
        return bool(response) and response[0] == "pong"
    except Exception:  # noqa: BLE001 - any failure is one missed beat
        return False


class MembershipServer:
    """The coordinator's membership endpoint: a :class:`ClusterView`
    behind a TCP port, plus the prober thread that feeds it.

    *stamps_fn* supplies the coordinator's current mutation stamps for
    join replies (usually ``lambda: database_stamp(db)``); a node folds
    them into its lane before taking shards, which is the whole rejoin
    catch-up protocol — no data moves, only the fencing stamps do.
    """

    def __init__(self, view: Optional[ClusterView] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 stamps_fn: Optional[Callable[[], tuple]] = None,
                 probe_seconds: float = 0.5,
                 probe_timeout: float = 2.0):
        self.view = view if view is not None else ClusterView()
        self.stamps_fn = stamps_fn or (lambda: ())
        self.probe_seconds = float(probe_seconds)
        self.probe_timeout = float(probe_timeout)
        self.probes = 0
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._threads = [
            threading.Thread(target=self._serve_loop,
                             name="astore-membership-serve", daemon=True)]
        if self.probe_seconds > 0:
            self._threads.append(threading.Thread(
                target=self._probe_loop, name="astore-membership-probe",
                daemon=True))

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "MembershipServer":
        for thread in self._threads:
            thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()

    def __enter__(self) -> "MembershipServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request loop -------------------------------------------------------

    def _serve_loop(self) -> None:
        self._listener.settimeout(0.25)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="astore-membership-conn",
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with contextlib.suppress(Exception), conn:
            conn.settimeout(10.0)
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (EOFError, OSError):
                    break
                try:
                    response = self._handle(request)
                except Exception as exc:  # noqa: BLE001 - answer, not tear
                    response = ("err", f"{type(exc).__name__}: {exc}")
                send_frame(conn, response)

    def _handle(self, request) -> tuple:
        kind = request[0]
        if kind == "join":
            # a kill/error here is a join announcement lost in flight
            chaos_point("node.register")
            member = self.view.register(
                request[1], request[2] if len(request) > 2 else 0)
            return ("ok", self.stamps_fn(), member.incarnation)
        if kind == "leave":
            self.view.leave(request[1])
            return ("ok",)
        if kind == "members":
            return ("ok", self.view.members(), self.view.generation)
        if kind == "ping":
            return ("pong", os.getpid())
        return ("err", f"unknown membership request {kind!r}")

    # -- prober -------------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_seconds):
            for address, state, _ in self.view.members():
                if state == DEAD or self._stop.is_set():
                    continue
                ok = _ping_member(address, self.probe_timeout)
                self.probes += 1
                self.view.record_probe(address, ok)


def _membership_request(address: str, message, timeout: float) -> tuple:
    """One round trip against a membership server."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise MembershipError(
            f"bad membership address {address!r} (expected host:port)")
    # injectable client-side failure for join/members round trips, so
    # chaos runs can exercise unreachable-membership paths
    chaos_point("membership.request", payload=message)
    try:
        with socket.create_connection(
                (host, int(port)),
                timeout=min(_CONNECT_TIMEOUT, timeout)) as sock:
            sock.settimeout(timeout)
            send_frame(sock, message)
            response = recv_frame(sock)
    except MembershipError:
        raise
    except Exception as exc:
        raise MembershipError(
            f"membership server {address} unreachable: {exc}") from exc
    if not isinstance(response, tuple) or not response:
        raise MembershipError(f"malformed membership reply {response!r}")
    if response[0] == "err":
        raise MembershipError(f"membership server {address}: {response[1]}")
    return response


def announce_join(membership_address: str, node_address: str,
                  pid: int = 0, timeout: float = 5.0) -> Tuple[tuple, int]:
    """``astore node --join``: announce *node_address* to the membership
    server; returns ``(stamps, incarnation)`` from the join reply."""
    response = _membership_request(
        membership_address, ("join", node_address, pid or os.getpid()),
        timeout)
    return response[1], response[2]


def announce_leave(membership_address: str, node_address: str,
                   timeout: float = 5.0) -> None:
    """Graceful deregistration (SIGTERM path); best-effort by design —
    the caller is exiting either way."""
    with contextlib.suppress(MembershipError):
        _membership_request(
            membership_address, ("leave", node_address), timeout)


class MembershipClient:
    """Read-side handle on a remote membership view.

    Duck-compatible with :class:`ClusterView` where the scatter backend
    reads it (``members()`` / ``live_addresses()`` / ``generation``);
    polls the server at most every *ttl_seconds* and serves the cached
    snapshot in between, so a scatter wave never blocks on a membership
    round trip that just happened.  An unreachable server degrades to
    the last snapshot (an empty one before first contact) rather than
    failing the query.
    """

    def __init__(self, address: str, ttl_seconds: float = 0.25,
                 timeout: float = 2.0):
        self.address = address
        self.ttl_seconds = float(ttl_seconds)
        self.timeout = float(timeout)
        self.generation = 0
        self._snapshot: List[Tuple[str, str, int]] = []
        self._fetched_at = float("-inf")
        self._lock = threading.Lock()

    def _refresh(self) -> None:
        now = time.monotonic()
        with self._lock:
            if now - self._fetched_at < self.ttl_seconds:
                return
            self._fetched_at = now  # even on failure: don't hammer
        try:
            response = _membership_request(
                self.address, ("members",), self.timeout)
        except MembershipError:
            return
        with self._lock:
            self._snapshot = list(response[1])
            self.generation = response[2]

    def members(self) -> List[Tuple[str, str, int]]:
        self._refresh()
        with self._lock:
            return list(self._snapshot)

    def live_addresses(self) -> List[str]:
        return [address for address, state, _ in self.members()
                if state != DEAD]

    def states(self) -> Dict[str, str]:
        return {address: state for address, state, _ in self.members()}

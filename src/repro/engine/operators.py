"""Vectorized physical operators and the morsel-driven dispatcher.

This module is the shared physical layer of every engine in the repo:
the A-Store executor (all five Table 6 variants), the three comparison
baselines of Section 6, and the benchmark harness all run their queries
as small DAGs of the operators defined here.

The execution unit is the :class:`Morsel`: a horizontal slice of the
root (fact) table, carried as a selection of global row ids plus a
positional provider aligned with them.  Operators consume a morsel and
produce a (usually smaller) morsel; stateful operators (aggregation,
value gathering, projection) accumulate per-task state and surface it
through :meth:`Operator.finish`.

The :class:`MorselDispatcher` replaces the executor's bespoke thread
loop: it splits the fact table into horizontal partitions (and
optionally fixed-size morsels inside each partition), runs a fresh copy
of the operator pipeline over every morsel on a pluggable backend
(``serial``, ``thread``, or ``process``), and returns per-morsel
outputs, finish values, and per-operator timings.  The ``process``
entry is a *shard* backend: queries compile to portable bound plans
that worker processes rebuild per shard over a shared-memory column
arena (:mod:`repro.engine.sharding`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Bitmap
from ..errors import ExecutionError
from ..plan.binder import LogicalPlan
from ..plan.expressions import BoundColumn, BoundExpression
from .aggregate import (
    AggregationState,
    array_aggregate,
    hash_aggregate,
)
from .expression import evaluate_measure, evaluate_predicate
from .grouping import GroupAxis, combine_codes, single_axis
from .scratch import local_pool
from .slice import ArraySlice


class PredicateFilter:
    """A dimension predicate vector (Section 4.2).

    Stores both the packed bit vector (whose size drives the optimizer's
    fit-in-cache decision and the paper's LLC argument) and the unpacked
    boolean array used for the actual probe — a probe is then a single
    positional gather, ``mask[air_positions]``.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    __slots__ = ("packed", "_mask", "_prefix")

    def __init__(self, mask: np.ndarray):
        self._mask = np.ascontiguousarray(mask, dtype=bool)
        self.packed = Bitmap.from_bool_array(self._mask)
        self._prefix: Optional[np.ndarray] = None

    def probe(self, positions: np.ndarray,
              out: Optional[np.ndarray] = None) -> np.ndarray:
        """Which of the given dimension positions pass the predicate.

        With *out* (a bool array of matching length, e.g. a scratch
        buffer) the gather writes in place instead of allocating."""
        if out is None:
            return self._mask[positions]
        return np.take(self._mask, positions, out=out)

    def pass_counts(self) -> np.ndarray:
        """Prefix sums of the mask: ``pass_counts()[j]`` = passes among
        dimension rows ``[0, j)``.  ``cs[hi+1] - cs[lo]`` counts passes
        in a position range — 0 means no FK in ``[lo, hi]`` can probe
        through (skip), a full range means every FK must (accept).
        Built lazily, cached on the filter, never pickled."""
        if self._prefix is None:
            prefix = np.zeros(len(self._mask) + 1, dtype=np.int64)
            np.cumsum(self._mask, dtype=np.int64, out=prefix[1:])
            self._prefix = prefix
        return self._prefix

    def __getstate__(self):
        # Only the packed vector crosses process boundaries (it is what the
        # paper argues must stay cache-resident); workers unpack on attach.
        return self.packed

    def __setstate__(self, packed) -> None:
        self.packed = packed
        self._mask = packed.to_bool_array()
        self._prefix = None

    @property
    def mask(self) -> np.ndarray:
        """The unpacked pass mask over dimension rows (what the
        code-set summaries intersect with for block verdicts)."""
        return self._mask

    @property
    def density(self) -> float:
        """Fraction of dimension rows passing (probe selectivity)."""
        return float(self._mask.mean()) if len(self._mask) else 0.0

    @property
    def nbytes(self) -> int:
        """Packed size — what must stay cache-resident."""
        return self.packed.nbytes


# -- morsels -----------------------------------------------------------------


class Morsel:
    """One horizontal slice of the root table flowing through a pipeline.

    ``positions`` are *global* row ids of the root table; ``provider``
    resolves ``(table, column)`` aligned with those rows (positional AIR
    gathers for A-Store, hash-join probes for the baselines).
    ``positions=None`` is the *identity* morsel — every physical row of
    the root table, in order — which lets the provider serve column
    slices as zero-copy views and the first refinement skip the
    position gather (the common whole-table scan with no deletes).
    ``codes`` carries the composite Measure Index once
    :class:`GroupCombine` has run, and ``pending`` holds a deferred
    keep-mask for pipelines that evaluate every predicate before
    shrinking (the row-scan variant).  ``prefiltered=True`` marks a
    morsel whose rows are *known* to pass every filter-like step (zone
    maps proved each block fully inside every predicate interval), so
    filter operators pass it through untouched.
    """

    __slots__ = ("positions", "provider", "codes", "pending", "prefiltered")

    def __init__(self, positions: Optional[np.ndarray], provider,
                 codes: Optional[np.ndarray] = None,
                 pending: Optional[np.ndarray] = None,
                 prefiltered: bool = False):
        self.positions = positions
        self.provider = provider
        self.codes = codes
        self.pending = pending
        self.prefiltered = prefiltered

    def __len__(self) -> int:
        if self.positions is None:
            return self.provider.length
        return len(self.positions)

    def refine(self, keep: np.ndarray) -> "Morsel":
        """Shrink by a boolean keep-mask aligned with the current rows.

        *keep* may be a scratch buffer: it is consumed here (the
        surviving index and position arrays are owned allocations)."""
        idx = np.flatnonzero(np.asarray(keep, dtype=bool))
        return Morsel(
            idx if self.positions is None else self.positions[idx],
            self.provider.rebase(idx),
            codes=None if self.codes is None else self.codes[idx],
        )


class OverlayProvider:
    """A provider with fully materialized (decoded) column overlays.

    Used by the row-wise scan variant, which fetches every referenced
    column for the whole morsel before any predicate runs; predicates and
    measures then read the materialized arrays, while positional probes
    still go through the underlying provider.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base, overlay: Dict[BoundColumn, np.ndarray]):
        self._base = base
        self._overlay = overlay

    @property
    def length(self) -> int:
        return self._base.length

    def positions_for(self, table: str):
        return self._base.positions_for(table)

    def fetch(self, table: str, name: str):
        key = BoundColumn(table, name)
        if key in self._overlay:
            return ArraySlice(self._overlay[key])
        return self._base.fetch(table, name)

    def rebase(self, idx: np.ndarray) -> "OverlayProvider":
        return OverlayProvider(
            self._base.rebase(idx),
            {key: values[idx] for key, values in self._overlay.items()},
        )


# -- micro-adaptive filter ordering ------------------------------------------


class ReorderState:
    """Observed pass-rates for a filter chain (Vectorwise-style
    micro-adaptivity).

    The plan orders filter-like steps by *estimated* selectivity; this
    state re-orders them by the pass-rates actually observed on earlier
    morsels, with periodic re-exploration (every ``explore_every``-th
    trip runs the static order so a step whose selectivity drifted gets
    re-measured).  Reordering a conjunction never changes its result —
    only which step shrinks the selection first — so adaptivity is a
    pure performance knob.  One state is shared across all pipeline
    instances of a query (and across queries on a cached plan); sizing
    happens on first use, and the lock never crosses a pickle.
    """

    def __init__(self, explore_every: int = 16):
        self.explore_every = max(2, int(explore_every))
        self.passes: List[float] = []
        self.rows: List[float] = []
        self.trips = 0
        self.reorders = 0
        self._last: Optional[Tuple[int, ...]] = None
        self._lock = threading.Lock()

    def _ensure(self, n: int) -> None:
        while len(self.rows) < n:
            self.passes.append(0.0)
            self.rows.append(0.0)

    def record(self, step: int, kept: int, total: int) -> None:
        """Fold one step's observed (kept, total) into its pass-rate."""
        with self._lock:
            self._ensure(step + 1)
            self.passes[step] += kept
            self.rows[step] += total

    def order(self, static: Sequence[int]) -> List[int]:
        """The step order for the next pipeline instance.

        Unmeasured steps sort first (optimistically selective, so they
        get measured); measured steps sort by observed pass-rate; every
        ``explore_every``-th trip re-runs the static order.
        """
        with self._lock:
            self.trips += 1
            self._ensure(max(static, default=-1) + 1)
            if self.trips % self.explore_every == 1 or all(
                    self.rows[i] == 0 for i in static):
                chosen = list(static)
            else:
                def rate(i: int) -> float:
                    return (self.passes[i] / self.rows[i]
                            if self.rows[i] else -1.0)
                chosen = sorted(static, key=rate)
            key = tuple(chosen)
            if self._last is not None and key != self._last:
                self.reorders += 1
            self._last = key
            return chosen

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


# -- operator protocol -------------------------------------------------------


class Operator:
    """A vectorized physical operator: morsel in, morsel out.

    ``label`` identifies the operator instance in per-operator timing
    breakdowns (:class:`MorselResult.timings`); ``finish`` surfaces the
    per-task state of stateful operators after all morsels were seen.
    """

    name = "op"

    def __init__(self, label: Optional[str] = None):
        self.label = label or self.name

    def process(self, morsel: Morsel) -> Morsel:
        return morsel

    def finish(self):
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label})"


class FilterLike(Operator):
    """Base for operators that compute a keep-mask over a morsel.

    ``defer=True`` accumulates the mask on the morsel instead of
    shrinking it (full-tuple processing: every predicate sees every
    row); :class:`ApplyMask` performs the deferred refinement.

    ``observer`` (set post-construction by chains that adapt) is a
    ``(ReorderState, step_id)`` pair receiving the observed pass count
    of every evaluated mask; a ``prefiltered`` morsel — zone maps proved
    all its rows pass — flows through untouched.
    """

    selectivity = 1.0
    observer: Optional[Tuple[ReorderState, int]] = None

    def __init__(self, label: Optional[str] = None,
                 selectivity: float = 1.0, defer: bool = False):
        super().__init__(label)
        self.selectivity = selectivity
        self.defer = defer
        self.observer = None

    def mask(self, morsel: Morsel) -> np.ndarray:
        raise NotImplementedError

    def process(self, morsel: Morsel) -> Morsel:
        if morsel.prefiltered or not len(morsel):
            return morsel
        keep = self.mask(morsel)
        if self.defer:
            # ``keep`` may be a scratch buffer (or alias stored data):
            # own a copy on first accumulation, then fold in place
            if morsel.pending is None:
                morsel.pending = np.array(keep, dtype=bool)
            else:
                np.logical_and(morsel.pending, keep, out=morsel.pending)
            return morsel
        out = morsel.refine(keep)
        if self.observer is not None:
            # the refined length IS the pass count — rate observation
            # costs nothing on the non-deferred path
            state, step = self.observer
            state.record(step, len(out), len(morsel))
        return out


class Filter(FilterLike):
    """Evaluate a bound predicate expression against the morsel rows."""

    name = "filter"

    def __init__(self, expr: BoundExpression, **kwargs):
        kwargs.setdefault("label", f"filter[{_columns_of(expr)}]")
        super().__init__(**kwargs)
        self.expr = expr

    def mask(self, morsel: Morsel) -> np.ndarray:
        return evaluate_predicate(self.expr, morsel.provider)


def _columns_of(expr: BoundExpression) -> str:
    from ..plan.expressions import bound_columns

    return ",".join(dict.fromkeys(c.name for c in bound_columns(expr)))


class AIRProbe(FilterLike):
    """Probe a first-level dimension for each morsel row.

    Three modes, covering both engines:

    * ``"vector"`` — gather a precomputed :class:`PredicateFilter`
      (A-Store's Section 4.2 predicate vectors, or a baseline's
      semi-join reduction mask) at the dimension positions;
    * ``"predicate"`` — evaluate the dimension predicate through the
      provider (direct AIR probing, when no filter was built);
    * ``"exists"`` — keep rows whose probe found a match (hash-join
      existence check used by the baselines).
    """

    name = "air-probe"

    def __init__(self, dim: str, mode: str, payload=None, **kwargs):
        if mode not in ("vector", "predicate", "exists"):
            raise ExecutionError(f"unknown probe mode {mode!r}")
        kwargs.setdefault("label", f"probe[{dim}:{mode}]")
        super().__init__(**kwargs)
        self.dim = dim
        self.mode = mode
        self.payload = payload

    def mask(self, morsel: Morsel) -> np.ndarray:
        if self.mode == "vector":
            positions = morsel.provider.positions_for(self.dim)
            return self.payload.probe(
                positions, out=local_pool().bool_mask(len(positions)))
        if self.mode == "predicate":
            return evaluate_predicate(self.payload, morsel.provider)
        positions = morsel.provider.positions_for(self.dim)
        return np.greater_equal(positions, 0,
                                out=local_pool().bool_mask(len(positions)))


class MaskFilter(FilterLike):
    """Keep rows whose *global* position is set in a full-table mask
    (MVCC live masks, precomputed visibility)."""

    name = "mask-filter"

    def __init__(self, mask: np.ndarray, **kwargs):
        super().__init__(**kwargs)
        self._mask = mask

    def mask(self, morsel: Morsel) -> np.ndarray:
        if morsel.positions is None:
            return self._mask  # identity morsel: already aligned
        return np.take(self._mask, morsel.positions,
                       out=local_pool().bool_mask(len(morsel)))


class ApplyMask(Operator):
    """Apply the deferred keep-mask accumulated by ``defer`` filters."""

    name = "apply-mask"

    def process(self, morsel: Morsel) -> Morsel:
        if morsel.pending is None:
            return morsel
        return morsel.refine(morsel.pending)


class IntersectScan(Operator):
    """Operator-at-a-time scan with full materialization (MonetDB-like).

    Every contained filter is evaluated over the *entire* morsel — no
    per-row selection-vector short-circuit, which is the BAT-algebra
    cost profile the paper measures in Tables 3–5 — and the per-filter
    candidate sets are intersected positionally over the morsel's row
    domain with boolean masks.  (An earlier version materialized sorted
    OID lists and combined them with ``np.intersect1d``, paying a sort
    per filter per morsel; candidate sets over one morsel share its
    position domain, so a linear mask AND is the same intersection.)

    With an ``adapt`` :class:`ReorderState` the scan becomes
    micro-adaptive: steps run in observed pass-rate order (periodically
    re-exploring the plan order), and once the running intersection is
    empty the remaining candidate lists — which could only be
    intersected away — are skipped.  Conjunction order and early-out on
    an empty set never change the surviving rows, only the work done.
    """

    name = "intersect-scan"

    def __init__(self, steps: Sequence[FilterLike],
                 label: Optional[str] = None,
                 adapt: Optional[ReorderState] = None):
        super().__init__(label)
        self.steps = list(steps)
        self.adapt = adapt

    def process(self, morsel: Morsel) -> Morsel:
        if morsel.prefiltered or not len(morsel):
            return morsel
        order: Sequence[int] = range(len(self.steps))
        if self.adapt is not None:
            order = self.adapt.order(list(order))
        keep: Optional[np.ndarray] = None
        for i in order:
            step = self.steps[i]
            mask = step.mask(morsel)  # full-morsel evaluation
            if self.adapt is not None:
                self.adapt.record(i, int(np.count_nonzero(mask)),
                                  len(morsel))
            keep = (np.array(mask, dtype=bool) if keep is None
                    else np.logical_and(keep, mask, out=keep))
            if self.adapt is not None and not keep.any():
                break  # empty intersection: remaining lists are moot
        if keep is None:
            return morsel
        return morsel.refine(keep)


class MaterializeColumns(Operator):
    """Fetch and decode every referenced column before any predicate.

    This reproduces the cost profile of full-tuple row-wise processing
    (the ``AIRScan_R*`` variants): each listed column — including
    dimension attributes reached through AIR — is materialized for every
    morsel row, and downstream operators read the overlays.
    """

    name = "materialize"

    def __init__(self, columns: Sequence[BoundColumn],
                 label: Optional[str] = None):
        super().__init__(label)
        self.columns = list(columns)

    def process(self, morsel: Morsel) -> Morsel:
        overlay = {
            column: morsel.provider.fetch(column.table, column.name).decode()
            for column in self.columns
        }
        morsel.provider = OverlayProvider(morsel.provider, overlay)
        return morsel


class GroupCombine(Operator):
    """Compute the composite Measure Index for the surviving rows."""

    name = "group-combine"

    def __init__(self, axes: Sequence[GroupAxis],
                 label: Optional[str] = None):
        super().__init__(label)
        self.axes = list(axes)

    def process(self, morsel: Morsel) -> Morsel:
        if self.axes:
            codes = [axis.fact_codes(morsel.provider) for axis in self.axes]
            morsel.codes = combine_codes(codes, [a.card for a in self.axes])
        else:
            morsel.codes = np.zeros(len(morsel), dtype=np.int64)
        return morsel


class Aggregate(Operator):
    """Measure-column aggregation over combined group codes.

    ``use_array=True`` scatters into the dense aggregation array of
    Section 4.3; otherwise the sort-based hash-aggregation stand-in is
    used.  Per-task partial states merge element-wise (Section 5).
    """

    def __init__(self, specs, ngroups: int, use_array: bool,
                 label: Optional[str] = None):
        self.name = f"aggregate[{'array' if use_array else 'hash'}]"
        super().__init__(label)
        self.specs = specs
        self.ngroups = ngroups
        self.use_array = use_array
        self.state: Optional[AggregationState] = None

    def process(self, morsel: Morsel) -> Morsel:
        if morsel.codes is None:
            raise ExecutionError("Aggregate needs GroupCombine upstream")
        measures = {
            spec.name: evaluate_measure(spec.expr, morsel.provider)
            for spec in self.specs if spec.expr is not None
        }
        if self.use_array:
            state = array_aggregate(self.specs, measures, morsel.codes,
                                    self.ngroups)
        else:
            state = hash_aggregate(self.specs, measures, morsel.codes)
        self.state = state if self.state is None else self.state.merge(state)
        return morsel

    def finish(self) -> Optional[AggregationState]:
        return self.state


@dataclass
class GatherState:
    """Accumulated decoded group values and measures (value grouping)."""

    group_values: List[List[np.ndarray]] = field(default_factory=list)
    measure_values: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    selected: int = 0

    def merge(self, other: "GatherState") -> "GatherState":
        if not self.group_values:
            self.group_values = [[] for _ in other.group_values]
        for mine, theirs in zip(self.group_values, other.group_values):
            mine.extend(theirs)
        for name, chunks in other.measure_values.items():
            self.measure_values.setdefault(name, []).extend(chunks)
        self.selected += other.selected
        return self


class ValueGather(Operator):
    """Gather decoded group-key values and measures for surviving rows.

    Engines that group by observed values (the row-scan variant and all
    baselines, which "perform hash based grouping and aggregation")
    accumulate here and build their axes with :func:`value_grouping`
    after the pipeline drains.
    """

    name = "gather"

    def __init__(self, logical: LogicalPlan, label: Optional[str] = None):
        super().__init__(label)
        self.logical = logical
        self.state = GatherState(
            group_values=[[] for _ in logical.group_keys])

    def process(self, morsel: Morsel) -> Morsel:
        if not len(morsel):
            return morsel
        provider = morsel.provider
        for i, key in enumerate(self.logical.group_keys):
            self.state.group_values[i].append(
                provider.fetch(key.column.table, key.column.name).decode())
        for spec in self.logical.aggregates:
            if spec.expr is None:
                continue
            self.state.measure_values.setdefault(spec.name, []).append(
                evaluate_measure(spec.expr, provider))
        self.state.selected += len(morsel)
        return morsel

    def finish(self) -> GatherState:
        return self.state


def value_grouping(logical: LogicalPlan, state: GatherState):
    """Axes + aggregation state from gathered values (hash-agg model)."""
    axes: List[GroupAxis] = []
    codes: List[np.ndarray] = []
    for i, key in enumerate(logical.group_keys):
        chunks = state.group_values[i] if state.group_values else []
        values = (np.concatenate(chunks) if chunks
                  else np.empty(0, dtype=object))
        uniq, inverse = np.unique(values, return_inverse=True)
        axes.append(single_axis(key, len(uniq), uniq))
        codes.append(inverse.astype(np.int64))
    measures = {}
    for spec in logical.aggregates:
        if spec.expr is None:
            continue
        chunks = state.measure_values.get(spec.name, [])
        measures[spec.name] = (np.concatenate(chunks) if chunks
                               else np.empty(0, dtype=np.float64))
    if axes:
        composite = combine_codes(codes, [a.card for a in axes])
        agg = hash_aggregate(logical.aggregates, measures, composite)
    else:
        composite = np.zeros(state.selected, dtype=np.int64)
        agg = array_aggregate(logical.aggregates, measures, composite, 1)
    return axes, agg


class Project(Operator):
    """Collect decoded output columns for pure SPJ (projection) queries."""

    name = "project"

    def __init__(self, projection_columns, label: Optional[str] = None):
        super().__init__(label)
        self.projection_columns = list(projection_columns)
        self._chunks: List[Dict[str, np.ndarray]] = []

    def process(self, morsel: Morsel) -> Morsel:
        self._chunks.append({
            key.name: morsel.provider.fetch(
                key.column.table, key.column.name).decode()
            for key in self.projection_columns
        })
        return morsel

    def finish(self) -> Dict[str, np.ndarray]:
        if len(self._chunks) == 1:
            return self._chunks[0]
        out: Dict[str, np.ndarray] = {}
        for key in self.projection_columns:
            chunks = [c[key.name] for c in self._chunks]
            out[key.name] = (np.concatenate(chunks) if chunks
                             else np.empty(0, dtype=object))
        return out


# -- dispatcher --------------------------------------------------------------


@dataclass
class MorselResult:
    """Outcome of one morsel's trip through a pipeline."""

    morsel: Morsel
    finishes: Dict[str, object]
    timings: Dict[str, float]
    seconds: float = 0.0


PipelineFactory = Callable[[], Sequence[Operator]]


class ExecutionBackend:
    """Descriptor of one :data:`BACKENDS` entry.

    *Inline* backends run live task closures in this process
    (:meth:`run_tasks`).  *Shard* backends (``inline = False``) instead
    execute a portable bound plan over horizontal fact-table shards in
    worker processes — the engine layer routes those through
    :mod:`repro.engine.sharding` rather than through the dispatcher, since
    a closure cannot cross a process boundary.
    """

    name = "backend"
    inline = True
    #: True for entries whose full behaviour needs the async serving
    #: layer (:mod:`repro.engine.serve`); sync dispatch still works.
    serving = False

    def run_tasks(self, tasks: Sequence[Callable]) -> list:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Run every morsel task in order on the calling thread."""

    name = "serial"

    def run_tasks(self, tasks):
        return [task() for task in tasks]


class ThreadBackend(ExecutionBackend):
    """One thread per morsel task (bounded), sharing this process."""

    name = "thread"

    def run_tasks(self, tasks):
        import os
        from concurrent.futures import ThreadPoolExecutor

        # One thread per morsel up to a sane cap — with small morsel_rows a
        # large table can yield thousands of morsels, and unbounded thread
        # creation fails on constrained hosts; excess morsels just queue.
        workers = min(len(tasks), (os.cpu_count() or 8) + 4)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [f.result() for f in futures]


class ProcessBackend(ExecutionBackend):
    """Shard marker: plans are rebuilt per shard in worker processes.

    The actual machinery — portable bound plans, the shared-memory column
    arena, and the spawn worker pool — lives in
    :mod:`repro.engine.sharding`; this entry only claims the name so every
    layer above can select it uniformly.
    """

    name = "process"
    inline = False

    def run_tasks(self, tasks):
        raise ExecutionError(
            "the process backend executes portable bound plans, not task "
            "closures; route through repro.engine.sharding")


class RemoteBackend(ExecutionBackend):
    """Distributed shard marker: plans scatter to remote shard nodes.

    The machinery — shard nodes serving pickled bound plans over TCP, a
    coordinator with per-node deadlines, retry with backoff, and
    re-shard on node loss — lives in :mod:`repro.engine.distributed`;
    like :class:`ProcessBackend` this entry only claims the name so the
    engine routes it through the sharded (non-inline) path.
    """

    name = "remote"
    inline = False

    def run_tasks(self, tasks):
        raise ExecutionError(
            "the remote backend executes portable bound plans on shard "
            "nodes, not task closures; route through "
            "repro.engine.distributed")


class AsyncBackend(ExecutionBackend):
    """Serving marker: many concurrent queries multiplex on one engine.

    The real machinery lives in :mod:`repro.engine.serve`: an
    :class:`~repro.engine.serve.AsyncEngine` accepts concurrent
    ``await engine.query(...)`` calls on one event loop, answers exact
    repeats from the result tier without leaving the loop, and runs
    everything else on a bounded thread executor (each run under a
    scratch-pool lease) — over whichever sync backend the engine was
    configured with, including one shared persistent process shard
    pool.  Selected *synchronously* (``parallel_backend="async"``,
    ``--backend async``), the entry degrades to the serial inline
    runner: a lone blocking caller gains nothing from multiplexing, so
    plans stay portable and results identical across the sync/async
    split.
    """

    name = "async"
    serving = True

    def run_tasks(self, tasks):
        return [task() for task in tasks]


#: Pluggable execution backends, keyed by the name every layer above uses
#: (`EngineOptions.parallel_backend`, `--backend`, harness sweeps).
BACKENDS: Dict[str, ExecutionBackend] = {
    backend.name: backend
    for backend in (SerialBackend(), ThreadBackend(), ProcessBackend(),
                    RemoteBackend(), AsyncBackend())
}


class MorselDispatcher:
    """Runs an operator pipeline over a set of morsels.

    Every morsel gets a *fresh* pipeline instance from the factory, so
    stateful operators accumulate per-task state that the caller merges
    (aggregation states merge element-wise, gather states concatenate).
    With the ``thread`` backend all morsels run concurrently, one thread
    each — the morsel count is the degree of parallelism, exactly like
    the paper's horizontal fact-table partitioning (Section 5).
    """

    def __init__(self, backend: str = "serial"):
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown dispatch backend {backend!r}; "
                f"choose from {sorted(BACKENDS)}")
        self.backend = backend

    @staticmethod
    def partition(positions: np.ndarray, parts: int) -> List[np.ndarray]:
        """Split row ids into at most *parts* horizontal partitions."""
        parts = max(1, parts)
        if parts == 1 or len(positions) < parts:
            return [positions]
        return [chunk for chunk in np.array_split(positions, parts)
                if len(chunk)]

    @staticmethod
    def chunk(positions: np.ndarray, morsel_rows: int) -> List[np.ndarray]:
        """Split row ids into fixed-size morsels (0 = one morsel)."""
        if morsel_rows <= 0 or len(positions) <= morsel_rows:
            return [positions]
        return [positions[start: start + morsel_rows]
                for start in range(0, len(positions), morsel_rows)]

    def run(self, morsels: Sequence[Morsel],
            factory: PipelineFactory) -> List[MorselResult]:
        """Run a fresh pipeline over each morsel; never reorders output.

        Live closures cannot cross a process boundary, so a non-inline
        (shard) backend degrades to the serial runner here; the engine
        layer routes shard backends through portable plans instead.
        """

        def make_task(morsel: Morsel):
            def task() -> MorselResult:
                ops = list(factory())
                timings: Dict[str, float] = {}
                t_task = time.perf_counter()
                m = morsel
                for op in ops:
                    t0 = time.perf_counter()
                    m = op.process(m)
                    elapsed = time.perf_counter() - t0
                    timings[op.label] = timings.get(op.label, 0.0) + elapsed
                finishes = {}
                for op in ops:
                    value = op.finish()
                    if value is not None:
                        finishes[op.label] = value
                return MorselResult(m, finishes, timings,
                                    time.perf_counter() - t_task)
            return task

        tasks = [make_task(m) for m in morsels]
        backend = BACKENDS[self.backend]
        if len(tasks) <= 1 or not backend.inline:
            return BACKENDS["serial"].run_tasks(tasks)
        return backend.run_tasks(tasks)


def merge_timings(stats, results: Sequence[MorselResult]) -> None:
    """Fold per-operator timings into ``stats.operator_seconds``."""
    for result in results:
        for label, seconds in result.timings.items():
            stats.operator_seconds[label] = (
                stats.operator_seconds.get(label, 0.0) + seconds)

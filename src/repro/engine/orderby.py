"""ORDER BY support: multi-key stable sorting with per-key direction."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import ExecutionError
from ..plan.binder import OrderKey  # noqa: F401


def sort_indices(columns: Dict[str, np.ndarray],
                 keys: Sequence[OrderKey]) -> np.ndarray:
    """Row permutation ordering *columns* by *keys* (first key primary).

    Implemented as repeated stable sorts from the least significant key to
    the most significant one.  Descending keys invert their sort codes
    (numeric negation, or rank negation for strings) so stability between
    equal keys is preserved.
    """
    if not keys:
        raise ExecutionError("sort_indices called without keys")
    first = next(iter(columns.values()))
    order = np.arange(len(first), dtype=np.int64)
    for key in reversed(list(keys)):
        if key.output not in columns:
            raise ExecutionError(f"unknown sort column {key.output!r}")
        values = columns[key.output][order]
        codes = _sort_codes(values, key.descending)
        order = order[np.argsort(codes, kind="stable")]
    return order


def top_k_indices(columns: Dict[str, np.ndarray], keys: Sequence[OrderKey],
                  k: int) -> np.ndarray:
    """The first *k* rows of the full ordering (LIMIT pushdown).

    For a single sort key over a large result, ``np.argpartition``
    preselects k candidates in O(n) before the O(k log k) sort; ties at
    the cut keep the same rows the full stable sort would keep only for
    strict orderings, so the multi-key (or small-input) case falls back
    to :func:`sort_indices`.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    first = columns[keys[0].output] if keys and keys[0].output in columns \
        else next(iter(columns.values()))
    n = len(first)
    if len(keys) != 1 or n <= max(64, 4 * k):
        return sort_indices(columns, keys)[:k]
    key = keys[0]
    if key.output not in columns:
        raise ExecutionError(f"unknown sort column {key.output!r}")
    codes = _sort_codes(columns[key.output], key.descending)
    if codes.dtype.kind not in ("i", "u", "f"):
        return sort_indices(columns, keys)[:k]
    candidates = np.argpartition(codes, k - 1)[:k]
    # order the k candidates; break ties by original position (stability)
    order = np.lexsort((candidates, codes[candidates]))
    return candidates[order].astype(np.int64)


def _sort_codes(values: np.ndarray, descending: bool) -> np.ndarray:
    if values.dtype.kind in ("i", "u", "f", "b"):
        return -values if descending else values
    # strings/objects: rank them, then optionally invert the rank
    uniq, inverse = np.unique(values, return_inverse=True)
    del uniq
    return -inverse if descending else inverse

"""Query decomposition support (Section 3 of the paper).

Benchmarks contain nested queries whose join graphs are not single
rooted; the paper's answer is to "decompose the join graph into multiple
single rooted subgraphs; then the subgraphs can be pipelined and
processed separately".  This module provides the pipelining primitive:
materialize one sub-query's result as a new array-family table (its row
number becoming the primary key), register it in a database, and declare
references so the next stage can query it like any other table.
"""

from __future__ import annotations

from typing import Optional


from ..core import Database, Table
from ..core.column import make_column
from ..errors import ExecutionError
from .result import QueryResult


def result_to_table(result: QueryResult, name: str,
                    dict_threshold: float = 0.5) -> Table:
    """Materialize a query result as an array-family table."""
    data = {}
    for col_name in result.column_order:
        values = result.columns[col_name]
        if values.dtype.kind == "O":
            data[col_name] = list(values)
        else:
            data[col_name] = values
    table = Table(name)
    for col_name, values in data.items():
        table.add_column(make_column(col_name, values,
                                     dict_threshold=dict_threshold))
    return table


def materialize(engine, query, name: str,
                into: Optional[Database] = None) -> Database:
    """Run *query* on *engine* and register its result as table *name*.

    Returns the database holding the new table (*into*, or a fresh one).
    Use :meth:`repro.core.Database.add_reference` plus ``airify()`` to
    connect the staged table to further tables, then query it with a new
    engine — that is the paper's pipelined processing of multi-rooted
    join graphs.
    """
    result = engine.query(query)
    if len(result.column_order) == 0:
        raise ExecutionError("cannot materialize an empty projection")
    db = into if into is not None else Database(f"staged_{name}")
    db.add_table(result_to_table(result, name))
    return db

"""Query results and per-stage execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ExecutionError


@dataclass
class ExecutionStats:
    """Timings and counters for one query execution.

    The three stage timers mirror the paper's Fig. 10 breakdown:
    leaf-table processing (predicate vectors + group vectors), fact scan
    (FK columns, filters, Measure Index), and aggregation (measure columns
    + the aggregation array / hash table).  ``operator_seconds`` breaks
    the same work down per physical operator (summed across morsels),
    and ``morsels`` counts how many morsels the dispatcher ran.

    ``cache_events`` records what the query cache did for this
    execution: per-tier ``*_hits``/``*_misses`` counters stamped on at
    compile time (``plan``/``leaf``/``axis``) plus ``result_hits`` when
    the serving tier answered outright — on a warm plan hit,
    ``leaf_seconds`` is the cache lookup, not a recompile.
    """

    variant: str = ""
    leaf_seconds: float = 0.0
    scan_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    total_seconds: float = 0.0
    rows_scanned: int = 0
    rows_selected: int = 0
    groups: int = 0
    morsels: int = 0
    morsels_skipped: int = 0     # zone blocks proven empty, never run
    morsels_accepted: int = 0    # zone blocks proven all-pass (no probes)
    morsels_scanned: int = 0     # zone blocks consulted but run normally
    prune_gated: int = 0         # verdict passes bypassed by the cost gate
    filters_reordered: int = 0   # micro-adaptive order changes observed
    used_array_aggregation: bool = False
    shard_fallbacks: int = 0     # sharded runs degraded to serial (dead pool)
    remote_retries: int = 0      # node requests retried (backoff+jitter)
    remote_reshards: int = 0     # shards re-scattered off a lost/stale node
    remote_nodes_lost: int = 0   # nodes declared dead during this query
    remote_local_shards: int = 0  # shards the coordinator ran on its own copy
    remote_nodes_joined: int = 0  # nodes that (re)joined the scatter set
    filter_modes: Dict[str, str] = field(default_factory=dict)
    operator_seconds: Dict[str, float] = field(default_factory=dict)
    cache_events: Dict[str, int] = field(default_factory=dict)

    def clone(self) -> "ExecutionStats":
        """An independent copy (dict fields included) — what a cached
        result keeps, so no caller's stats object is shared with it."""
        copy = replace(self)
        copy.filter_modes = dict(self.filter_modes)
        copy.operator_seconds = dict(self.operator_seconds)
        copy.cache_events = dict(self.cache_events)
        return copy

    @property
    def selectivity(self) -> float:
        """Fraction of scanned rows surviving all predicates."""
        return self.rows_selected / self.rows_scanned if self.rows_scanned else 0.0

    def operator_breakdown(self) -> List[tuple]:
        """Per-operator ``(label, seconds)`` rows, slowest first."""
        return sorted(self.operator_seconds.items(),
                      key=lambda item: item[1], reverse=True)

    def cache_summary(self) -> str:
        """A compact ``tier hit/miss`` line (empty when nothing fired)."""
        if not self.cache_events:
            return ""
        parts = []
        for key in sorted(self.cache_events):
            parts.append(f"{key.replace('_', ' ')}={self.cache_events[key]}")
        return ", ".join(parts)


class QueryResult:
    """A finished query: named output columns plus execution statistics."""

    def __init__(self, column_order: Sequence[str],
                 columns: Dict[str, np.ndarray],
                 stats: ExecutionStats):
        self.column_order = list(column_order)
        self.columns = columns
        self.stats = stats

    def __len__(self) -> int:
        if not self.column_order:
            return 0
        return len(self.columns[self.column_order[0]])

    def column(self, name: str) -> np.ndarray:
        """One output column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"no output column {name!r}") from None

    def rows(self) -> List[tuple]:
        """All rows as tuples, in output order."""
        arrays = [self.columns[name] for name in self.column_order]
        return [tuple(a[i].item() if hasattr(a[i], "item") else a[i]
                      for a in arrays) for i in range(len(self))]

    def to_dicts(self) -> List[dict]:
        """All rows as ``{column: value}`` dictionaries."""
        return [dict(zip(self.column_order, row)) for row in self.rows()]

    @property
    def frozen(self) -> bool:
        """True when every column array is read-only (a served result)."""
        return all(not values.flags.writeable
                   for values in self.columns.values()
                   if isinstance(values, np.ndarray))

    def freeze(self) -> "QueryResult":
        """A read-only copy for the serving tier.

        Column arrays are replaced by immutable views of the same
        buffers (zero-copy), and the column map *and statistics* are
        private copies, so a caller can neither write through a served
        array nor reach the cached copy through a shared dict or stats
        object.  Each serve hands out another :meth:`served_copy`,
        never this object's own ``columns`` dict.
        """
        frozen: Dict[str, np.ndarray] = {}
        for name, values in self.columns.items():
            view = values.view()
            view.flags.writeable = False
            frozen[name] = view
        return QueryResult(self.column_order, frozen, self.stats.clone())

    def served_copy(self, stats: ExecutionStats) -> "QueryResult":
        """A per-caller wrapper around this (frozen) result: shares the
        immutable column arrays but owns its column map, order list and
        statistics — concurrent callers can never observe each other's
        mutations of a served result."""
        return QueryResult(self.column_order, dict(self.columns), stats)

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self) != 1 or len(self.column_order) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self)}x{len(self.column_order)} result"
            )
        return self.rows()[0][0]

    def __repr__(self) -> str:
        return (
            f"QueryResult(rows={len(self)}, columns={self.column_order}, "
            f"total={self.stats.total_seconds * 1e3:.2f}ms)"
        )

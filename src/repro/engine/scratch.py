"""Scratch buffers for the morsel hot path: per-thread, or per-lease.

Every morsel trip through a pipeline used to allocate a fresh boolean
mask per filter-like operator (the probe gather, the existence check,
the MVCC mask gather).  With small morsels the allocator — not the
kernel work — dominates the profile.  This module keeps one growable
buffer per ``(dtype, slot)`` pair **per execution context**, so the
serial backend reuses the same masks across every morsel of a query,
each thread of the ``thread`` backend owns its own set, and a
``process`` shard worker keeps its buffers warm across queries for the
lifetime of the worker.

Lifetime discipline (the reason this is safe):

* a scratch view is valid only until the *next* request for the same
  ``(dtype, slot)`` in the same context;
* operators therefore only hand scratch views to consumers that finish
  with them inside the same ``process()`` call (``Morsel.refine`` reads
  the mask once and materializes owned index/position arrays);
* anything that outlives the operator call — deferred ``pending``
  masks, group codes, gathered values, aggregation states — is copied
  into (or built as) an owned array before it is stored.

**Contexts.**  The sync backends identify a context with a thread: one
pipeline runs per thread at a time, so a plain ``threading.local`` pool
is safe and allocation-free.  Under asyncio that identification is
wrong — many pipeline runs interleave on *one* event-loop thread, and a
thread-keyed buffer handed to pipeline A would still be live when
pipeline B awoke between awaits and asked for the same ``(dtype,
slot)``.  Concurrent runs therefore take a **lease**
(:func:`lease_pool`): a pool checked out from a free list for the
duration of one pipeline run and published through a
:class:`contextvars.ContextVar`, which asyncio copies per task — two
interleaved tasks see two different pools, while the thread-local fast
path below stays untouched for the sync backends.

Requests larger than :data:`MAX_POOLED_ELEMENTS` bypass the pool so a
one-off huge morsel cannot pin its high-water mark forever.
"""

from __future__ import annotations

import contextvars
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Largest request (in elements) served from the pool; bigger buffers are
#: plain one-shot allocations.
MAX_POOLED_ELEMENTS = 1 << 22


class ScratchPool:
    """A set of reusable, growable scratch buffers keyed by (dtype, slot).

    ``take(n, dtype, slot)`` returns a length-*n* view of the backing
    buffer for that key, growing it geometrically when needed.  Two
    simultaneously-live scratch arrays must use distinct slots.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[np.dtype, int], np.ndarray] = {}

    def take(self, n: int, dtype=np.bool_, slot: int = 0) -> np.ndarray:
        """A length-*n* scratch view (contents undefined)."""
        if n > MAX_POOLED_ELEMENTS:
            return np.empty(n, dtype=dtype)
        key = (np.dtype(dtype), slot)
        buf = self._buffers.get(key)
        if buf is None or len(buf) < n:
            capacity = max(1024, 1 << int(max(0, n - 1)).bit_length())
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buf
        return buf[:n]

    def bool_mask(self, n: int, slot: int = 0) -> np.ndarray:
        """A boolean keep-mask buffer (the common case)."""
        return self.take(n, np.bool_, slot)

    @property
    def nbytes(self) -> int:
        """Total bytes currently pooled (for diagnostics)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


_TLS = threading.local()

#: The pool of the innermost active lease in this context (``None``
#: outside a lease).  ContextVars are copied per asyncio task, so a
#: lease taken inside one task is invisible to every other task even
#: when they interleave on the same event-loop thread.
_LEASED: "contextvars.ContextVar[Optional[ScratchPool]]" = (
    contextvars.ContextVar("repro_scratch_lease", default=None))

#: Returned lease pools waiting for the next checkout (bounded so a
#: burst of concurrency cannot pin its high-water pool count forever).
_FREE: List[ScratchPool] = []
_FREE_LOCK = threading.Lock()
MAX_FREE_POOLS = 64

#: Lock contract, machine-checked by ``astore lint`` (lock-discipline):
#: the free list is popped/pushed from every engine thread and asyncio
#: task boundary, so it may only be touched under its lock.
GUARDED_BY = {
    "_FREE": "_FREE_LOCK",
}


class PoolLease:
    """A scratch pool checked out for exactly one pipeline run.

    ``with lease_pool():`` makes :func:`local_pool` — and therefore
    every operator's scratch request — resolve to a private pool for
    the duration, then returns the pool (buffers kept warm) to the
    free list.  Leases nest: the innermost lease wins, and exiting
    restores the outer one.
    """

    __slots__ = ("pool", "_token")

    def __init__(self) -> None:
        self.pool: Optional[ScratchPool] = None
        self._token = None

    def __enter__(self) -> ScratchPool:
        with _FREE_LOCK:
            self.pool = _FREE.pop() if _FREE else ScratchPool()
        self._token = _LEASED.set(self.pool)
        return self.pool

    def __exit__(self, *exc) -> None:
        _LEASED.reset(self._token)
        pool, self.pool = self.pool, None
        with _FREE_LOCK:
            if len(_FREE) < MAX_FREE_POOLS:
                _FREE.append(pool)


def lease_pool() -> PoolLease:
    """Check out a scratch pool for one pipeline run (see module doc).

    Use around any execution that can interleave with another on the
    same thread (asyncio serving); the sync backends keep the cheaper
    thread-local path."""
    return PoolLease()


def local_pool() -> ScratchPool:
    """The active scratch pool: the innermost lease of this context if
    one is held, else the calling thread's pool (created on first use).
    """
    pool = _LEASED.get()
    if pool is not None:
        return pool
    pool = getattr(_TLS, "pool", None)
    if pool is None:
        pool = _TLS.pool = ScratchPool()
    return pool

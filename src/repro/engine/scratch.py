"""Per-thread scratch buffers for the morsel hot path.

Every morsel trip through a pipeline used to allocate a fresh boolean
mask per filter-like operator (the probe gather, the existence check,
the MVCC mask gather).  With small morsels the allocator — not the
kernel work — dominates the profile.  This module keeps one growable
buffer per ``(dtype, slot)`` pair **per thread**, so the serial backend
reuses the same masks across every morsel of a query, each thread of
the ``thread`` backend owns its own set, and a ``process`` shard worker
keeps its buffers warm across queries for the lifetime of the worker.

Lifetime discipline (the reason this is safe):

* a scratch view is valid only until the *next* request for the same
  ``(dtype, slot)`` on the same thread;
* operators therefore only hand scratch views to consumers that finish
  with them inside the same ``process()`` call (``Morsel.refine`` reads
  the mask once and materializes owned index/position arrays);
* anything that outlives the operator call — deferred ``pending``
  masks, group codes, gathered values, aggregation states — is copied
  into (or built as) an owned array before it is stored.

Requests larger than :data:`MAX_POOLED_ELEMENTS` bypass the pool so a
one-off huge morsel cannot pin its high-water mark forever.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

#: Largest request (in elements) served from the pool; bigger buffers are
#: plain one-shot allocations.
MAX_POOLED_ELEMENTS = 1 << 22


class ScratchPool:
    """A set of reusable, growable scratch buffers keyed by (dtype, slot).

    ``take(n, dtype, slot)`` returns a length-*n* view of the backing
    buffer for that key, growing it geometrically when needed.  Two
    simultaneously-live scratch arrays must use distinct slots.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[np.dtype, int], np.ndarray] = {}

    def take(self, n: int, dtype=np.bool_, slot: int = 0) -> np.ndarray:
        """A length-*n* scratch view (contents undefined)."""
        if n > MAX_POOLED_ELEMENTS:
            return np.empty(n, dtype=dtype)
        key = (np.dtype(dtype), slot)
        buf = self._buffers.get(key)
        if buf is None or len(buf) < n:
            capacity = max(1024, 1 << int(max(0, n - 1)).bit_length())
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buf
        return buf[:n]

    def bool_mask(self, n: int, slot: int = 0) -> np.ndarray:
        """A boolean keep-mask buffer (the common case)."""
        return self.take(n, np.bool_, slot)

    @property
    def nbytes(self) -> int:
        """Total bytes currently pooled (for diagnostics)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


_TLS = threading.local()


def local_pool() -> ScratchPool:
    """The calling thread's scratch pool (created on first use)."""
    pool = getattr(_TLS, "pool", None)
    if pool is None:
        pool = _TLS.pool = ScratchPool()
    return pool

"""Async serving: many concurrent queries over one engine and shard pool.

The ROADMAP's north star is serving heavy traffic from many users; the
portable bound plans of :mod:`repro.engine.sharding` already decouple
compilation from execution, and the mutation-stamped
:class:`~repro.engine.cache.QueryCache` already makes repeats cheap.
This module adds the missing entry point: an :class:`AsyncEngine` that
accepts many concurrent ``await engine.query(...)`` calls on one event
loop and multiplexes them over one :class:`~repro.engine.executor
.AStoreEngine` — and therefore over one shared, persistent
:class:`~repro.engine.sharding.ProcessShardBackend` pool when the
engine is configured with ``parallel_backend="process"``.

Concurrency model (see also ``docs/architecture.md``):

* **The event loop never blocks.**  Result-tier hits are answered
  directly on the loop (a stamped dictionary lookup); everything else
  runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`.
  With the ``process`` backend those executor threads block only on
  ``pool.map`` — the actual scanning happens in the shared worker
  pool, whose task queue interleaves the shards of every in-flight
  query.
* **Per-run scratch leases.**  Each executor run takes a
  :func:`~repro.engine.scratch.lease_pool` so no two in-flight
  pipelines can ever alias a scratch buffer, while the sync backends
  keep their thread-local fast path.
* **Served results are frozen.**  Every caller gets a private
  :meth:`~repro.engine.result.QueryResult.served_copy` over immutable
  column arrays, so concurrent callers cannot observe each other's
  mutations (and cannot corrupt the cache).
* **Single-flight cold queries.**  With the serving tier enabled,
  concurrent *identical* queries coalesce: one leader executes, the
  followers await it and then answer from the result tier — 64 clients
  asking the same cold question cost one execution, not 64.
* **Cancellation is safe.**  Cancelling an ``await engine.query(...)``
  abandons the *await*; the underlying run (if already started) drains
  harmlessly on its executor thread and the shard pool stays reusable.

:func:`serve_tcp` wraps an :class:`AsyncEngine` in a minimal
newline-delimited TCP protocol (one JSON — or raw SQL — request per
line, one JSON response per line) used by ``astore serve``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core import Database
from ..errors import AStoreError
from .chaos import chaos_point_async
from .executor import AStoreEngine, EngineOptions
from .result import QueryResult
from .scratch import lease_pool


def default_concurrency() -> int:
    """Executor threads for an :class:`AsyncEngine` (bounded: enough to
    keep a shard pool saturated and hide blocking, few enough that a
    client burst cannot spawn unbounded threads)."""
    return min(32, 4 * (os.cpu_count() or 1) + 4)


@dataclass
class ServeStats:
    """Cumulative counters of one :class:`AsyncEngine`."""

    queries: int = 0            # completed await engine.query(...) calls
    served_on_loop: int = 0     # answered from the result tier, no executor
    coalesced: int = 0          # followers that rode a leader's execution
    executed: int = 0           # runs dispatched to the executor
    cancelled: int = 0          # awaits tore off before completion
    errors: int = 0             # runs that raised
    inflight: int = 0           # currently inside query()
    peak_inflight: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in (
            "queries", "served_on_loop", "coalesced", "executed",
            "cancelled", "errors", "inflight", "peak_inflight")}


class AsyncEngine:
    """Concurrent query serving over one sync engine, on one event loop.

    Construct with a database plus :class:`EngineOptions` (or pass a
    prebuilt ``engine``).  All concurrency is multiplexed: one
    underlying engine, one query cache, one shard backend.  ``await
    engine.query(sql)`` is safe to call from many tasks at once; use
    ``async with`` (or :meth:`aclose`) to release the executor and any
    process-backend resources.

    The serving tier (``cache_results``) defaults **on** here — serving
    is what this class is for — but can be disabled through *options*.
    """

    def __init__(self, db: Database,
                 options: Optional[EngineOptions] = None,
                 engine: Optional[AStoreEngine] = None,
                 max_concurrency: Optional[int] = None):
        if engine is None:
            if options is None:  # serving default; explicit options win
                options = EngineOptions(parallel_backend="serial",
                                        cache_results=True)
            engine = AStoreEngine(db, options)
        elif options is not None:
            raise AStoreError(
                "pass either options or a prebuilt engine, not both "
                "(a prebuilt engine carries its own options)")
        self.engine = engine
        self.max_concurrency = max(1, int(max_concurrency
                                          or default_concurrency()))
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="astore-serve")
        self.stats = ServeStats()
        # single-flight: result-tier key -> marker future of the leader
        self._leaders: Dict[tuple, "asyncio.Future"] = {}
        self._closed = False

    # -- the serving entry point -------------------------------------------

    async def query(self, sql, snapshot: Optional[int] = None) -> QueryResult:
        """Compile (through the shared cache) and execute *sql*,
        yielding the event loop while any blocking work runs."""
        if self._closed:
            raise AStoreError("AsyncEngine is closed")
        stats = self.stats
        stats.inflight += 1
        stats.peak_inflight = max(stats.peak_inflight, stats.inflight)
        try:
            result = await self._query(sql, snapshot)
            stats.queries += 1
            return result
        except asyncio.CancelledError:
            stats.cancelled += 1
            raise
        finally:
            stats.inflight -= 1

    async def _query(self, sql, snapshot: Optional[int]) -> QueryResult:
        engine = self.engine
        serving = (engine.cache is not None
                   and engine.options.cache_results)
        if serving:
            # fast path: a stamped result-tier lookup answers on the
            # loop thread, no executor round-trip (the key is computed
            # once here and reused by every lookup below)
            key = engine.result_key(sql, snapshot)
            hit = engine.serve_cached(sql, snapshot, key=key)
            if hit is not None:
                self.stats.served_on_loop += 1
                return hit
            leader = self._leaders.get(key)
            if leader is not None:
                # follower: ride the leader's execution, then serve.
                # shield() so our caller's cancellation cannot cancel
                # the shared marker out from under other followers.
                with contextlib.suppress(Exception):
                    await asyncio.shield(leader)
                hit = engine.serve_cached(sql, snapshot, key=key)
                if hit is not None:
                    self.stats.coalesced += 1
                    return hit
                # leader failed, was cancelled pre-dispatch, or a
                # mutation invalidated its result: run our own
                return await self._execute(sql, snapshot)
            loop = asyncio.get_running_loop()
            marker = loop.create_future()
            self._leaders[key] = marker
            try:
                return await self._execute(sql, snapshot)
            finally:
                if self._leaders.get(key) is marker:
                    del self._leaders[key]
                if not marker.done():
                    marker.set_result(None)
        return await self._execute(sql, snapshot)

    async def _execute(self, sql, snapshot: Optional[int]) -> QueryResult:
        loop = asyncio.get_running_loop()
        self.stats.executed += 1
        try:
            return await loop.run_in_executor(
                self._executor, self._run_leased, sql, snapshot)
        except asyncio.CancelledError:
            raise
        except Exception:
            self.stats.errors += 1
            raise

    def _run_leased(self, sql, snapshot: Optional[int]) -> QueryResult:
        # a lease per pipeline run: interleaved executions can never
        # alias a scratch buffer, whatever thread they land on
        with lease_pool():
            return self.engine.query(sql, snapshot)

    # -- lifecycle ----------------------------------------------------------

    async def aclose(self) -> None:
        """Drain the executor and release engine resources (the shared
        arena and worker pool, when the process backend was used)."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_sync)

    def close(self) -> None:
        """Synchronous close (for non-async teardown paths)."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_sync()

    def _shutdown_sync(self) -> None:
        self._executor.shutdown(wait=True)
        self.engine.close()

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()


# -- the line-protocol server -------------------------------------------------


@dataclass
class QueryServer:
    """A running ``astore serve`` instance (see :func:`serve_tcp`).

    Protocol: one request per line — either raw SQL or a JSON object
    ``{"sql": ..., "id": ...}`` — answered by one JSON line:
    ``{"id", "rows", "columns", "ms", "cached"}`` on success or
    ``{"id", "error"}`` on failure.  Admin lines: ``PING`` answers
    ``PONG``, ``STATS`` answers a JSON snapshot (pid, serve counters,
    cache tiers, shared-store counters — what the fleet bench and smoke
    aggregate per worker), ``SHUTDOWN`` stops the server after
    responding (the hook CI uses for a clean teardown), and a JSON
    object with an ``"update"`` key applies a mutation (fleet tests
    race these against queries).  Stopping *drains*: requests already
    read when SHUTDOWN arrives finish and answer before their
    connections close; only idle connections are closed immediately.

    The **overload front door**: with ``max_pending`` set, a request
    arriving while that many are already in flight answers
    ``{"overloaded": true, "error": ...}`` immediately instead of
    queueing unboundedly — shedding is visible and cheap, queueing
    under overload is invisible and fatal.  Shed counts surface in
    ``STATS`` and the ``coordinator.admit`` chaos site can force the
    path deterministically.
    """

    engine: AsyncEngine
    #: the listening asyncio server — ``None`` in fd-handoff fleet mode,
    #: where connections arrive via :meth:`handle_socket` instead
    server: Optional["asyncio.AbstractServer"] = None
    shutdown_event: "asyncio.Event" = field(default_factory=asyncio.Event)
    requests: int = 0
    failures: int = 0
    #: how long stop() waits for in-flight requests before closing them
    drain_seconds: float = 10.0
    #: server-wide per-request deadline in seconds (None = none); each
    #: request may override it with a ``"timeout_ms"`` field.  A request
    #: past its deadline answers ``{"timeout": true, "error": ...}``
    #: instead of pinning the connection.
    request_timeout: Optional[float] = None
    #: the overload front door: at most this many work requests may be
    #: in flight before new ones shed with ``{"overloaded": true}``
    #: instead of queueing unboundedly (0 = no bound)
    max_pending: int = 0
    #: requests shed by the front door
    shed: int = 0
    #: work requests currently admitted and executing
    _pending: int = 0
    #: open client connections — closed on stop, since (3.12.1+)
    #: ``Server.wait_closed`` blocks until every handler has exited and
    #: an idle client sitting in ``readline`` would pin it forever
    _writers: set = field(default_factory=set)
    #: connections with a request mid-flight (read but not yet answered)
    _busy: set = field(default_factory=set)
    #: handler tasks for adopted (handed-off) connections
    _tasks: set = field(default_factory=set)

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` of the listening socket."""
        if self.server is None or not self.server.sockets:
            return ("", 0)
        return self.server.sockets[0].getsockname()[:2]

    async def wait_closed(self) -> None:
        """Block until SHUTDOWN (or :meth:`stop`), then tear down."""
        await self.shutdown_event.wait()
        await self.stop()

    async def stop(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful drain: stop accepting, let every in-flight request
        answer (up to *drain_seconds*), then close and release."""
        self.shutdown_event.set()
        if self.server is not None:
            self.server.close()
        for writer in list(self._writers):  # wake idle readline() handlers
            if writer not in self._busy:
                writer.close()
        deadline = time.monotonic() + (self.drain_seconds
                                       if drain_seconds is None
                                       else drain_seconds)
        while self._busy and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        if self.server is not None:
            await self.server.wait_closed()
        if self._tasks:  # adopted-connection handlers (fd-handoff mode)
            _, pending = await asyncio.wait(
                list(self._tasks), timeout=max(1.0, self.drain_seconds))
            for task in pending:
                task.cancel()
        await self.engine.aclose()

    async def handle_socket(self, sock) -> None:
        """Adopt an already-accepted connection (fd-handoff fleet mode:
        the supervisor accepts and ships the fd; we serve it with the
        same handler, drain rules included)."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(loop=loop)
        protocol = asyncio.StreamReaderProtocol(reader, loop=loop)
        transport, _ = await loop.connect_accepted_socket(
            lambda: protocol, sock)
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        task = asyncio.create_task(self._handle(reader, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _handle(self, reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        self._writers.add(writer)
        try:
            while not self.shutdown_event.is_set():
                line = await reader.readline()
                if not line:
                    break
                # busy from the moment a request line exists until its
                # response is flushed — stop() drains exactly this set
                self._busy.add(writer)
                try:
                    text = line.decode("utf-8", "replace").strip()
                    if not text:
                        continue
                    if text.upper() == "PING":
                        writer.write(b"PONG\n")
                        await writer.drain()
                        continue
                    if text.upper() == "STATS":
                        writer.write(_encode(self.stats_payload()))
                        await writer.drain()
                        continue
                    if text.upper() == "SHUTDOWN":
                        writer.write(b'{"ok": true, "shutdown": true}\n')
                        await writer.drain()
                        self.shutdown_event.set()
                        break
                    writer.write(await self._respond(text))
                    await writer.drain()
                finally:
                    self._busy.discard(writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to answer
        finally:
            self._busy.discard(writer)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def stats_payload(self) -> dict:
        """The ``STATS`` response: this worker's serve/cache counters."""
        payload = {
            "pid": os.getpid(),
            "requests": self.requests,
            "failures": self.failures,
            "shed": self.shed,
            "pending": self._pending,
            "max_pending": self.max_pending,
            "serve": self.engine.stats.snapshot(),
        }
        cache = self.engine.engine.cache
        if cache is not None:
            payload["cache"] = {
                tier: {"hits": stats.hits, "misses": stats.misses,
                       "shared_hits": stats.shared_hits,
                       "shared_misses": stats.shared_misses}
                for tier, stats in cache.stats().items()}
            store = cache.shared_store()
            if store is not None and not store.closed:
                payload["shared_store"] = store.counters()
        return payload

    async def _admit(self) -> bool:
        """The overload front door: every work request (query, update,
        compact) passes here before touching the engine.  Past
        ``max_pending`` in-flight requests the caller sheds instead of
        queueing unboundedly; an armed ``coordinator.admit`` error or
        drop rule is a forced shed (how tests pin the shed path)."""
        try:
            await chaos_point_async("coordinator.admit")
        except Exception:  # noqa: BLE001 - any injected fault = shed
            return False
        return not (self.max_pending and self._pending >= self.max_pending)

    async def _respond(self, text: str) -> bytes:
        request_id = None
        sql = text
        timeout = self.request_timeout
        payload = None
        action = "sql"
        if text.startswith("{"):
            try:
                payload = json.loads(text)
                if isinstance(payload, dict):
                    request_id = payload.get("id")
                    if "update" in payload:
                        action = "update"
                    elif "compact" in payload:
                        action = "compact"
                    else:
                        if payload.get("timeout_ms") is not None:
                            # per-request deadline overrides the
                            # server-wide --request-timeout (0 disables
                            # for this request)
                            timeout = (float(payload["timeout_ms"]) / 1e3
                                       or None)
                        sql = payload["sql"]
                else:
                    sql = payload["sql"]  # not a dict: bad request below
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                self.failures += 1
                return _encode({"id": request_id,
                                "error": f"bad request: {exc}"})
        if not await self._admit():
            self.shed += 1
            return _encode({
                "id": request_id, "overloaded": True,
                "error": (f"overloaded: {self._pending} requests in "
                          f"flight (max_pending={self.max_pending})")})
        self._pending += 1
        try:
            if action == "update":
                return self._apply_update(payload, request_id)
            if action == "compact":
                return self._apply_compact(payload, request_id)
            return await self._respond_sql(sql, request_id, timeout)
        finally:
            self._pending -= 1

    async def _respond_sql(self, sql, request_id,
                           timeout: Optional[float]) -> bytes:
        self.requests += 1
        t0 = time.perf_counter()
        async def _run():
            # the chaos site is inside the deadline: an injected stall
            # here is indistinguishable from a genuinely slow query
            await chaos_point_async("serve.request")
            return await self.engine.query(sql)

        try:
            if timeout:
                result = await asyncio.wait_for(_run(), timeout)
            else:
                result = await _run()
        except asyncio.TimeoutError:
            # the deadline is the contract: answer with a structured
            # error instead of pinning the connection on a slow query
            self.failures += 1
            return _encode({
                "id": request_id, "timeout": True,
                "error": (f"deadline exceeded after "
                          f"{timeout * 1e3:.0f} ms")})
        except AStoreError as exc:
            self.failures += 1
            return _encode({"id": request_id, "error": str(exc)})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - the protocol promises
            # an answer per line: a malformed payload (e.g. a non-string
            # "sql") must produce an error response, not a torn socket
            self.failures += 1
            return _encode({"id": request_id,
                            "error": f"internal error: {exc!r}"})
        return _encode({
            "id": request_id,
            "columns": result.column_order,
            "rows": [list(row) for row in result.rows()],
            "ms": round((time.perf_counter() - t0) * 1e3, 3),
            "cached": bool(result.stats.cache_events.get("result_hits")),
        })

    def _apply_update(self, payload: dict, request_id) -> bytes:
        """``{"update": {"table", "positions", "values"}}``: apply a
        point mutation and broadcast the new stamps to the fleet.

        Mutation counts bump before the stamp broadcast, so from this
        response onward no worker can serve a pre-mutation shared entry
        for the touched tables (per-process tiers invalidate on their
        own stamps as usual).  Arena-attached workers are read-only and
        answer with an error instead."""
        import numpy as np

        try:
            spec = payload["update"]
            table = self.engine.engine.db.table(spec["table"])
            positions = np.asarray(spec["positions"], dtype=np.int64)
            changes = {name: np.asarray(values)
                       for name, values in spec["values"].items()}
            table.update(positions, changes)
        except Exception as exc:  # noqa: BLE001 - protocol: answer, not tear
            self.failures += 1
            return _encode({"id": request_id,
                            "error": f"update failed: {exc!r}"})
        self.requests += 1
        cache = self.engine.engine.cache
        if cache is not None:
            store = cache.shared_store()
            if store is not None and not store.closed:
                with contextlib.suppress(Exception):
                    store.publish_stamps(self.engine.engine.db)
        return _encode({"id": request_id, "ok": True,
                        "table": spec["table"],
                        "mutation_count": table.mutation_count})

    def _apply_compact(self, payload: dict, request_id) -> bytes:
        """``{"compact": "<table>"}``: the update admin's maintenance
        re-sort — drop deleted slots, restore the table's declared
        clustering, rebuild its block summaries into this worker's zone
        tier, and broadcast the new stamps to the fleet.

        Like updates, the consolidation bumps every touched table's
        mutation count *before* the stamp broadcast and before this
        response, so no worker — local or sibling — can serve a
        pre-compaction cached answer afterwards.  Arena-attached workers
        are read-only and answer with an error instead."""
        try:
            name = payload["compact"]
            db = self.engine.engine.db
            info = db.compact(name, store=self.engine.engine.cache)
            table = db.table(name)
        except Exception as exc:  # noqa: BLE001 - protocol: answer, not tear
            self.failures += 1
            return _encode({"id": request_id,
                            "error": f"compact failed: {exc!r}"})
        self.requests += 1
        cache = self.engine.engine.cache
        if cache is not None:
            store = cache.shared_store()
            if store is not None and not store.closed:
                with contextlib.suppress(Exception):
                    store.publish_stamps(db)
        return _encode({"id": request_id, "ok": True, "table": name,
                        "rows": info["rows"], "dropped": info["dropped"],
                        "clustered": info["clustered"],
                        "summaries": info["summaries"],
                        "mutation_count": table.mutation_count})


def _encode(payload: dict) -> bytes:
    return json.dumps(payload, default=str).encode() + b"\n"


async def serve_tcp(engine: AsyncEngine, host: str = "127.0.0.1",
                    port: int = 0, sock=None,
                    request_timeout: Optional[float] = None,
                    max_pending: int = 0) -> QueryServer:
    """Start the line-protocol server (``port=0`` picks a free port).

    Pass a pre-bound *sock* instead of host/port to serve a socket the
    caller prepared (the fleet's ``SO_REUSEPORT`` workers do).  Returns
    the running :class:`QueryServer`; callers ``await
    server.wait_closed()`` to serve until a SHUTDOWN request arrives.
    """
    holder = QueryServer(engine=engine, request_timeout=request_timeout,
                         max_pending=max_pending)
    if sock is not None:
        holder.server = await asyncio.start_server(holder._handle, sock=sock)
    else:
        holder.server = await asyncio.start_server(holder._handle, host, port)
    return holder


async def run_server(db: Database, options: Optional[EngineOptions] = None,
                     host: str = "127.0.0.1", port: int = 7433,
                     max_concurrency: Optional[int] = None,
                     request_timeout: Optional[float] = None,
                     max_pending: int = 0,
                     membership_port: Optional[int] = None,
                     announce=print) -> None:
    """``astore serve``: build the engine, listen, serve until SHUTDOWN
    (or cancellation, e.g. KeyboardInterrupt in the CLI).

    With *membership_port* set (0 = pick a free port) the serve process
    also hosts the cluster's :class:`~repro.engine.membership
    .MembershipServer`: shard nodes ``astore node --join`` it, and the
    engine's remote backend follows the resulting view — crashed nodes
    fall out, restarted ones rejoin, and the join reply's stamps give a
    restarted node its catch-up fencing.
    """
    from dataclasses import replace

    membership_server = None
    if membership_port is not None:
        from .membership import MembershipServer
        from .sharding import database_stamp

        membership_server = MembershipServer(
            host=host, port=membership_port,
            stamps_fn=lambda: database_stamp(db)).start()
        if options is None:
            options = EngineOptions(parallel_backend="remote",
                                    cache_results=True)
        options = replace(options, membership=membership_server.address)
        announce(f"astore serve: membership view on "
                 f"{membership_server.address}")
    engine = AsyncEngine(db, options=options, max_concurrency=max_concurrency)
    server = await serve_tcp(engine, host, port,
                             request_timeout=request_timeout,
                             max_pending=max_pending)
    bound_host, bound_port = server.address
    announce(f"astore serve: listening on {bound_host}:{bound_port} "
             f"(backend={engine.engine.options.parallel_backend}, "
             f"workers={engine.engine.options.workers}, "
             f"max_concurrency={engine.max_concurrency})")
    try:
        await server.wait_closed()
    finally:
        await server.stop()
        if membership_server is not None:
            membership_server.close()
    announce(f"astore serve: stopped after {server.requests} requests "
             f"({server.failures} failed)")

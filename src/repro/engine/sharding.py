"""Portable bound plans and the process shard backend (Section 5).

The paper's multicore design partitions the fact table horizontally and
aggregates each partition independently.  The ``thread`` backend realizes
that shape inside one interpreter; this module realizes it across
*processes*, which requires two things the live operator tree cannot do:

* **Portability** — a query compiles to a :class:`BoundQuery`: a picklable
  artifact bundling the variant-rewritten ``OpSpec`` DAG, the leaf-binding
  products (packed :class:`~repro.engine.operators.PredicateFilter`
  vectors, probe predicates, group axes), aggregation metadata, and the
  MVCC snapshot version.  Workers rebuild a fresh operator pipeline from
  it per shard — no closures, no live database references.
* **Zero-copy data** — the parent exports the database's column buffers
  once into a shared-memory :class:`~repro.core.arena.ColumnArena`;
  each worker attaches read-only NumPy views, so shard scans read the
  same physical arrays as the parent.

:class:`ProcessShardBackend` owns the arena plus a persistent spawn pool
and maps :class:`ShardTask`\\ s over it; per-shard partial states
(:class:`~repro.engine.aggregate.AggregationState`, gather states, or
projection chunks) and per-operator timings come back as
:class:`ShardOutcome` values that the caller merges in shard order —
exactly the element-wise merge of the paper's Section 5.

The same machinery carries the Section 6 baselines
(:class:`BaselineBoundQuery`), so every engine in the repo can run on any
``BACKENDS`` entry.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Database
from ..core.arena import AttachedDatabase, ColumnArena, attach_database
from ..errors import ExecutionError
from ..plan.binder import LogicalPlan
from ..plan.expressions import BoundColumn, BoundExpression, bound_columns
from ..plan.optimizer import OpSpec
from .grouping import GroupAxis, total_groups
from .operators import (
    AIRProbe,
    ApplyMask,
    Filter,
    FilterLike,
    GroupCombine,
    IntersectScan,
    MaterializeColumns,
    Morsel,
    MorselDispatcher,
    MorselResult,
    Operator,
    PredicateFilter,
    Aggregate,
    Project,
    ValueGather,
)
from .slice import universal_provider


def visible_positions(db: Database, root: str,
                      snapshot: Optional[int] = None) -> np.ndarray:
    """Visible root-table row ids (live now, or at an MVCC *snapshot*)."""
    table = db.table(root)
    if snapshot is not None or table.has_deletes:
        return np.flatnonzero(table.live_mask(snapshot)).astype(np.int64)
    return np.arange(table.num_rows, dtype=np.int64)


def baseline_filter_steps(logical: LogicalPlan,
                          dim_filters: Dict[str, PredicateFilter]
                          ) -> List[FilterLike]:
    """The baseline scan chain: fact predicates, semi-join probes, then
    existence probes — shared by the inline engines and the portable
    baseline plan so the two paths can never diverge."""
    steps: List[FilterLike] = []
    for expr in logical.fact_conjuncts:
        steps.append(Filter(expr))
    for first_dim, pf in dim_filters.items():
        steps.append(AIRProbe(first_dim, "vector", pf))
    for first_dim in logical.first_level_dims:
        if first_dim not in dim_filters:
            steps.append(AIRProbe(first_dim, "exists"))
    return steps


@dataclass
class LeafProducts:
    """Outcome of the leaf-processing stage, in portable form.

    ``filters`` hold packed predicate vectors (Section 4.2) — their
    pickle form ships only the packed bits; ``probes`` are the bound
    predicates of dimensions probed directly through AIR; ``axes`` are
    the group axes (Section 4.3) with their globally-encoded group
    vectors, which is what lets per-shard aggregation states merge
    without re-encoding.
    """

    filters: Dict[str, PredicateFilter] = field(default_factory=dict)
    filter_density: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, BoundExpression] = field(default_factory=dict)
    probe_selectivity: Dict[str, float] = field(default_factory=dict)
    axes: List[GroupAxis] = field(default_factory=list)


@dataclass(eq=False)
class BoundQuery:
    """A compiled, portable query: DAG + leaf products + plan metadata.

    This is the artifact every backend executes.  Inline backends bind
    its pipelines in-process; the process backend pickles it to workers,
    each of which rebuilds the pipeline against its attached copy of the
    database and runs one horizontal shard.

    ``eq=False`` keeps identity semantics: a bound plan is cached and
    shipped *by object* (the query cache returns the same instance for
    repeated queries, which is what lets the shard backend memoize its
    pickle per plan), so value equality would only invite accidental
    deep comparisons of leaf products.

    ``cache_key``/``cache_events`` are bookkeeping stamped on by
    :meth:`repro.engine.executor.AStoreEngine.compile` when the query
    cache is active: the plan-tier key (which doubles as the result-tier
    key) and the per-compile hit/miss events folded into
    :class:`~repro.engine.result.ExecutionStats`.
    """

    variant: str
    scan: str                        # "column" | "row" | "projection"
    specs: Tuple[OpSpec, ...]        # variant-rewritten operator DAG
    logical: LogicalPlan
    leaf: LeafProducts
    snapshot: Optional[int]
    morsel_rows: int
    chunk_rows: int
    use_array_hint: bool             # the optimizer's §4.3 estimate
    leaf_seconds: float = 0.0        # time spent producing ``leaf``
    cache_key: Optional[tuple] = None
    cache_events: Dict[str, int] = field(default_factory=dict)

    @property
    def ngroups(self) -> int:
        """Dense aggregation-array size (product of axis cardinalities)."""
        return (total_groups([axis.card for axis in self.leaf.axes])
                if self.leaf.axes else 1)

    # -- pipeline binding ---------------------------------------------------

    def filter_ops(self, defer: bool = False) -> List[FilterLike]:
        """Bind the filter-like DAG nodes, ordered by runtime selectivity.

        The plan orders filters by *estimated* selectivity; once the
        predicate vectors exist their exact density is known, so the
        bound operators are re-sorted on the refreshed numbers (stable,
        like the plan order).
        """
        leaf = self.leaf
        ops: List[FilterLike] = []
        for spec in self.specs:
            if spec.op == "filter":
                ops.append(Filter(spec.payload, selectivity=spec.selectivity,
                                  defer=defer))
            elif spec.op == "air-probe":
                dd = spec.payload
                if dd.first_dim in leaf.filters:
                    ops.append(AIRProbe(
                        dd.first_dim, "vector", leaf.filters[dd.first_dim],
                        selectivity=leaf.filter_density[dd.first_dim],
                        defer=defer))
                else:
                    ops.append(AIRProbe(
                        dd.first_dim, "predicate", leaf.probes[dd.first_dim],
                        selectivity=leaf.probe_selectivity[dd.first_dim],
                        defer=defer))
        ops.sort(key=lambda op: op.selectivity)
        return ops

    def scan_pipeline(self) -> List[Operator]:
        """Phase-2 pipeline: filters/probes then the Measure Index."""
        return [*self.filter_ops(), GroupCombine(self.leaf.axes)]

    def aggregate_pipeline(self, use_array: bool) -> List[Operator]:
        """Phase-3 pipeline over already-scanned morsels."""
        return [Aggregate(self.logical.aggregates, self.ngroups,
                          use_array or not self.leaf.axes)]

    def column_pipeline(self, use_array: bool) -> List[Operator]:
        """Scan + aggregate fused into one trip (the per-shard form)."""
        return [*self.scan_pipeline(), *self.aggregate_pipeline(use_array)]

    def row_pipeline(self) -> List[Operator]:
        """Full-tuple pipeline of the ``AIRScan_R*`` variants."""
        ops: List[Operator] = [MaterializeColumns(self.referenced_columns())]
        ops.extend(self.filter_ops(defer=True))
        ops.append(ApplyMask())
        ops.append(ValueGather(self.logical))
        return ops

    def projection_pipeline(self) -> List[Operator]:
        """Pure SPJ: filters then projection collection."""
        return [*self.filter_ops(),
                Project(self.logical.projection_columns)]

    # -- decisions ----------------------------------------------------------

    def decide_use_array(self, total_selected: int) -> bool:
        """Section 4.3's sparsity check against a known selection size:
        the dense array is only worthwhile when it is not hugely larger
        than the number of tuples feeding it."""
        if not (self.use_array_hint and self.leaf.axes):
            return False
        return self.ngroups <= max(4096, 8 * total_selected)

    def estimated_selected(self, nbase: int) -> int:
        """Pre-dispatch selection estimate from the bound selectivities.

        The process backend fuses scan and aggregation into one worker
        trip, so the §4.3 decision cannot wait for the actual selection
        size; predicate-vector densities are exact and fact-conjunct
        selectivities are sampled, so the product is a sound stand-in.
        """
        fraction = 1.0
        for op in self.filter_ops():
            fraction *= min(1.0, max(0.0, float(op.selectivity)))
        return max(1, int(nbase * fraction))

    # -- data binding --------------------------------------------------------

    def base_positions(self, db: Database) -> np.ndarray:
        """Visible root-table row ids (live now, or at the MVCC snapshot)."""
        return visible_positions(db, self.logical.root, self.snapshot)

    def morsel(self, db: Database, positions: np.ndarray,
               full: bool = False) -> Morsel:
        """A morsel over *positions*; ``full=True`` marks the identity
        case (every physical root row, in order), which lets the
        provider serve zero-copy column views and the first refinement
        skip its position gather."""
        if full:
            return Morsel(None, universal_provider(
                db, self.logical.root, self.logical.paths, None))
        return Morsel(positions, universal_provider(
            db, self.logical.root, self.logical.paths, positions))

    def make_morsels(self, db: Database, base: np.ndarray,
                     parts: int, morsel_rows: int,
                     allow_identity: bool = True) -> List[Morsel]:
        """Partition *base* into morsels, detecting the identity case.

        ``base`` positions are always sorted unique root row ids, so a
        single chunk covering every physical row *is* the identity
        selection and gets the zero-copy provider.  ``allow_identity``
        must be False for pipelines whose *outputs* could pass a fetched
        slice through unchanged (projections): an identity provider's
        slices are views of live column storage, and a result must never
        alias buffers that later in-place updates rewrite.  Aggregating
        pipelines always reduce into owned arrays, so they keep the
        zero-copy fast path.
        """
        chunks = [chunk
                  for part in MorselDispatcher.partition(base, parts)
                  for chunk in MorselDispatcher.chunk(part, morsel_rows)]
        nrows = db.table(self.logical.root).num_rows
        full = (allow_identity and len(chunks) == 1
                and len(chunks[0]) == nrows)
        return [self.morsel(db, chunk, full=full) for chunk in chunks]

    def referenced_columns(self) -> List[BoundColumn]:
        """Every column the full-tuple variants must materialize."""
        logical = self.logical
        needed: List[BoundColumn] = []
        seen = set()

        def add(expr):
            for column in bound_columns(expr):
                if column not in seen:
                    seen.add(column)
                    needed.append(column)

        for spec in self.specs:
            if spec.op == "filter":
                add(spec.payload)
        for predicate in self.leaf.probes.values():
            add(predicate)
        for key in logical.group_keys:
            add(key.column)
        for spec in logical.aggregates:
            if spec.expr is not None:
                add(spec.expr)
        for key in logical.projection_columns:
            add(key.column)
        return needed

    # -- shard execution (worker side) --------------------------------------

    def run_shard(self, db: Database, shard: int, nshards: int,
                  use_array: Optional[bool]) -> "ShardOutcome":
        """Rebuild the pipeline and run one horizontal shard to completion."""
        base = self.base_positions(db)
        parts = MorselDispatcher.partition(base, nshards)
        if shard >= len(parts):
            return ShardOutcome()
        mine = parts[shard]
        if self.scan == "row":
            rows = self.chunk_rows
            factory = self.row_pipeline
        elif self.scan == "projection":
            rows = 0
            factory = self.projection_pipeline
        else:
            rows = self.morsel_rows
            factory = lambda: self.column_pipeline(bool(use_array))  # noqa: E731
        morsels = self.make_morsels(db, mine, 1, rows,
                                    allow_identity=self.scan != "projection")
        results = MorselDispatcher("serial").run(morsels, factory)
        return ShardOutcome.collect(results)


@dataclass(eq=False)
class BaselineBoundQuery:
    """Portable form of a Section 6 baseline query.

    The baselines bind their leaf side to semi-join reduction masks and
    hash tables; both are dimension-sized and ship with the plan, so a
    worker only rebuilds the provider chain and the shape's operator
    list.  ``shape`` selects the engine's DAG form.
    """

    shape: str                       # "materializing"|"fused"|"vectorized-pipeline"
    logical: LogicalPlan
    dim_filters: Dict[str, PredicateFilter]
    hash_tables: dict                # Reference -> IntHashTable
    block_rows: int = 0              # >0: block-at-a-time morsels

    def pipeline(self) -> List[Operator]:
        steps = baseline_filter_steps(self.logical, self.dim_filters)
        if self.shape == "materializing":
            return [IntersectScan(steps), ValueGather(self.logical)]
        return [*steps, ValueGather(self.logical)]

    def base_positions(self, db: Database) -> np.ndarray:
        return visible_positions(db, self.logical.root)

    def morsel(self, db: Database, positions: np.ndarray) -> Morsel:
        from ..baselines.common import fact_provider

        return Morsel(positions,
                      fact_provider(db, self.logical, self.hash_tables,
                                    positions))

    def run_shard(self, db: Database, shard: int, nshards: int,
                  use_array: Optional[bool]) -> "ShardOutcome":
        base = self.base_positions(db)
        parts = MorselDispatcher.partition(base, nshards)
        if shard >= len(parts):
            return ShardOutcome()
        mine = parts[shard]
        chunks = (MorselDispatcher.chunk(mine, self.block_rows)
                  if self.block_rows > 0 else [mine])
        morsels = [self.morsel(db, chunk) for chunk in chunks]
        results = MorselDispatcher("serial").run(morsels, self.pipeline)
        return ShardOutcome.collect(results)


# -- shard plumbing ----------------------------------------------------------


@dataclass
class ShardOutcome:
    """One shard's merged partial results, as shipped back to the parent.

    ``finishes`` maps operator label to either a merged partial state
    (anything exposing ``merge``, e.g. aggregation/gather states) or, for
    stateless collectors like ``project``, the ordered list of per-morsel
    values; the parent merges outcomes across shards in shard order, so
    results never depend on scheduling.
    """

    finishes: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    selected: int = 0
    morsels: int = 0
    seconds: float = 0.0

    @classmethod
    def collect(cls, results: Sequence[MorselResult]) -> "ShardOutcome":
        outcome = cls(morsels=len(results))
        for result in results:
            outcome.selected += len(result.morsel)
            outcome.seconds += result.seconds
            for label, seconds in result.timings.items():
                outcome.timings[label] = (
                    outcome.timings.get(label, 0.0) + seconds)
            for label, value in result.finishes.items():
                current = outcome.finishes.get(label)
                if current is None:
                    outcome.finishes[label] = (
                        value if hasattr(value, "merge") else [value])
                elif hasattr(current, "merge"):
                    outcome.finishes[label] = current.merge(value)
                else:
                    current.append(value)
        return outcome


def fold_outcomes(outcomes: Sequence[ShardOutcome], stats,
                  agg_labels: Tuple[str, ...]) -> None:
    """Fold shard timings and counters into *stats*.

    Operator labels starting with one of *agg_labels* count as the
    aggregation phase, everything else as the scan phase — the same
    attribution the inline backends make per morsel.
    """
    stats.morsels += sum(o.morsels for o in outcomes)
    stats.rows_selected += sum(o.selected for o in outcomes)
    for outcome in outcomes:
        for label, seconds in outcome.timings.items():
            stats.operator_seconds[label] = (
                stats.operator_seconds.get(label, 0.0) + seconds)
            if label.startswith(agg_labels):
                stats.aggregation_seconds += seconds
            else:
                stats.scan_seconds += seconds


def merge_outcome_states(outcomes: Sequence[ShardOutcome]):
    """Merge per-shard partial states in shard order (element-wise §5)."""
    merged = None
    for outcome in outcomes:
        for partial in outcome.finishes.values():
            merged = partial if merged is None else merged.merge(partial)
    return merged


@dataclass
class ShardTask:
    """One worker assignment: pickled plan + shard index.

    The parent pickles each plan *object* once (``plan_bytes``, memoized
    per backend) so the expensive part — packed vectors, axes, hash
    tables — is serialized a single time, not once per shard and not
    once per query when the query cache serves the same bound plan
    repeatedly; ``plan_seq`` is stable per plan object, letting a worker
    that already deserialized it skip even the unpickling.
    """

    plan_bytes: bytes
    plan_seq: int
    shard: int
    nshards: int
    use_array: Optional[bool] = None


_ATTACHED: Optional[AttachedDatabase] = None
_PLAN_CACHE: Tuple[int, object] = (-1, None)


def _worker_attach(manifest) -> None:
    """Pool initializer: attach the shared arena once per worker."""
    global _ATTACHED
    _ATTACHED = attach_database(manifest)


def _worker_run(task: ShardTask) -> ShardOutcome:
    global _PLAN_CACHE
    if _ATTACHED is None:  # pragma: no cover - initializer always runs
        raise ExecutionError("shard worker has no attached database")
    seq, plan = _PLAN_CACHE
    if seq != task.plan_seq:
        plan = pickle.loads(task.plan_bytes)
        _PLAN_CACHE = (task.plan_seq, plan)
    return plan.run_shard(_ATTACHED.db, task.shard, task.nshards,
                          task.use_array)


def database_stamp(db: Database) -> Tuple[tuple, ...]:
    """A cheap point-in-time identity of a database's *content*: the
    per-table mutation counters.  A shared-memory arena exported at stamp
    S serves exactly the data visible at S; any later insert/delete/
    update/consolidate changes the stamp and marks the arena stale."""
    return tuple(sorted(
        (name, table.mutation_count) for name, table in db.tables.items()))


class ProcessShardBackend:
    """A database exported to shared memory plus a persistent worker pool.

    Created lazily by an engine on its first process-backed query and
    held for the engine's lifetime, so the arena export and interpreter
    spawns amortize across queries.  The export is a *point-in-time
    copy*: :meth:`is_stale` compares the database's mutation stamp so
    callers re-export after writes instead of serving stale shards.
    ``close()`` terminates the pool and unlinks the segment; engines
    expose it as their own ``close()``.  Use :func:`acquire_shard_backend`
    / :func:`release_shard_backend` to share one backend (one arena, one
    pool) across all engines over the same database.
    """

    _plan_seq = itertools.count()

    def __init__(self, db: Database, workers: int):
        self.workers = max(1, int(workers))
        self.stamp = database_stamp(db)
        self.refs = 0
        self._registry_key: Optional[tuple] = None
        # (seq, pickle) per live plan object: a cached BoundQuery served
        # for the thousandth time ships the bytes serialized the first
        # time — and keeps its ``plan_seq``, so workers that already
        # hold the plan skip deserialization too.  Weak keys drop the
        # memo with the plan.
        self._plan_pickles: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary())
        self.arena = ColumnArena.export(db)
        ctx = multiprocessing.get_context("spawn")
        self._pool = ctx.Pool(self.workers, initializer=_worker_attach,
                              initargs=(self.arena.manifest,))

    def is_stale(self, db: Database) -> bool:
        """Has *db* been mutated since this backend's arena was exported?"""
        return database_stamp(db) != self.stamp

    def run(self, plan, nshards: Optional[int] = None,
            use_array: Optional[bool] = None) -> List[ShardOutcome]:
        """Run *plan* over ``nshards`` horizontal shards (default: one
        per worker); outcomes come back in shard order."""
        if self._pool is None:
            raise ExecutionError("process shard backend is closed")
        nshards = nshards or self.workers
        memo = self._plan_pickles.get(plan)
        if memo is None:
            memo = (next(self._plan_seq),
                    pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL))
            self._plan_pickles[plan] = memo
        seq, plan_bytes = memo
        tasks = [ShardTask(plan_bytes, seq, shard, nshards, use_array)
                 for shard in range(nshards)]
        return self._pool.map(_worker_run, tasks, chunksize=1)

    def close(self) -> None:
        """Terminate the workers and release the shared segment."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        self.arena.close()

    def __enter__(self) -> "ProcessShardBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: One shared backend per (database identity, worker count): a harness
#: sweep over ten engines exports the database once, not ten times.
_SHARED_BACKENDS: Dict[tuple, ProcessShardBackend] = {}


def acquire_shard_backend(db: Database, workers: int) -> ProcessShardBackend:
    """A refcounted, staleness-checked shard backend for *db*.

    Engines over the same database and worker count share one arena and
    one pool; every acquire must be paired with a
    :func:`release_shard_backend` (engines do this in ``close()``).  A
    backend whose arena predates a database mutation is evicted here —
    current holders drain it via their own ``is_stale`` check — and a
    fresh export takes its place.
    """
    key = (id(db), max(1, int(workers)))
    backend = _SHARED_BACKENDS.get(key)
    if backend is not None and backend.is_stale(db):
        _SHARED_BACKENDS.pop(key, None)
        if backend.refs <= 0:
            backend.close()
        backend = None
    if backend is None:
        backend = ProcessShardBackend(db, workers)
        backend._registry_key = key
        _SHARED_BACKENDS[key] = backend
        weakref.finalize(db, _evict_backend, key)
    backend.refs += 1
    return backend


def release_shard_backend(backend: ProcessShardBackend) -> None:
    """Drop one reference; the last holder closes arena and pool."""
    backend.refs -= 1
    if backend.refs <= 0:
        key = backend._registry_key
        if key is not None and _SHARED_BACKENDS.get(key) is backend:
            _SHARED_BACKENDS.pop(key, None)
        backend.close()


def _evict_backend(key: tuple) -> None:
    """Finalizer: the database was garbage-collected, so nobody can use
    (or properly release) the backend any more — close it outright."""
    backend = _SHARED_BACKENDS.pop(key, None)
    if backend is not None:
        backend.close()

"""Portable bound plans and the process shard backend (Section 5).

The paper's multicore design partitions the fact table horizontally and
aggregates each partition independently.  The ``thread`` backend realizes
that shape inside one interpreter; this module realizes it across
*processes*, which requires two things the live operator tree cannot do:

* **Portability** — a query compiles to a :class:`BoundQuery`: a picklable
  artifact bundling the variant-rewritten ``OpSpec`` DAG, the leaf-binding
  products (packed :class:`~repro.engine.operators.PredicateFilter`
  vectors, probe predicates, group axes), aggregation metadata, and the
  MVCC snapshot version.  Workers rebuild a fresh operator pipeline from
  it per shard — no closures, no live database references.
* **Zero-copy data** — the parent exports the database's column buffers
  once into a shared-memory :class:`~repro.core.arena.ColumnArena`;
  each worker attaches read-only NumPy views, so shard scans read the
  same physical arrays as the parent.

:class:`ProcessShardBackend` owns the arena plus a persistent spawn pool
and maps :class:`ShardTask`\\ s over it; per-shard partial states
(:class:`~repro.engine.aggregate.AggregationState`, gather states, or
projection chunks) and per-operator timings come back as
:class:`ShardOutcome` values that the caller merges in shard order —
exactly the element-wise merge of the paper's Section 5.

The same machinery carries the Section 6 baselines
(:class:`BaselineBoundQuery`), so every engine in the repo can run on any
``BACKENDS`` entry.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import pickle
import threading
import weakref
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Database
from ..core.arena import AttachedDatabase, ColumnArena, attach_database
from ..core.statistics import fresh_zone_entries, zone_maps_for
from ..errors import ExecutionError, ShardExecutionError
from ..plan.binder import LogicalPlan
from ..plan.expressions import BoundColumn, BoundExpression, bound_columns
from ..plan.optimizer import OpSpec
from .cache import query_cache_for, table_stamps
from .grouping import GroupAxis, total_groups
from .operators import (
    AIRProbe,
    ApplyMask,
    Filter,
    FilterLike,
    GroupCombine,
    IntersectScan,
    MaterializeColumns,
    Morsel,
    MorselDispatcher,
    MorselResult,
    Operator,
    PredicateFilter,
    ReorderState,
    Aggregate,
    Project,
    ValueGather,
)
from .slice import RowRange, dimension_provider, universal_provider


def visible_positions(db: Database, root: str,
                      snapshot: Optional[int] = None) -> np.ndarray:
    """Visible root-table row ids (live now, or at an MVCC *snapshot*)."""
    table = db.table(root)
    if snapshot is not None or table.has_deletes:
        return np.flatnonzero(table.live_mask(snapshot)).astype(np.int64)
    return np.arange(table.num_rows, dtype=np.int64)


def baseline_filter_steps(logical: LogicalPlan,
                          dim_filters: Dict[str, PredicateFilter]
                          ) -> List[FilterLike]:
    """The baseline scan chain: fact predicates, semi-join probes, then
    existence probes — shared by the inline engines and the portable
    baseline plan so the two paths can never diverge."""
    steps: List[FilterLike] = []
    for expr in logical.fact_conjuncts:
        steps.append(Filter(expr))
    for first_dim, pf in dim_filters.items():
        steps.append(AIRProbe(first_dim, "vector", pf))
    for first_dim in logical.first_level_dims:
        if first_dim not in dim_filters:
            steps.append(AIRProbe(first_dim, "exists"))
    return steps


@dataclass(frozen=True)
class LeafFilterSpec:
    """The recipe for (re)building one dimension predicate vector.

    Ships instead of the packed bits when the vector exceeds the
    engine's ``leaf_ship_bytes`` threshold: a worker evaluates the
    predicate once against its attached copy of the dimension (a
    shared-memory view, so the scan is zero-copy) and memoizes the
    result in its local leaf tier — large dimensions then cost one
    worker-side scan instead of a per-plan pickle payload.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    first_dim: str
    predicate: BoundExpression
    snapshot: Optional[int]


def build_predicate_filter(db: Database, paths,
                           spec: LeafFilterSpec) -> PredicateFilter:
    """Evaluate one dimension predicate into a packed vector (the leaf
    stage's kernel, shared by the executor and shard workers)."""
    from .expression import evaluate_predicate

    provider = dimension_provider(db, spec.first_dim, paths)
    mask = evaluate_predicate(spec.predicate, provider)
    dim = db.table(spec.first_dim)
    if spec.snapshot is not None or dim.has_deletes:
        mask = mask & dim.live_mask(spec.snapshot)
    return PredicateFilter(mask)


@dataclass
class LeafProducts:
    """Outcome of the leaf-processing stage, in portable form.

    ``filters`` hold packed predicate vectors (Section 4.2) — their
    pickle form ships only the packed bits; ``probes`` are the bound
    predicates of dimensions probed directly through AIR; ``axes`` are
    the group axes (Section 4.3) with their globally-encoded group
    vectors, which is what lets per-shard aggregation states merge
    without re-encoding.

    ``lazy_specs`` lists filters that cross process boundaries as
    :class:`LeafFilterSpec` recipes instead of packed bits (worker-side
    leaf processing); :meth:`__getstate__` swaps them out of the pickle
    and :meth:`hydrate` rebuilds any that are missing.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    filters: Dict[str, PredicateFilter] = field(default_factory=dict)
    filter_density: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, BoundExpression] = field(default_factory=dict)
    probe_selectivity: Dict[str, float] = field(default_factory=dict)
    axes: List[GroupAxis] = field(default_factory=list)
    lazy_specs: Dict[str, LeafFilterSpec] = field(default_factory=dict)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if self.lazy_specs:
            state["filters"] = {dim: pf for dim, pf in self.filters.items()
                                if dim not in self.lazy_specs}
        return state

    def hydrate(self, db: Database, logical: LogicalPlan) -> None:
        """Build any lazily-shipped filters against *db*, memoized in
        the database's shared leaf tier (per worker, that is the
        attached database's cache, so repeated plans rebuild nothing)."""
        for dim, spec in self.lazy_specs.items():
            if dim in self.filters:
                continue
            cache = query_cache_for(db)
            involved = tuple(sorted({dim} | logical.subtree_of(dim)))
            key = ("worker-pf", dim, involved, spec.snapshot, spec.predicate)
            pf = cache.get("leaf", key, db)
            if pf is None:
                stamps = table_stamps(db, involved)
                pf = build_predicate_filter(db, logical.paths, spec)
                cache.put("leaf", key, pf, stamps, pf.nbytes)
            self.filters[dim] = pf


#: Per-block prune verdicts: drop the block / run it / run it with the
#: filter chain proven redundant.
PRUNE_SKIP, PRUNE_SCAN, PRUNE_ACCEPT = 0, 1, 2


def _state_runs(states: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal ``[start, stop)`` runs of equal values in *states*."""
    breaks = np.flatnonzero(np.diff(states)) + 1
    edges = [0, *breaks.tolist(), len(states)]
    return list(zip(edges[:-1], edges[1:]))


def _code_set_verdicts(csm, member: np.ndarray):
    """``(empty, full)`` per-block verdicts of a membership predicate
    against a :class:`~repro.core.statistics.ColumnCodeSetMap`.

    A block is *empty* when its bitmap shares no bit with the passing
    codes (sound even folded: folding only merges codes, so a shared
    bit is a necessary condition for a shared code) and *full* when the
    summary is exact and the block's bitmap is a subset of the passing
    codes.  Dirty blocks (out-of-domain codes present) get no verdict.
    """
    pass_bits = csm.fold_mask(member)
    empty = ~np.bitwise_and(csm.bits, pass_bits[None, :]).any(axis=1)
    if csm.exact:
        # packbits pads with zero bits, so the pad region of csm.bits
        # never intersects ~pass_bits' (set) pad bits
        full = ~np.bitwise_and(csm.bits, ~pass_bits[None, :]).any(axis=1)
    else:
        full = np.zeros(csm.nblocks, dtype=bool)
    if csm.dirty.any():
        empty &= ~csm.dirty
        full &= ~csm.dirty
    return empty, full


@dataclass
class PruneCounters:
    """What the data-skipping layer did for one execution (block units)."""

    blocks_skipped: int = 0
    blocks_accepted: int = 0
    blocks_scanned: int = 0
    gated: int = 0               # verdict passes bypassed by the cost gate
    pruned: bool = False


#: The cost gate: run the pruned path only when the verdicts promise at
#: least this fraction of blocks skipped (accepted blocks count half — a
#: proven-accepted block still scans, it only skips its filter chain).
#: Below the threshold, verdict bookkeeping and the position-path morsel
#: shapes cost more than the skipped blocks recoup (the Q3-family
#: regression), so the scan runs exactly as if pruning were off.
GATE_MIN_FRACTION = 0.25

#: Each maximal run of surviving blocks charges this many blocks against
#: the gate's payoff.  Fragmented survivors (a mid-skip-fraction
#: predicate orthogonal to the leading cluster keys — Q4.1) turn into
#: scattered position gathers whose cost grows with the fragment count;
#: a contiguous survivor band (Q1) or a near-total skip (Q3.2) is barely
#: charged at all.
GATE_RUN_PENALTY = 2.5

#: Survivor bands shorter than this many rows are batched into shared
#: morsels.  A highly selective predicate with no clustering-prefix
#: component (Q2: part hierarchy, no year) leaves one short band per
#: outer cluster, and a morsel per band pays the fixed pipeline cost —
#: operator construction, per-task aggregation state, a dispatch — per
#: band, which at small scale outweighs the scan the skip saved.
COALESCE_ROWS = 32768


@dataclass(eq=False)
class BoundQuery:
    """A compiled, portable query: DAG + leaf products + plan metadata.

    This is the artifact every backend executes.  Inline backends bind
    its pipelines in-process; the process backend pickles it to workers,
    each of which rebuilds the pipeline against its attached copy of the
    database and runs one horizontal shard.

    ``eq=False`` keeps identity semantics: a bound plan is cached and
    shipped *by object* (the query cache returns the same instance for
    repeated queries, which is what lets the shard backend memoize its
    pickle per plan), so value equality would only invite accidental
    deep comparisons of leaf products.

    ``cache_key``/``cache_events`` are bookkeeping stamped on by
    :meth:`repro.engine.executor.AStoreEngine.compile` when the query
    cache is active: the plan-tier key (which doubles as the result-tier
    key) and the per-compile hit/miss events folded into
    :class:`~repro.engine.result.ExecutionStats`.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    variant: str
    scan: str                        # "column" | "row" | "projection"
    specs: Tuple[OpSpec, ...]        # variant-rewritten operator DAG
    logical: LogicalPlan
    leaf: LeafProducts
    snapshot: Optional[int]
    morsel_rows: int
    chunk_rows: int
    use_array_hint: bool             # the optimizer's §4.3 estimate
    leaf_seconds: float = 0.0        # time spent producing ``leaf``
    cache_key: Optional[tuple] = None
    cache_events: Dict[str, int] = field(default_factory=dict)
    prune_enabled: bool = True       # consult zone maps in make_morsels
    adaptive: bool = True            # micro-adaptive filter ordering
    zone_block_rows: int = 0         # 0 = per-table default block size

    def __getstate__(self) -> dict:
        # the reorder state is observed-runtime, not plan content: each
        # process rebuilds its own (a lock also cannot cross a pickle);
        # block-state memos are per-database-object and cannot travel
        state = dict(self.__dict__)
        state.pop("_reorder", None)
        state.pop("_prune_states", None)
        return state

    @property
    def ngroups(self) -> int:
        """Dense aggregation-array size (product of axis cardinalities)."""
        return (total_groups([axis.card for axis in self.leaf.axes])
                if self.leaf.axes else 1)

    def hydrate(self, db: Database) -> None:
        """Rebuild lazily-shipped leaf filters against *db* (no-op when
        every filter travelled with the plan)."""
        if self.leaf.lazy_specs:
            self.leaf.hydrate(db, self.logical)

    # -- pipeline binding ---------------------------------------------------

    def reorder_state(self) -> ReorderState:
        """The shared observed-pass-rate state of this plan's filters
        (per process; lazily created, never pickled).  ``setdefault``
        keeps the first-use creation atomic under the GIL, so two
        concurrent pipeline binds on a shared cached plan can never end
        up observing two different states (torn first-use sizing)."""
        state = self.__dict__.get("_reorder")
        if state is None:
            state = self.__dict__.setdefault("_reorder", ReorderState())
        return state

    def filter_ops(self, defer: bool = False) -> List[FilterLike]:
        """Bind the filter-like DAG nodes, ordered by runtime selectivity.

        The plan orders filters by *estimated* selectivity; once the
        predicate vectors exist their exact density is known, so the
        bound operators are re-sorted on the refreshed numbers (stable,
        like the plan order).  With ``adaptive`` on, the order further
        tracks the pass-rates *observed* on earlier morsels (with
        periodic re-exploration of the static order) — conjunct order
        never changes results, only which step shrinks the morsel first.
        """
        leaf = self.leaf
        ops: List[FilterLike] = []
        for spec in self.specs:
            if spec.op == "filter":
                ops.append(Filter(spec.payload, selectivity=spec.selectivity,
                                  defer=defer))
            elif spec.op == "air-probe":
                dd = spec.payload
                if dd.first_dim in leaf.filters:
                    ops.append(AIRProbe(
                        dd.first_dim, "vector", leaf.filters[dd.first_dim],
                        selectivity=leaf.filter_density[dd.first_dim],
                        defer=defer))
                else:
                    ops.append(AIRProbe(
                        dd.first_dim, "predicate", leaf.probes[dd.first_dim],
                        selectivity=leaf.probe_selectivity[dd.first_dim],
                        defer=defer))
        static = sorted(range(len(ops)), key=lambda i: ops[i].selectivity)
        if self.adaptive and len(ops) > 1:
            state = self.reorder_state()
            order = state.order(static)
            for i in order:
                ops[i].observer = (state, i)
        else:
            order = static
        return [ops[i] for i in order]

    def scan_pipeline(self) -> List[Operator]:
        """Phase-2 pipeline: filters/probes then the Measure Index."""
        return [*self.filter_ops(), GroupCombine(self.leaf.axes)]

    def aggregate_pipeline(self, use_array: bool) -> List[Operator]:
        """Phase-3 pipeline over already-scanned morsels."""
        return [Aggregate(self.logical.aggregates, self.ngroups,
                          use_array or not self.leaf.axes)]

    def column_pipeline(self, use_array: bool) -> List[Operator]:
        """Scan + aggregate fused into one trip (the per-shard form)."""
        return [*self.scan_pipeline(), *self.aggregate_pipeline(use_array)]

    def row_pipeline(self) -> List[Operator]:
        """Full-tuple pipeline of the ``AIRScan_R*`` variants."""
        ops: List[Operator] = [MaterializeColumns(self.referenced_columns())]
        ops.extend(self.filter_ops(defer=True))
        ops.append(ApplyMask())
        ops.append(ValueGather(self.logical))
        return ops

    def projection_pipeline(self) -> List[Operator]:
        """Pure SPJ: filters then projection collection."""
        return [*self.filter_ops(),
                Project(self.logical.projection_columns)]

    # -- decisions ----------------------------------------------------------

    def decide_use_array(self, total_selected: int) -> bool:
        """Section 4.3's sparsity check against a known selection size:
        the dense array is only worthwhile when it is not hugely larger
        than the number of tuples feeding it."""
        if not (self.use_array_hint and self.leaf.axes):
            return False
        return self.ngroups <= max(4096, 8 * total_selected)

    def estimated_selected(self, nbase: int) -> int:
        """Pre-dispatch selection estimate from the bound selectivities.

        The process backend fuses scan and aggregation into one worker
        trip, so the §4.3 decision cannot wait for the actual selection
        size; predicate-vector densities are exact and fact-conjunct
        selectivities are sampled, so the product is a sound stand-in.
        """
        leaf = self.leaf
        fraction = 1.0
        for spec in self.specs:
            if spec.op == "filter":
                sel = spec.selectivity
            elif spec.op == "air-probe":
                dim = spec.payload.first_dim
                sel = (leaf.filter_density.get(dim)
                       if dim in leaf.filters or dim in leaf.lazy_specs
                       else leaf.probe_selectivity.get(dim))
            else:
                continue
            if sel is not None:
                fraction *= min(1.0, max(0.0, float(sel)))
        return max(1, int(nbase * fraction))

    # -- data binding --------------------------------------------------------

    def base_positions(self, db: Database) -> np.ndarray:
        """Visible root-table row ids (live now, or at the MVCC snapshot)."""
        return visible_positions(db, self.logical.root, self.snapshot)

    def morsel(self, db: Database, positions: np.ndarray,
               full: bool = False) -> Morsel:
        """A morsel over *positions*; ``full=True`` marks the identity
        case (every physical root row, in order), which lets the
        provider serve zero-copy column views and the first refinement
        skip its position gather."""
        if full:
            return Morsel(None, universal_provider(
                db, self.logical.root, self.logical.paths, None))
        return Morsel(positions, universal_provider(
            db, self.logical.root, self.logical.paths, positions))

    # -- data skipping -------------------------------------------------------

    def prune_steps(self):
        """The summary-checkable steps of this plan.

        Returns ``(steps, complete, signature, involved)``: the steps as
        ``("interval", ColumnInterval)`` / ``("codes-eq",
        CodeSetPredicate)`` / ``("codes", fk_column, PredicateFilter)``
        tuples, whether *every* filter-like node is checkable (the
        precondition for fully-accepting a block), a hashable signature
        of the checks (so block verdicts are shareable between plans
        with the same predicate set), and the tables the verdicts were
        derived from (their stamps invalidate shared verdicts).
        """
        steps: List[tuple] = []
        signature: List[tuple] = []
        involved = {self.logical.root}
        complete = True
        for spec in self.specs:
            if spec.op == "filter":
                if spec.prune is not None and spec.prune[0] == "interval":
                    iv = spec.prune[1]
                    steps.append(spec.prune)
                    signature.append(("interval", iv.column, iv.lo, iv.hi,
                                      iv.exact))
                elif spec.prune is not None and spec.prune[0] == "codes-eq":
                    cs = spec.prune[1]
                    steps.append(spec.prune)
                    signature.append(("codes-eq", cs.column, cs.values))
                else:
                    complete = False
            elif spec.op == "air-probe":
                dd = spec.payload
                pf = self.leaf.filters.get(dd.first_dim)
                if spec.prune is not None and pf is not None:
                    fk = self._fk_column(dd.first_dim)
                    if fk is not None:
                        steps.append(("codes", fk, pf))
                        signature.append(("codes", fk, dd.first_dim,
                                          dd.predicate, self.snapshot))
                        involved.add(dd.first_dim)
                        involved.update(
                            self.logical.subtree_of(dd.first_dim))
                        continue
                complete = False
        return steps, complete, tuple(signature), involved

    def _fk_column(self, first_dim: str) -> Optional[str]:
        """The root-table AIR column referencing *first_dim*."""
        for path in self.logical.paths:
            ref = path.references[0]
            if ref.parent_table == first_dim:
                return ref.child_column
        return None

    def _block_states(self, db: Database):
        """Per-zone-block prune verdicts, or ``None`` when nothing is
        checkable.  Returns ``(states, block_rows, gated, aux)`` — *aux*
        is the cached entry's one-slot list for derived survivor ranges
        (see :meth:`prune_base`), ``None`` when nothing was cached.

        Memoized twice: per plan against the root table's mutation
        stamp (warm plans skip even the store lookup), and in the
        database's shared stamped store keyed by the *predicate
        signature* — so repeated cold compiles of the same (or a
        same-shaped) query share one verdict evaluation, invalidated by
        the stamps of every table it derived from.

        ``gated`` is the cost gate's decision, made from the verdicts
        themselves: when the expected payoff — skipped blocks plus half
        weight for proven-accepted ones — falls below
        :data:`GATE_MIN_FRACTION` of the table, pruning cannot recoup
        its own bookkeeping and the caller runs the plain scan."""
        root = self.logical.root
        stamp = db.table(root).mutation_count
        memo = self.__dict__.get("_prune_states")
        if (memo is not None and memo[0]() is db and memo[1] == stamp):
            return memo[2], memo[3], memo[4], memo[5]
        steps, complete, signature, involved = self.prune_steps()
        states: Optional[np.ndarray] = None
        block_rows = 0
        gated = False
        aux: Optional[list] = None
        if steps:
            store = query_cache_for(db)
            key = ("zonestate", root, self.zone_block_rows, signature)
            hit = store.get("zone", key, db)
            if hit is not None:
                states, block_rows, gated, aux = hit
            else:
                stamps = table_stamps(db, involved)  # read before compute
                states, block_rows = self._compute_block_states(
                    db, steps, complete)
                if states is not None and len(states):
                    # the cost gate prices the verdicts before anyone
                    # acts on them: expected payoff — skipped blocks
                    # plus half weight for proven-accepted ones — must
                    # beat a floor fraction of the table plus a penalty
                    # per maximal survivor run (fragmented survivors
                    # trade the zero-copy identity scan for scattered
                    # morsels, so fragmentation is priced explicitly)
                    payoff = (np.count_nonzero(states == PRUNE_SKIP)
                              + 0.5 * np.count_nonzero(states == PRUNE_ACCEPT))
                    survivors = (states != PRUNE_SKIP).astype(np.int8)
                    runs = (int(np.count_nonzero(np.diff(survivors) == 1))
                            + int(survivors[0]))
                    gated = bool(payoff < (GATE_MIN_FRACTION * len(states)
                                           + GATE_RUN_PENALTY * runs))
                if states is not None:
                    # the one-slot aux list rides in the cached value:
                    # prune_base fills it with the derived survivor
                    # ranges + block tallies on first ranged use, so
                    # every later cold compile of this signature skips
                    # the run scan too (same key, same stamp set); the
                    # gate verdict rides along for the same reason
                    aux = [None]
                    store.put("zone", key,
                              (states, block_rows, gated, aux),
                              stamps, states.nbytes)
        self.__dict__["_prune_states"] = (weakref.ref(db), stamp,
                                          states, block_rows, gated, aux)
        return states, block_rows, gated, aux

    def _compute_block_states(self, db: Database, steps: List[tuple],
                              complete: bool):
        if not steps:
            return None, 0
        root = self.logical.root
        zones = zone_maps_for(db, store=query_cache_for(db),
                              block_rows=self.zone_block_rows)
        block_rows = zones.block_rows_for(root)
        nrows = db.table(root).num_rows
        if nrows == 0:
            return None, 0
        nblocks = -(-nrows // block_rows)
        states = np.full(
            nblocks, PRUNE_ACCEPT if complete else PRUNE_SCAN, dtype=np.int8)
        checked = 0
        for step in steps:
            if step[0] == "interval":
                iv = step[1]
                zm = zones.column(root, iv.column.name)
                if zm is None or zm.nblocks != nblocks:
                    np.minimum(states, PRUNE_SCAN, out=states)
                    continue
                lo = -np.inf if iv.lo is None else iv.lo
                hi = np.inf if iv.hi is None else iv.hi
                empty = (zm.maxs < lo) | (zm.mins > hi)
                full = (iv.exact & (zm.mins >= lo) & (zm.maxs <= hi)
                        if iv.exact else np.zeros(nblocks, dtype=bool))
            elif step[0] == "codes-eq":
                cs = step[1]
                verdicts = self._code_set_eq_verdicts(db, zones, cs, nblocks)
                if verdicts is None:
                    np.minimum(states, PRUNE_SCAN, out=states)
                    continue
                empty, full = verdicts
            else:
                _, fk, pf = step
                csm = zones.code_set(root, fk)
                if (csm is not None and csm.nblocks == nblocks
                        and csm.domain == len(pf.mask)):
                    # membership summary: sound on arbitrary (scattered)
                    # pass sets — the second-generation path
                    empty, full = _code_set_verdicts(csm, pf.mask)
                else:
                    # first-generation fallback: the FK-range pass count,
                    # useful only when the block's references are dense
                    zm = zones.column(root, fk)
                    if zm is None or zm.nblocks != nblocks:
                        np.minimum(states, PRUNE_SCAN, out=states)
                        continue
                    counts = pf.pass_counts()
                    lo_pos = zm.mins.astype(np.int64)
                    hi_pos = zm.maxs.astype(np.int64)
                    # blocks whose FK range strays outside the dimension
                    # (stale values in deleted slots) are scanned, not
                    # judged
                    valid = (lo_pos >= 0) & (hi_pos < len(counts) - 1)
                    lo_c = np.clip(lo_pos, 0, len(counts) - 1)
                    hi_c = np.clip(hi_pos + 1, 0, len(counts) - 1)
                    passes = counts[hi_c] - counts[lo_c]
                    empty = valid & (passes == 0)
                    full = valid & (passes == (hi_pos - lo_pos + 1))
            checked += 1
            states[~full] = np.minimum(states[~full], PRUNE_SCAN)
            states[empty] = PRUNE_SKIP
        if not checked:
            return None, 0
        return states, block_rows

    def _code_set_eq_verdicts(self, db: Database, zones, cs, nblocks: int):
        """SKIP/ACCEPT verdicts of one fact-table equality/IN predicate
        against the column's code-set summary, or ``None`` when the
        column is not dictionary-coded (or the summary is stale-shaped).
        """
        from ..core.column import DictColumn

        root = self.logical.root
        csm = zones.code_set(root, cs.column.name)
        if csm is None or csm.nblocks != nblocks:
            return None
        column = db.table(root)[cs.column.name]
        if (not isinstance(column, DictColumn)
                or csm.domain != column.cardinality):
            return None
        try:
            codes = column.dictionary.lookup_many(list(cs.values))
        except (TypeError, ValueError):
            return None
        member = np.zeros(csm.domain, dtype=bool)
        member[codes[codes >= 0]] = True
        return _code_set_verdicts(csm, member)

    def warm_zone_maps(self, db: Database) -> None:
        """Build (or revalidate) the zone maps this plan prunes with.

        Called by the parent before a process-backend arena export so
        the summaries ride in the shared segment."""
        if self.prune_enabled:
            self._block_states(db)

    def prune_base(self, db: Database, base: np.ndarray,
                   counters: Optional[PruneCounters] = None):
        """Drop base positions whose zone block cannot pass the filters.

        Returns ``(surviving_positions, accept_mask, ranges)``.  For the
        identity base (no deletes — the common cold scan) the survivors
        come back as *ranges*: ``[(row_start, row_stop, accepted), …]``
        runs of kept blocks, never materialized as position arrays, so
        morsels over them keep zero-copy contiguous column views
        (``accepted`` runs are additionally proven to pass every filter
        by zone map alone).  Otherwise ``ranges`` is ``None`` and the
        survivors are a filtered position array with an aligned
        ``accept_mask`` (or ``None``).  Counters (block units) feed
        ``ExecutionStats``.
        """
        if not self.prune_enabled or len(base) == 0:
            return base, None, None
        states, block_rows, gated, aux = self._block_states(db)
        if states is None:
            return base, None, None
        nrows = db.table(self.logical.root).num_rows
        if gated:
            # the cost gate: too few skippable blocks to recoup the
            # pruned path's own bookkeeping — run the plain scan (this
            # also covers the all-SCAN case, payoff zero)
            if counters is not None:
                counters.blocks_scanned += len(states)
                counters.gated += 1
                counters.pruned = True
            return base, None, None
        if bool((states == PRUNE_SCAN).all()):
            # nothing to skip or accept: stay off the hot path entirely
            if counters is not None:
                counters.blocks_scanned += len(states)
                counters.pruned = True
            return base, None, None
        if counters is not None:
            counters.pruned = True
        ranged = len(base) == nrows
        if not ranged and self.snapshot is None:
            # deletes present — but if every deleted slot lies in a
            # *skipped* block (old data dropped, recent band queried),
            # the kept blocks are still fully visible and the ranged
            # fast path stays sound.  The per-block deletion summary is
            # stamped like the min/max maps, so it can never miss a
            # fresh delete.
            dzm = zone_maps_for(
                db, store=query_cache_for(db),
                block_rows=self.zone_block_rows).deletions(self.logical.root)
            if (len(dzm.deleted_any) == len(states)
                    and not bool(np.any(dzm.deleted_any
                                        & (states != PRUNE_SKIP)))):
                ranged = True
        if ranged:
            # survivors are exactly the kept blocks' row ranges — derived
            # purely from the verdicts, so they live in the zonestate
            # entry's aux slot (same key, same stamp set): repeated cold
            # compiles of this signature skip the run scan and the
            # counter tallies entirely
            derived = aux[0] if aux is not None else None
            if derived is None:
                skipped = accepted = scanned = 0
                ranges: List[tuple] = []
                for s, e in _state_runs(states):
                    state = states[s]
                    n = e - s
                    if state == PRUNE_SKIP:
                        skipped += n
                        continue
                    if state == PRUNE_ACCEPT:
                        accepted += n
                    else:
                        scanned += n
                    ranges.append((s * block_rows,
                                   min(e * block_rows, nrows),
                                   state == PRUNE_ACCEPT))
                derived = (tuple(ranges), skipped, accepted, scanned)
                if aux is not None:
                    aux[0] = derived
            ranges, skipped, accepted, scanned = derived
            if counters is not None:
                counters.blocks_skipped += skipped
                counters.blocks_accepted += accepted
                counters.blocks_scanned += scanned
            return base, None, list(ranges)
        blocks = base // block_rows
        pos_state = states[blocks]
        if counters is not None:
            present = np.bincount(blocks, minlength=len(states)) > 0
            counters.blocks_skipped += int(
                np.count_nonzero(present & (states == PRUNE_SKIP)))
            counters.blocks_accepted += int(
                np.count_nonzero(present & (states == PRUNE_ACCEPT)))
            counters.blocks_scanned += int(
                np.count_nonzero(present & (states == PRUNE_SCAN)))
        keep = pos_state != PRUNE_SKIP
        if not keep.all():
            base = base[keep]
            pos_state = pos_state[keep]
        accept = None
        if (pos_state == PRUNE_ACCEPT).any():
            accept = pos_state == PRUNE_ACCEPT
        return base, accept, None

    @staticmethod
    def _split(arr: np.ndarray, parts: int,
               morsel_rows: int) -> List[np.ndarray]:
        """Partition + chunk, identically for positions and any array
        aligned with them (same lengths in, same boundaries out)."""
        return [chunk
                for part in MorselDispatcher.partition(arr, parts)
                for chunk in MorselDispatcher.chunk(part, morsel_rows)]

    @staticmethod
    def partition_ranges(ranges: Sequence[tuple],
                         parts: int) -> List[List[tuple]]:
        """Cut ``(start, stop, accepted)`` ranges into at most *parts*
        row-balanced partitions, preserving order (the range analogue of
        :meth:`MorselDispatcher.partition`, deterministic so every shard
        worker derives identical boundaries)."""
        total = sum(stop - start for start, stop, _ in ranges)
        parts = max(1, min(parts, total)) if total else 1
        pending = [(s, e, a) for s, e, a in ranges if e > s]
        if parts == 1:
            # the serial / per-shard case: no quotas to balance
            return [pending] if pending else [[]]
        quotas = [total // parts + (1 if i < total % parts else 0)
                  for i in range(parts)]
        out: List[List[tuple]] = []
        cur = 0
        for quota in quotas:
            part: List[tuple] = []
            need = quota
            while need > 0 and cur < len(pending):
                s, e, a = pending[cur]
                take = min(need, e - s)
                part.append((s, s + take, a))
                need -= take
                if take == e - s:
                    cur += 1
                else:
                    pending[cur] = (s + take, e, a)
            if part:
                out.append(part)
        return out or [[]]

    @staticmethod
    def chunk_ranges(ranges: Sequence[tuple],
                     morsel_rows: int) -> List[tuple]:
        """Subdivide ranges into at most ``morsel_rows``-row pieces
        (0 = leave whole), preserving order."""
        if morsel_rows <= 0:
            return list(ranges)
        out: List[tuple] = []
        for s, e, a in ranges:
            for cs in range(s, e, morsel_rows):
                out.append((cs, min(cs + morsel_rows, e), a))
        return out

    @staticmethod
    def coalesce_ranges(pieces: Sequence[tuple],
                        cap: int = COALESCE_ROWS) -> List[List[tuple]]:
        """Group consecutive short survivor pieces into shared morsels.

        Pieces shorter than *cap* rows are batched, in order, until a
        group reaches *cap*; a piece of *cap* rows or more keeps its own
        group (and with it the zero-copy range provider).  Merging is
        always sound: a group's morsel is ``prefiltered`` only when
        every member was proven-accepted, otherwise the filter chain
        re-runs — a no-op on accepted rows, merely un-saved work."""
        groups: List[List[tuple]] = []
        cur: List[tuple] = []
        cur_rows = 0
        for start, stop, accepted in pieces:
            n = stop - start
            if n >= cap:
                if cur:
                    groups.append(cur)
                    cur, cur_rows = [], 0
                groups.append([(start, stop, accepted)])
                continue
            if cur and cur_rows + n > cap:
                groups.append(cur)
                cur, cur_rows = [], 0
            cur.append((start, stop, accepted))
            cur_rows += n
        if cur:
            groups.append(cur)
        return groups

    def _morsels_from_ranges(self, db: Database, ranges: Sequence[tuple],
                             parts: int, morsel_rows: int,
                             allow_identity: bool) -> List[Morsel]:
        """Morsels over contiguous survivor bands.

        A lone piece carries a :class:`~repro.engine.slice.RowRange`, so
        root-table column access stays zero-copy views — the pruned scan
        pays per *surviving* row, not per visited position.  Consecutive
        short pieces coalesce into one position-array morsel per
        :data:`COALESCE_ROWS` rows (within a partition, so the degree of
        parallelism never drops below *parts*): gathering a few thousand
        positions is far cheaper than a pipeline instance per band.
        Pipelines that must not alias storage (projections) get owned
        position arrays throughout.
        """
        cap = (min(COALESCE_ROWS, morsel_rows) if morsel_rows > 0
               else COALESCE_ROWS)
        groups = [group
                  for part in self.partition_ranges(ranges, parts)
                  for group in self.coalesce_ranges(
                      self.chunk_ranges(part, morsel_rows), cap)]
        groups = [group for group in groups if group]
        if not groups:
            return [self.morsel(db, np.empty(0, dtype=np.int64))]
        nrows = db.table(self.logical.root).num_rows
        morsels: List[Morsel] = []
        for group in groups:
            accepted = all(a for _, _, a in group)
            if len(group) == 1:
                start, stop, _ = group[0]
                if (len(groups) == 1 and stop - start == nrows
                        and allow_identity):
                    morsel = self.morsel(db, None, full=True)
                elif allow_identity:
                    rng = RowRange(start, stop)
                    morsel = Morsel(rng, universal_provider(
                        db, self.logical.root, self.logical.paths, rng))
                else:
                    positions = np.arange(start, stop, dtype=np.int64)
                    morsel = self.morsel(db, positions)
            else:
                positions = np.concatenate(
                    [np.arange(s, e, dtype=np.int64) for s, e, _ in group])
                morsel = self.morsel(db, positions)
            morsel.prefiltered = accepted
            morsels.append(morsel)
        return morsels

    def make_morsels(self, db: Database, base: np.ndarray,
                     parts: int, morsel_rows: int,
                     allow_identity: bool = True,
                     prune: Optional[PruneCounters] = None,
                     accept: Optional[np.ndarray] = None) -> List[Morsel]:
        """Partition *base* into morsels, detecting the identity case.

        ``base`` positions are always sorted unique root row ids, so a
        single chunk covering every physical row *is* the identity
        selection and gets the zero-copy provider.  ``allow_identity``
        must be False for pipelines whose *outputs* could pass a fetched
        slice through unchanged (projections): an identity provider's
        slices are views of live column storage, and a result must never
        alias buffers that later in-place updates rewrite.  Aggregating
        pipelines always reduce into owned arrays, so they keep the
        zero-copy fast path.

        With *prune* the zone maps are consulted first: blocks no row of
        which can pass are dropped, and morsels made entirely of
        fully-accepted blocks are marked ``prefiltered`` so the filter
        chain passes them through untouched.  Identity-base survivors
        stay contiguous *ranges* (zero-copy views, see
        :meth:`_morsels_from_ranges`); *accept* feeds a pre-pruned
        accept mask in (the shard path, which prunes before partitioning
        so every worker sees identical boundaries).
        """
        if prune is not None and accept is None:
            base, accept, ranges = self.prune_base(db, base, prune)
            if ranges is not None:
                return self._morsels_from_ranges(db, ranges, parts,
                                                 morsel_rows, allow_identity)
        chunks = self._split(base, parts, morsel_rows)
        accept_chunks = (self._split(accept, parts, morsel_rows)
                         if accept is not None else None)
        nrows = db.table(self.logical.root).num_rows
        full = (allow_identity and len(chunks) == 1
                and len(chunks[0]) == nrows)
        morsels = []
        for i, chunk in enumerate(chunks):
            morsel = self.morsel(db, chunk, full=full)
            if (accept_chunks is not None
                    and bool(accept_chunks[i].all())):
                morsel.prefiltered = True
            morsels.append(morsel)
        return morsels

    def referenced_columns(self) -> List[BoundColumn]:
        """Every column the full-tuple variants must materialize."""
        logical = self.logical
        needed: List[BoundColumn] = []
        seen = set()

        def add(expr):
            for column in bound_columns(expr):
                if column not in seen:
                    seen.add(column)
                    needed.append(column)

        for spec in self.specs:
            if spec.op == "filter":
                add(spec.payload)
        for predicate in self.leaf.probes.values():
            add(predicate)
        for key in logical.group_keys:
            add(key.column)
        for spec in logical.aggregates:
            if spec.expr is not None:
                add(spec.expr)
        for key in logical.projection_columns:
            add(key.column)
        return needed

    # -- shard execution (worker side) --------------------------------------

    def run_shard(self, db: Database, shard: int, nshards: int,
                  use_array: Optional[bool]) -> "ShardOutcome":
        """Rebuild the pipeline and run one horizontal shard to completion.

        Pruning happens *before* partitioning so every worker derives
        the same surviving positions and therefore identical shard
        boundaries; block counters are reported by shard 0 only (all
        shards compute the same verdicts).
        """
        self.hydrate(db)
        base = self.base_positions(db)
        counters = PruneCounters()
        accept: Optional[np.ndarray] = None
        ranges: Optional[List[tuple]] = None
        if self.prune_enabled:
            base, accept, ranges = self.prune_base(db, base, counters)
        if self.scan == "row":
            rows = self.chunk_rows
            factory = self.row_pipeline
        elif self.scan == "projection":
            rows = 0
            factory = self.projection_pipeline
        else:
            rows = self.morsel_rows
            factory = lambda: self.column_pipeline(bool(use_array))  # noqa: E731
        allow_identity = self.scan != "projection"
        if ranges is not None:
            range_parts = self.partition_ranges(ranges, nshards)
            if shard >= len(range_parts) and shard > 0:
                return ShardOutcome()
            mine_ranges = (range_parts[shard]
                           if shard < len(range_parts) else [])
            morsels = self._morsels_from_ranges(db, mine_ranges, 1, rows,
                                                allow_identity)
        else:
            parts = MorselDispatcher.partition(base, nshards)
            if shard >= len(parts):  # shard 0 always runs
                return ShardOutcome()
            mine = parts[shard]
            my_accept = (MorselDispatcher.partition(accept, nshards)[shard]
                         if accept is not None else None)
            morsels = self.make_morsels(db, mine, 1, rows,
                                        allow_identity=allow_identity,
                                        accept=my_accept)
        state = self.reorder_state() if self.adaptive else None
        reorders_before = state.reorders if state is not None else 0
        results = MorselDispatcher("serial").run(morsels, factory)
        outcome = ShardOutcome.collect(results)
        if shard == 0 and counters.pruned:
            outcome.morsels_skipped = counters.blocks_skipped
            outcome.morsels_accepted = counters.blocks_accepted
            outcome.morsels_scanned = counters.blocks_scanned
            outcome.prune_gated = counters.gated
        if state is not None:
            outcome.reorders = state.reorders - reorders_before
        return outcome


@dataclass(eq=False)
class BaselineBoundQuery:
    """Portable form of a Section 6 baseline query.

    The baselines bind their leaf side to semi-join reduction masks and
    hash tables; both are dimension-sized and ship with the plan, so a
    worker only rebuilds the provider chain and the shape's operator
    list.  ``shape`` selects the engine's DAG form.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    shape: str                       # "materializing"|"fused"|"vectorized-pipeline"
    logical: LogicalPlan
    dim_filters: Dict[str, PredicateFilter]
    hash_tables: dict                # Reference -> IntHashTable
    block_rows: int = 0              # >0: block-at-a-time morsels

    def pipeline(self) -> List[Operator]:
        steps = baseline_filter_steps(self.logical, self.dim_filters)
        if self.shape == "materializing":
            adapt = self.__dict__.setdefault("_adapt", ReorderState())
            return [IntersectScan(steps, adapt=adapt),
                    ValueGather(self.logical)]
        return [*steps, ValueGather(self.logical)]

    def base_positions(self, db: Database) -> np.ndarray:
        return visible_positions(db, self.logical.root)

    def morsel(self, db: Database, positions: np.ndarray) -> Morsel:
        from ..baselines.common import fact_provider

        return Morsel(positions,
                      fact_provider(db, self.logical, self.hash_tables,
                                    positions))

    def run_shard(self, db: Database, shard: int, nshards: int,
                  use_array: Optional[bool]) -> "ShardOutcome":
        base = self.base_positions(db)
        parts = MorselDispatcher.partition(base, nshards)
        if shard >= len(parts):
            return ShardOutcome()
        mine = parts[shard]
        chunks = (MorselDispatcher.chunk(mine, self.block_rows)
                  if self.block_rows > 0 else [mine])
        morsels = [self.morsel(db, chunk) for chunk in chunks]
        results = MorselDispatcher("serial").run(morsels, self.pipeline)
        return ShardOutcome.collect(results)


# -- shard plumbing ----------------------------------------------------------


@dataclass
class ShardOutcome:
    """One shard's merged partial results, as shipped back to the parent.

    ``finishes`` maps operator label to either a merged partial state
    (anything exposing ``merge``, e.g. aggregation/gather states) or, for
    stateless collectors like ``project``, the ordered list of per-morsel
    values; the parent merges outcomes across shards in shard order, so
    results never depend on scheduling.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    finishes: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    selected: int = 0
    morsels: int = 0
    seconds: float = 0.0
    morsels_skipped: int = 0
    morsels_accepted: int = 0
    morsels_scanned: int = 0
    prune_gated: int = 0
    reorders: int = 0

    @classmethod
    def collect(cls, results: Sequence[MorselResult]) -> "ShardOutcome":
        outcome = cls(morsels=len(results))
        for result in results:
            outcome.selected += len(result.morsel)
            outcome.seconds += result.seconds
            for label, seconds in result.timings.items():
                outcome.timings[label] = (
                    outcome.timings.get(label, 0.0) + seconds)
            for label, value in result.finishes.items():
                current = outcome.finishes.get(label)
                if current is None:
                    outcome.finishes[label] = (
                        value if hasattr(value, "merge") else [value])
                elif hasattr(current, "merge"):
                    outcome.finishes[label] = current.merge(value)
                else:
                    current.append(value)
        return outcome


def fold_outcomes(outcomes: Sequence[ShardOutcome], stats,
                  agg_labels: Tuple[str, ...]) -> None:
    """Fold shard timings and counters into *stats*.

    Operator labels starting with one of *agg_labels* count as the
    aggregation phase, everything else as the scan phase — the same
    attribution the inline backends make per morsel.
    """
    stats.morsels += sum(o.morsels for o in outcomes)
    stats.rows_selected += sum(o.selected for o in outcomes)
    stats.morsels_skipped += sum(o.morsels_skipped for o in outcomes)
    stats.morsels_accepted += sum(o.morsels_accepted for o in outcomes)
    stats.morsels_scanned += sum(o.morsels_scanned for o in outcomes)
    stats.prune_gated += sum(o.prune_gated for o in outcomes)
    stats.filters_reordered += sum(o.reorders for o in outcomes)
    for outcome in outcomes:
        for label, seconds in outcome.timings.items():
            stats.operator_seconds[label] = (
                stats.operator_seconds.get(label, 0.0) + seconds)
            if label.startswith(agg_labels):
                stats.aggregation_seconds += seconds
            else:
                stats.scan_seconds += seconds


def merge_outcome_states(outcomes: Sequence[ShardOutcome]):
    """Merge per-shard partial states in shard order (element-wise §5)."""
    merged = None
    for outcome in outcomes:
        for partial in outcome.finishes.values():
            merged = partial if merged is None else merged.merge(partial)
    return merged


@dataclass
class ShardTask:
    """One worker assignment: pickled plan + shard index.

    The parent pickles each plan *object* once (``plan_bytes``, memoized
    per backend) so the expensive part — packed vectors, axes, hash
    tables — is serialized a single time, not once per shard and not
    once per query when the query cache serves the same bound plan
    repeatedly; ``plan_seq`` is stable per plan object, letting a worker
    that already deserialized it skip even the unpickling.
    """

    plan_bytes: bytes
    plan_seq: int
    shard: int
    nshards: int
    use_array: Optional[bool] = None


_ATTACHED: Optional[AttachedDatabase] = None
_PLAN_CACHE: Tuple[int, object] = (-1, None)


def _worker_attach(manifest) -> None:
    """Pool initializer: attach the shared arena once per worker.

    The parent's exported zone maps seed the attached database's cache
    (stamped with the attached tables' — immutable — mutation counts),
    so worker-side pruning starts from the exact summaries the parent
    built, zero-copy.
    """
    global _ATTACHED
    _ATTACHED = attach_database(manifest)
    cache = query_cache_for(_ATTACHED.db)
    for store_key, value in _ATTACHED.zone_maps:
        table = store_key[1]
        stamps = ((table, _ATTACHED.db.table(table).mutation_count),)
        cache.put("zone", store_key, value, stamps, value.nbytes)


def _worker_run(task: ShardTask) -> ShardOutcome:
    global _PLAN_CACHE
    if _ATTACHED is None:  # pragma: no cover - initializer always runs
        raise ExecutionError("shard worker has no attached database")
    seq, plan = _PLAN_CACHE
    if seq != task.plan_seq:
        plan = pickle.loads(task.plan_bytes)
        _PLAN_CACHE = (task.plan_seq, plan)
    return plan.run_shard(_ATTACHED.db, task.shard, task.nshards,
                          task.use_array)


def database_stamp(db: Database) -> Tuple[tuple, ...]:
    """A cheap point-in-time identity of a database's *content*: the
    per-table mutation counters.  A shared-memory arena exported at stamp
    S serves exactly the data visible at S; any later insert/delete/
    update/consolidate changes the stamp and marks the arena stale."""
    return tuple(sorted(
        (name, table.mutation_count) for name, table in db.tables.items()))


class ProcessShardBackend:
    """A database exported to shared memory plus a persistent worker pool.

    Created lazily by an engine on its first process-backed query and
    held for the engine's lifetime, so the arena export and interpreter
    spawns amortize across queries.  The export is a *point-in-time
    copy*: :meth:`is_stale` compares the database's mutation stamp so
    callers re-export after writes instead of serving stale shards.
    ``close()`` terminates the pool and unlinks the segment; engines
    expose it as their own ``close()``.  Use :func:`acquire_shard_backend`
    / :func:`release_shard_backend` to share one backend (one arena, one
    pool) across all engines over the same database.
    """

    _plan_seq = itertools.count()

    def __init__(self, db: Database, workers: int):
        self.workers = max(1, int(workers))
        self.stamp = database_stamp(db)
        self.refs = 0
        self._registry_key: Optional[tuple] = None
        # (seq, pickle) per live plan object: a cached BoundQuery served
        # for the thousandth time ships the bytes serialized the first
        # time — and keeps its ``plan_seq``, so workers that already
        # hold the plan skip deserialization too.  Weak keys drop the
        # memo with the plan.  The memo lock keeps concurrent serving
        # threads from racing the lookup-then-serialize sequence.
        self._plan_pickles: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary())
        self._memo_lock = threading.Lock()
        # zone maps built so far ride in the segment: workers attach the
        # parent's summaries zero-copy instead of re-scanning columns
        # (summaries built after the export are rebuilt worker-side)
        self.arena = ColumnArena.export(
            db, zone_entries=fresh_zone_entries(db, query_cache_for(db)))
        ctx = multiprocessing.get_context("spawn")
        # a futures executor rather than multiprocessing.Pool: when a
        # worker dies mid-task (OOM kill, SIGKILL, segfault) Pool.map
        # waits forever for a result that will never come, while the
        # executor surfaces BrokenProcessPool — which run() maps to the
        # typed ShardExecutionError the engine degrades on
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=ctx,
            initializer=_worker_attach, initargs=(self.arena.manifest,))

    def is_stale(self, db: Database) -> bool:
        """Has *db* been mutated since this backend's arena was exported?"""
        return database_stamp(db) != self.stamp

    def retain(self) -> "ProcessShardBackend":
        """Take one extra reference (e.g. to pin the backend for the
        duration of a run); pair with :func:`release_shard_backend`."""
        with _REGISTRY_LOCK:
            self.refs += 1
        return self

    def run(self, plan, nshards: Optional[int] = None,
            use_array: Optional[bool] = None) -> List[ShardOutcome]:
        """Run *plan* over ``nshards`` horizontal shards (default: one
        per worker); outcomes come back in shard order.  Thread-safe:
        concurrent callers multiplex over the one worker pool (the
        pool's task queue interleaves their shard tasks)."""
        pool = self._pool
        if pool is None:
            raise ExecutionError("process shard backend is closed")
        nshards = nshards or self.workers
        with self._memo_lock:
            memo = self._plan_pickles.get(plan)
            if memo is None:
                memo = (next(self._plan_seq),
                        pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL))
                self._plan_pickles[plan] = memo
        seq, plan_bytes = memo
        tasks = [ShardTask(plan_bytes, seq, shard, nshards, use_array)
                 for shard in range(nshards)]
        try:
            futures = [pool.submit(_worker_run, task) for task in tasks]
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            # a worker died mid-query: self-evict from the registry so
            # the next acquire exports a fresh pool, then raise the
            # typed error the engine layer degrades on
            self._abandon()
            raise ShardExecutionError(
                f"shard worker pool died mid-query: {exc}") from exc
        except CancelledError as exc:
            # a concurrent close() cancelled queued shards: same
            # contract as the closed-pool check above
            raise ExecutionError("process shard backend is closed") from exc
        except RuntimeError as exc:
            if "shutdown" in str(exc):  # submit raced a concurrent close()
                raise ExecutionError(
                    "process shard backend is closed") from exc
            raise

    def _abandon(self) -> None:
        """Drop this (broken) backend from the shared registry; current
        holders still release their references normally."""
        with _REGISTRY_LOCK:
            key, self._registry_key = self._registry_key, None
            if key is not None and _SHARED_BACKENDS.get(key) is self:
                _SHARED_BACKENDS.pop(key, None)

    def close(self) -> None:
        """Terminate the workers and release the shared segment."""
        pool, self._pool = self._pool, None
        if pool is not None:
            # terminate, don't drain: close() must not wait on stuck
            # shards, and the executor has no terminate() of its own
            procs = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                with contextlib.suppress(Exception):
                    proc.terminate()
            pool.shutdown(wait=True)
        self.arena.close()

    def __enter__(self) -> "ProcessShardBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: One shared backend per (database identity, worker count): a harness
#: sweep over ten engines exports the database once, not ten times.
_SHARED_BACKENDS: Dict[tuple, ProcessShardBackend] = {}

#: Guards the registry *and* every backend's refcount.  Reentrant
#: because a construction inside ``acquire_shard_backend`` can trigger
#: GC, which can run ``_evict_backend`` finalizers on this same thread.
_REGISTRY_LOCK = threading.RLock()

#: Lock contract, machine-checked by ``astore lint`` (lock-discipline).
#: ``refs`` rides under the registry lock — not a per-backend lock —
#: because eviction decisions read the count and the registry together.
GUARDED_BY = {
    "_SHARED_BACKENDS": "_REGISTRY_LOCK",
    "ProcessShardBackend.refs": "_REGISTRY_LOCK",
}


def acquire_shard_backend(db: Database, workers: int) -> ProcessShardBackend:
    """A refcounted, staleness-checked shard backend for *db*.

    Engines over the same database and worker count share one arena and
    one pool; every acquire must be paired with a
    :func:`release_shard_backend` (engines do this in ``close()``).  A
    backend whose arena predates a database mutation is evicted here —
    current holders drain it via their own ``is_stale`` check — and a
    fresh export takes its place.

    The registry lock is held across the whole
    revalidate/evict/re-export/refcount sequence.  Unlocked, the
    check-then-act had two races: a mutation between a caller's
    staleness check and its ``refs += 1`` could hand that caller a
    backend another thread had just evicted *and closed* (refs
    transiently 0), and two concurrent releases could drive the count
    negative and close a pool mid-use.
    """
    key = (id(db), max(1, int(workers)))
    with _REGISTRY_LOCK:
        backend = _SHARED_BACKENDS.get(key)
        if backend is not None and backend.is_stale(db):
            _SHARED_BACKENDS.pop(key, None)
            if backend.refs <= 0:
                backend.close()
            backend = None
        if backend is None:
            backend = ProcessShardBackend(db, workers)
            backend._registry_key = key
            _SHARED_BACKENDS[key] = backend
            weakref.finalize(db, _evict_backend, key)
        backend.refs += 1
        return backend


def release_shard_backend(backend: ProcessShardBackend) -> None:
    """Drop one reference; the last holder closes arena and pool.

    Idempotence guard: releasing an already fully-released backend is a
    no-op rather than driving the count negative (which, unlocked, was
    exactly how a mutate-while-acquire race double-closed live pools).
    """
    with _REGISTRY_LOCK:
        if backend.refs <= 0:
            return
        backend.refs -= 1
        if backend.refs > 0:
            return
        key = backend._registry_key
        if key is not None and _SHARED_BACKENDS.get(key) is backend:
            _SHARED_BACKENDS.pop(key, None)
    # close outside the lock: terminating a pool can take a while and
    # nothing else can reach this backend any more (refs == 0, evicted)
    backend.close()


def _evict_backend(key: tuple) -> None:
    """Finalizer: the database was garbage-collected, so nobody can use
    (or properly release) the backend any more — close it outright."""
    with _REGISTRY_LOCK:
        backend = _SHARED_BACKENDS.pop(key, None)
    if backend is not None:
        backend.close()

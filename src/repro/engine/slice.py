"""Column slices and positional providers.

A *slice* is the value stream an expression evaluator consumes: either a
plain array (:class:`ArraySlice`) or a dictionary-compressed stream
(:class:`DictSlice`, codes + dictionary) on which predicates can be
evaluated against the small dictionary instead of the data (Section 2).

A *provider* resolves ``(table, column)`` to a slice for a given set of
base-table positions, following array index references for tables deeper
in the join graph.  This is the mechanism that makes the universal table
virtual: asking the provider for ``nation.n_name`` at fact positions
gathers through ``lineitem→orders→customer→nation`` with pure positional
lookups and no join.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core import Database
from ..core.column import AIRColumn, DictColumn, FixedColumn
from ..core.dictionary import Dictionary
from ..core.schema import Reference, ReferencePath
from ..errors import ExecutionError


class ArraySlice:
    """A plain value stream."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray):
        self.values = values

    def decode(self) -> np.ndarray:
        return self.values

    def __len__(self) -> int:
        return len(self.values)


class DictSlice:
    """A dictionary-compressed value stream (codes into a dictionary)."""

    __slots__ = ("codes", "dictionary")

    def __init__(self, codes: np.ndarray, dictionary: Dictionary):
        self.codes = codes
        self.dictionary = dictionary

    def decode(self) -> np.ndarray:
        return self.dictionary.decode(self.codes)

    def dictionary_values(self) -> np.ndarray:
        """The dictionary payload as an object array (predicate target)."""
        out = np.empty(len(self.dictionary), dtype=object)
        out[:] = self.dictionary.values
        return out

    def __len__(self) -> int:
        return len(self.codes)


Slice = ArraySlice | DictSlice


class RowRange:
    """A contiguous band of base-table rows (``[start, stop)``).

    The data-skipping layer yields survivors as whole zone-block runs;
    carrying them as a range instead of an id array lets the provider
    serve root-table slices as zero-copy views (like the identity
    morsel) rather than positional gathers.
    """

    __slots__ = ("start", "stop")

    def __init__(self, start: int, stop: int):
        self.start = int(start)
        self.stop = int(stop)

    def __len__(self) -> int:
        return max(0, self.stop - self.start)

    def as_positions(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)

    def take(self, idx: np.ndarray) -> np.ndarray:
        """Global ids of the range rows selected by *idx*."""
        return idx + self.start

    __getitem__ = take  # morsels refine positions with ``positions[idx]``

    def __repr__(self) -> str:
        return f"RowRange({self.start}, {self.stop})"


def chain_map(paths: Iterable[ReferencePath], base: str) -> Dict[str, List[Reference]]:
    """``table -> the reference chain from *base* to that table``.

    For paths rooted at *base* the chain is the path's own references; for
    a provider rooted at a first-level dimension, the leading root→dim
    reference is stripped.
    """
    chains: Dict[str, List[Reference]] = {base: []}
    for path in paths:
        refs = list(path.references)
        if refs and refs[0].child_table != base:
            # strip the prefix up to base
            try:
                start = next(i for i, r in enumerate(refs)
                             if r.child_table == base)
            except StopIteration:
                continue
            refs = refs[start:]
        acc: List[Reference] = []
        for ref in refs:
            acc = acc + [ref]
            chains.setdefault(ref.parent_table, acc)
    return chains


class PositionalProvider:
    """Resolves ``(table, column)`` to a slice at given base positions.

    ``positions=None`` means "all rows of the base table", avoiding the
    identity gather.  Per-table gathered positions are cached so multiple
    columns of one dimension share a single AIR traversal.
    """

    def __init__(self, db: Database, base: str,
                 chains: Dict[str, List[Reference]],
                 positions: Optional[np.ndarray] = None):
        self._db = db
        self._base = base
        self._chains = chains
        self._positions = positions
        self._cache: Dict[str, Optional[np.ndarray]] = {base: positions}

    @property
    def base(self) -> str:
        return self._base

    @property
    def length(self) -> int:
        if self._positions is not None:
            return len(self._positions)
        return self._db.table(self._base).num_rows

    def positions_for(self, table: str) -> Optional[np.ndarray]:
        """Positions in *table* aligned with the base positions."""
        if table in self._cache:
            return self._cache[table]
        if table not in self._chains:
            raise ExecutionError(
                f"table {table!r} is not reachable from {self._base!r}"
            )
        refs = self._chains[table]
        # walk the chain, reusing the cached prefix
        prefix = refs[:-1]
        prev_table = prefix[-1].parent_table if prefix else self._base
        prev = self.positions_for(prev_table) if prefix else self._positions
        last = refs[-1]
        column = self._db.table(last.child_table)[last.child_column]
        if not isinstance(column, AIRColumn):
            raise ExecutionError(
                f"column {last.child_table}.{last.child_column} is not an "
                "AIR column; run Database.airify() first"
            )
        if prev is None:
            pos = column.values()
        elif isinstance(prev, RowRange):
            pos = column.values()[prev.start: prev.stop]  # zero-copy view
        else:
            pos = column.take(prev)
        self._cache[table] = pos
        return pos

    def fetch(self, table: str, column_name: str) -> Slice:
        """The slice of ``table.column_name`` aligned with the base rows."""
        column = self._db.table(table)[column_name]
        pos = self.positions_for(table)
        if isinstance(pos, RowRange):
            # contiguous base band: root-table slices stay views
            if isinstance(column, DictColumn):
                return DictSlice(column.codes()[pos.start: pos.stop],
                                 column.dictionary)
            if isinstance(column, FixedColumn):
                return ArraySlice(column.values()[pos.start: pos.stop])
            pos = pos.as_positions()  # variable-width layouts gather
        if isinstance(column, DictColumn):
            codes = column.codes() if pos is None else column.take_codes(pos)
            return DictSlice(codes, column.dictionary)
        values = column.values() if pos is None else column.take(pos)
        return ArraySlice(values)

    def rebase(self, positions: np.ndarray) -> "PositionalProvider":
        """A new provider over a subset/reordering of base rows."""
        if isinstance(self._positions, RowRange):
            positions = self._positions.take(positions)
        elif self._positions is not None:
            positions = self._positions[positions]
        return PositionalProvider(self._db, self._base, self._chains, positions)


def universal_provider(db: Database, root: str,
                       paths: Iterable[ReferencePath],
                       positions: Optional[np.ndarray] = None) -> PositionalProvider:
    """A provider over the virtual universal table rooted at *root*."""
    return PositionalProvider(db, root, chain_map(paths, root), positions)


def dimension_provider(db: Database, first_dim: str,
                       paths: Iterable[ReferencePath],
                       positions: Optional[np.ndarray] = None) -> PositionalProvider:
    """A provider rooted at a first-level dimension (leaf-stage folding)."""
    relevant = [p for p in paths if first_dim in p.tables]
    return PositionalProvider(db, first_dim, chain_map(relevant, first_dim),
                              positions)

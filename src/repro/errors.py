"""Exception hierarchy for the repro (A-Store) library.

All library-raised exceptions derive from :class:`AStoreError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class AStoreError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(AStoreError):
    """A table, column, or reference definition is invalid or missing."""


class StorageError(AStoreError):
    """Invalid physical-storage operation (bad slot, capacity, dtype...)."""


class ParseError(AStoreError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(AStoreError):
    """A query referenced a name that cannot be resolved in the catalog."""


class PlanError(AStoreError):
    """The query is outside the supported SPJGA class or cannot be planned."""


class ExecutionError(AStoreError):
    """A runtime failure while executing a physical plan."""


class MembershipError(AStoreError):
    """A cluster-membership operation failed (join refused, membership
    server unreachable, malformed announcement)."""


class ChaosSpecError(AStoreError, ValueError):
    """A chaos-rule spec is malformed: unknown action or site, bad
    trigger, or a ``=value`` on an action that takes none.  Subclasses
    ``ValueError`` so pre-existing callers catching that keep working."""


class ShardExecutionError(ExecutionError):
    """A shard backend lost workers mid-query (a pool process died, a
    remote node vanished) — the plan itself is fine and the engine may
    degrade to the serial backend instead of surfacing a hang or a raw
    ``BrokenProcessPool``."""


class UpdateError(AStoreError):
    """Invalid transactional update (bad snapshot, conflicting write...)."""

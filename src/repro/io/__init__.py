"""Persistence (npz archives) and CSV import/export."""

from .csvio import dump_csv, load_csv
from .persist import load_database, save_database

__all__ = ["dump_csv", "load_csv", "load_database", "save_database"]

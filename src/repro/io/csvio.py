"""CSV import/export for array-family tables.

``load_csv`` infers per-column types (int → float → string), chooses
column layouts through :func:`repro.core.column.make_column`, and attaches
the result to a database; ``dump_csv`` writes any table (or query result)
back out.  Delimiters default to ``|``, the format of the dbgen family of
benchmark generators.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from ..core import Database, Table
from ..engine.result import QueryResult
from ..errors import StorageError


def load_csv(db: Database, table_name: str, path: Union[str, Path],
             columns: Optional[Sequence[str]] = None, delimiter: str = "|",
             has_header: bool = True, dict_threshold: float = 0.1) -> Table:
    """Read *path* into a new table registered on *db*.

    With ``has_header=False`` the column names must be supplied via
    *columns*.  Values are parsed as int where every row parses as int,
    else float where every row parses as float, else kept as strings.
    """
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        raise StorageError(f"{path} is empty")
    if has_header:
        header, rows = rows[0], rows[1:]
    elif columns is None:
        raise StorageError("has_header=False requires explicit column names")
    else:
        header = list(columns)
    if columns is not None and has_header:
        header = list(columns)
    # dbgen files end each line with a trailing delimiter -> empty field
    width = len(header)
    rows = [row[:width] if len(row) > width else row for row in rows]
    for row in rows:
        if len(row) != width:
            raise StorageError(
                f"{path}: row width {len(row)} != {width} columns")

    data = {
        name: _parse_column([row[i] for row in rows])
        for i, name in enumerate(header)
    }
    return db.create_table(table_name, data, dict_threshold=dict_threshold)


def dump_csv(source: Union[Table, QueryResult], path: Union[str, Path],
             delimiter: str = "|") -> int:
    """Write a table or query result to CSV; returns the row count."""
    path = Path(path)
    if isinstance(source, QueryResult):
        names = source.column_order
        rows = source.rows()
    else:
        names = source.column_names
        live = source.live_mask()
        columns = [source[c].values() for c in names]
        rows = [tuple(col[i] for col in columns)
                for i in range(source.num_rows) if live[i]]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(names)
        writer.writerows(rows)
    return len(rows)


def _parse_column(values: list):
    try:
        return [int(v) for v in values]
    except ValueError:
        pass
    try:
        return [float(v) for v in values]
    except ValueError:
        return values

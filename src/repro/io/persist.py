"""Database persistence: save/load the array-family storage to disk.

The on-disk format is one ``.npz`` archive per database: every column's
backing array plus a JSON manifest describing tables, column layouts,
dictionaries, string heaps, and references.  Loading rebuilds the exact
in-memory structures — including AIR columns — without re-running
``airify()``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core import Database, Table
from ..core.column import (
    AIRColumn,
    DictColumn,
    FixedColumn,
    StringColumn,
)
from ..core.dictionary import Dictionary
from ..core.types import DataType
from ..errors import StorageError

FORMAT_VERSION = 1


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Serialize *db* to a single ``.npz`` archive at *path*.

    Deleted rows are preserved (the deletion vector is stored), so a
    loaded database resumes exactly where the saved one stopped — free
    slots included.  MVCC version vectors are stored when present.
    """
    path = Path(path)
    arrays: dict = {}
    manifest: dict = {"version": FORMAT_VERSION, "name": db.name,
                      "tables": {}, "references": []}

    for table_name, table in db.tables.items():
        entry: dict = {"num_rows": table.num_rows, "mvcc": table._mvcc,
                       "columns": []}
        arrays[f"{table_name}//$deleted"] = table._deleted
        entry["free_slots"] = list(table._free_slots)
        if table._mvcc:
            arrays[f"{table_name}//$insert_version"] = table._insert_version
            arrays[f"{table_name}//$delete_version"] = table._delete_version
        for col_name, column in table.columns.items():
            key = f"{table_name}//{col_name}"
            if isinstance(column, AIRColumn):
                entry["columns"].append({
                    "name": col_name, "layout": "air",
                    "referenced_table": column.referenced_table})
                arrays[key] = column.values()
            elif isinstance(column, DictColumn):
                entry["columns"].append({
                    "name": col_name, "layout": "dict",
                    "dictionary": list(column.dictionary.values)})
                arrays[key] = column.codes()
            elif isinstance(column, StringColumn):
                entry["columns"].append({
                    "name": col_name, "layout": "string",
                    "heap": list(column._heap)})
                arrays[key] = column._addr.values()
            elif isinstance(column, FixedColumn):
                entry["columns"].append({
                    "name": col_name, "layout": "fixed",
                    "dtype": column.dtype.value})
                arrays[key] = column.values()
            else:
                raise StorageError(
                    f"cannot persist column layout {type(column).__name__}")
        manifest["tables"][table_name] = entry

    for ref in db.references:
        manifest["references"].append({
            "child_table": ref.child_table, "child_column": ref.child_column,
            "parent_table": ref.parent_table, "parent_key": ref.parent_key})
    manifest["clustering"] = {
        name: list(spec) for name, spec in db.clustering.items()}

    arrays["$manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_database(path: Union[str, Path]) -> Database:
    """Load a database previously written by :func:`save_database`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        manifest = json.loads(bytes(archive["$manifest"]).decode("utf-8"))
        if manifest.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"unsupported archive version {manifest.get('version')!r}")
        db = Database(manifest["name"])
        for table_name, entry in manifest["tables"].items():
            table = Table(table_name, mvcc=entry["mvcc"])
            for col_entry in entry["columns"]:
                data = archive[f"{table_name}//{col_entry['name']}"]
                table.add_column(_rebuild_column(col_entry, data))
            table._deleted = archive[f"{table_name}//$deleted"].astype(bool)  # astore: ignore[stamp-protocol]
            table._free_slots = [int(p) for p in entry["free_slots"]]  # astore: ignore[stamp-protocol]
            if entry["mvcc"]:
                # restoring archived buffers on a fresh table, not mutating
                table._insert_version = archive[  # astore: ignore[stamp-protocol]
                    f"{table_name}//$insert_version"].astype(np.int64)
                table._delete_version = archive[  # astore: ignore[stamp-protocol]
                    f"{table_name}//$delete_version"].astype(np.int64)
            db.add_table(table)
        for ref in manifest["references"]:
            db.add_reference(ref["child_table"], ref["child_column"],
                             ref["parent_table"], ref["parent_key"])
        for name, spec in manifest.get("clustering", {}).items():
            db.clustering[name] = tuple(spec)
    return db


def _rebuild_column(entry: dict, data: np.ndarray):
    layout = entry["layout"]
    name = entry["name"]
    if layout == "air":
        return AIRColumn(name, entry["referenced_table"], data=data)
    if layout == "dict":
        return DictColumn(name, dictionary=Dictionary(entry["dictionary"]),
                          codes=data.astype(np.int32))
    if layout == "string":
        column = StringColumn(name)
        column._heap = list(entry["heap"])
        column._addr = FixedColumn(name + "$addr", DataType.INT64, data=data)
        return column
    if layout == "fixed":
        return FixedColumn(name, DataType(entry["dtype"]), data=data)
    raise StorageError(f"unknown column layout {layout!r} in archive")

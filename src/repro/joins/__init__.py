"""PK–FK join algorithms: AIR positional, NPO/PRO hash, sort-merge."""

from .algorithms import (
    ALGORITHMS,
    JoinResult,
    air_join,
    npo_hash_join,
    pro_hash_join,
    sort_merge_join,
)
from .hashtable import IntHashTable

__all__ = [
    "air_join",
    "ALGORITHMS",
    "IntHashTable",
    "JoinResult",
    "npo_hash_join",
    "pro_hash_join",
    "sort_merge_join",
]

"""PK–FK join algorithms compared in the paper's Table 2 and Fig. 8.

Each algorithm maps every fact-side foreign key to the matching dimension
row position (-1 when unmatched).  The AIR join is the paper's
contribution: the foreign key *is* the position, so joining degenerates to
a bounds check (or to nothing at all when the reference is trusted).

* :func:`air_join` — positional; no hash table, no comparison.
* :func:`npo_hash_join` — no-partitioning shared hash table [7].
* :func:`pro_hash_join` — parallel radix partitioning join [7]: both sides
  are radix-partitioned on the key's low bits so each per-partition hash
  table stays cache-resident, then partitions are joined independently.
* :func:`sort_merge_join` — m-way sort-merge [13] (argsort + galloping
  merge via ``searchsorted``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from .hashtable import IntHashTable


@dataclass
class JoinResult:
    """Outcome of a PK–FK join.

    ``dim_positions[i]`` is the dimension array index matched by fact row
    *i*, or -1 if the key has no match.
    """

    dim_positions: np.ndarray

    @property
    def matches(self) -> int:
        """Number of fact rows that found a dimension partner."""
        return int((self.dim_positions >= 0).sum())

    def count(self) -> int:
        """``select count(*)`` of the join (inner-join cardinality)."""
        return self.matches


def air_join(fact_refs: np.ndarray, dim_size: int,
             validate: bool = True) -> JoinResult:
    """Array-index-reference join: the FK column already holds positions.

    With ``validate=False`` this is a no-op (the storage model guarantees
    referential integrity); with ``validate=True`` out-of-range references
    are reported as misses, which is the honest comparison point for the
    microbenchmarks.
    """
    fact_refs = np.ascontiguousarray(fact_refs, dtype=np.int64)
    if not validate:
        return JoinResult(fact_refs)
    ok = (fact_refs >= 0) & (fact_refs < dim_size)
    return JoinResult(np.where(ok, fact_refs, -1))


def npo_hash_join(fact_keys: np.ndarray, dim_keys: np.ndarray) -> JoinResult:
    """No-partitioning hash join: one shared table over the dimension."""
    table = IntHashTable(dim_keys)
    return JoinResult(table.probe(fact_keys))


def pro_hash_join(fact_keys: np.ndarray, dim_keys: np.ndarray,
                  radix_bits: int | None = None,
                  partition_target: int = 16384) -> JoinResult:
    """Parallel radix join: partition, then per-partition hash joins.

    ``radix_bits`` defaults to the smallest number of bits that brings the
    average dimension partition under *partition_target* keys, so each
    per-partition hash table is cache-resident (the PRO design point).
    """
    fact_keys = np.ascontiguousarray(fact_keys, dtype=np.int64)
    dim_keys = np.ascontiguousarray(dim_keys, dtype=np.int64)
    if radix_bits is None:
        radix_bits = 0
        while (len(dim_keys) >> radix_bits) > partition_target and radix_bits < 16:
            radix_bits += 1
    nparts = 1 << radix_bits
    mask = np.int64(nparts - 1)

    result = np.full(len(fact_keys), -1, dtype=np.int64)
    if len(dim_keys) == 0 or len(fact_keys) == 0:
        return JoinResult(result)

    # Partitioning pass (the PRO overhead): bucket both inputs by low bits.
    dim_part = (dim_keys & mask).astype(np.int64)
    fact_part = (fact_keys & mask).astype(np.int64)
    dim_order = np.argsort(dim_part, kind="stable")
    fact_order = np.argsort(fact_part, kind="stable")
    dim_bounds = np.searchsorted(dim_part[dim_order], np.arange(nparts + 1))
    fact_bounds = np.searchsorted(fact_part[fact_order], np.arange(nparts + 1))

    for p in range(nparts):
        d0, d1 = dim_bounds[p], dim_bounds[p + 1]
        f0, f1 = fact_bounds[p], fact_bounds[p + 1]
        if f0 == f1:
            continue
        fact_idx = fact_order[f0:f1]
        if d0 == d1:
            continue
        dim_idx = dim_order[d0:d1]
        table = IntHashTable(dim_keys[dim_idx], values=dim_idx)
        result[fact_idx] = table.probe(fact_keys[fact_idx])
    return JoinResult(result)


def sort_merge_join(fact_keys: np.ndarray, dim_keys: np.ndarray) -> JoinResult:
    """Sort-merge join: sort the dimension, binary-merge the fact side."""
    fact_keys = np.ascontiguousarray(fact_keys, dtype=np.int64)
    dim_keys = np.ascontiguousarray(dim_keys, dtype=np.int64)
    if len(dim_keys) == 0:
        return JoinResult(np.full(len(fact_keys), -1, dtype=np.int64))
    order = np.argsort(dim_keys, kind="stable")
    sorted_keys = dim_keys[order]
    if len(sorted_keys) > 1 and (sorted_keys[1:] == sorted_keys[:-1]).any():
        raise ExecutionError("sort-merge join requires unique dimension keys")
    slots = np.searchsorted(sorted_keys, fact_keys)
    slots = np.clip(slots, 0, len(sorted_keys) - 1)
    hit = sorted_keys[slots] == fact_keys
    return JoinResult(np.where(hit, order[slots], -1).astype(np.int64))


ALGORITHMS = {
    "AIR": air_join,
    "NPO": npo_hash_join,
    "PRO": pro_hash_join,
    "SORT_MERGE": sort_merge_join,
}

"""A vectorized open-addressing hash table for integer join keys.

This is the substrate of the NPO and PRO hash joins (Balkesen et al. [7],
re-implemented here as the paper's comparison baselines).  Keys must be
non-negative; they are expected to be primary keys, and if duplicates are
inserted a probe returns one of the matches.  Build and probe run in
collision-resolution *rounds*, each round a fully vectorized step; the
number of rounds grows with the load factor and table size, which is what
makes large hash tables slower than positional AIR access — the effect the
paper's Table 2 measures.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError

_EMPTY = np.int64(-1)
# Fibonacci hashing multiplier (Knuth): 2^64 / golden ratio, as uint64.
_MULT = np.uint64(11400714819323198485)


def _next_pow2(n: int) -> int:
    return 1 << max(4, (n - 1).bit_length())


class IntHashTable:
    """Open-addressing (linear probing) table mapping int key → int value."""

    def __init__(self, keys: np.ndarray, values: np.ndarray | None = None,
                 load_factor: float = 0.5):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if len(keys) and keys.min() < 0:
            raise ExecutionError("hash join keys must be non-negative")
        if values is None:
            values = np.arange(len(keys), dtype=np.int64)
        else:
            values = np.ascontiguousarray(values, dtype=np.int64)
        if len(values) != len(keys):
            raise ExecutionError("hash table keys/values length mismatch")
        self._size = _next_pow2(int(len(keys) / load_factor) + 1)
        self._mask = np.uint64(self._size - 1)
        self._keys = np.full(self._size, _EMPTY, dtype=np.int64)
        self._values = np.zeros(self._size, dtype=np.int64)
        self.build_rounds = 0
        if len(keys):
            self._build(keys, values)

    @property
    def nbytes(self) -> int:
        """Bytes of the slot arrays (cache-fit analysis)."""
        return int(self._keys.nbytes + self._values.nbytes)

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        return ((keys.astype(np.uint64) * _MULT) & self._mask).astype(np.int64)

    def _build(self, keys: np.ndarray, values: np.ndarray) -> None:
        slot = self._hash(keys)
        pending = np.arange(len(keys), dtype=np.int64)
        while len(pending):
            self.build_rounds += 1
            if self.build_rounds > self._size:
                raise ExecutionError("hash build did not converge "
                                     "(duplicate keys?)")
            cur = slot[pending]
            # blind scatter into empty slots: when several pending items
            # aim at one slot, the last write wins that slot this round
            empty = self._keys[cur] == _EMPTY
            cand = pending[empty]
            self._keys[slot[cand]] = keys[cand]
            won = self._keys[slot[cand]] == keys[cand]
            winners = cand[won]
            self._values[slot[winners]] = values[winners]
            placed = np.zeros(len(keys), dtype=bool)
            placed[winners] = True
            # anything not placed advances past the (now occupied) slot
            pending = pending[~placed[pending]]
            slot[pending] = (slot[pending] + 1) % self._size

    def probe(self, probe_keys: np.ndarray) -> np.ndarray:
        """Look up every probe key; returns values, -1 where absent."""
        probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
        n = len(probe_keys)
        result = np.full(n, _EMPTY, dtype=np.int64)
        if n == 0 or self._size == 0:
            return result
        slot = self._hash(probe_keys)
        active = np.arange(n, dtype=np.int64)
        rounds = 0
        while len(active):
            rounds += 1
            if rounds > self._size + 1:
                raise ExecutionError("hash probe did not converge")
            stored = self._keys[slot[active]]
            hit = stored == probe_keys[active]
            result[active[hit]] = self._values[slot[active[hit]]]
            alive = ~hit & (stored != _EMPTY)
            active = active[alive]
            slot[active] = (slot[active] + 1) % self._size
        return result

    def __len__(self) -> int:
        return int((self._keys != _EMPTY).sum())

"""Query planning: binding, logical plans, and the cache-aware optimizer."""

from .binder import AggSpec, GroupKey, LogicalPlan, OrderKey, bind
from .expressions import (
    BoundAnd,
    BoundArith,
    BoundBetween,
    BoundColumn,
    BoundCompare,
    BoundExpression,
    BoundIn,
    BoundLike,
    BoundLiteral,
    BoundNot,
    BoundOr,
    bound_columns,
    bound_walk,
    tables_of,
)
from .optimizer import CacheModel, DimDecision, OpSpec, PhysicalPlan, optimize

__all__ = [
    "AggSpec", "bind", "bound_columns", "bound_walk", "BoundAnd",
    "BoundArith", "BoundBetween", "BoundColumn", "BoundCompare",
    "BoundExpression", "BoundIn", "BoundLike", "BoundLiteral", "BoundNot",
    "BoundOr", "CacheModel", "DimDecision", "GroupKey", "LogicalPlan",
    "OpSpec", "optimize", "OrderKey", "PhysicalPlan", "tables_of",
]

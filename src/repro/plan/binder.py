"""Name resolution and logical planning for SPJGA queries.

The binder turns a parsed :class:`~repro.sqlparser.SelectStatement` plus a
:class:`~repro.core.Database` into a :class:`LogicalPlan`:

* it identifies the **root table** (the fact table) among the FROM tables
  and the reference paths to every touched leaf table;
* it checks that every explicit join predicate corresponds to a declared
  array index reference (A-Store supports only PK–FK joins, Section 3);
* it splits the WHERE clause into **fact conjuncts** (root-table columns
  only) and **dimension conjuncts**, each folded onto the *first-level*
  dimension of its reference path (snowflake predicates on ``nation`` or
  ``region`` fold onto ``customer``'s filter);
* it classifies the SELECT list into group keys and aggregate specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import Database
from ..core.schema import ReferencePath
from ..errors import BindError, PlanError
from ..sqlparser import ast as A
from ..sqlparser.parser import parse
from .expressions import (
    BoundAnd,
    BoundArith,
    BoundBetween,
    BoundColumn,
    BoundCompare,
    BoundExpression,
    BoundIn,
    BoundLike,
    BoundLiteral,
    BoundNot,
    BoundOr,
    tables_of,
)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: ``func(expr) AS name`` (COUNT(*) has no expr)."""

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    func: str
    expr: Optional[BoundExpression]
    name: str


@dataclass(frozen=True)
class GroupKey:
    """One grouping column and its output name."""

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    column: BoundColumn
    name: str


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key, referring to an output column by name."""

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    output: str
    descending: bool


@dataclass
class LogicalPlan:
    """A bound SPJGA query over a star/snowflake schema."""

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    root: str
    tables: Tuple[str, ...]
    paths: Tuple[ReferencePath, ...]
    fact_conjuncts: Tuple[BoundExpression, ...]
    dim_conjuncts: Dict[str, List[BoundExpression]]  # first-level dim -> preds
    group_keys: Tuple[GroupKey, ...]
    aggregates: Tuple[AggSpec, ...]
    output_order: Tuple[str, ...]
    order_by: Tuple[OrderKey, ...] = field(default=())
    limit: Optional[int] = None
    projection_columns: Tuple[GroupKey, ...] = field(default=())

    @property
    def is_projection(self) -> bool:
        """True for pure SPJ queries (no grouping, no aggregation)."""
        return bool(self.projection_columns)

    @property
    def first_level_dims(self) -> List[str]:
        """Direct children of the root, in path order."""
        seen: List[str] = []
        for path in self.paths:
            first = path.references[0].parent_table
            if first not in seen:
                seen.append(first)
        return seen

    def subtree_of(self, first_dim: str) -> set[str]:
        """All tables on paths passing through *first_dim*."""
        out = set()
        for path in self.paths:
            if path.references[0].parent_table == first_dim:
                out.update(path.tables[1:])
        return out

    def path_to(self, table: str) -> ReferencePath:
        """The reference path whose leaf is *table*."""
        for path in self.paths:
            if path.leaf == table:
                return path
        raise PlanError(f"no reference path to table {table!r}")


def bind(query, db: Database) -> LogicalPlan:
    """Bind a SQL string or parsed statement against *db*."""
    stmt = parse(query) if isinstance(query, str) else query
    return _Binder(stmt, db).bind()


class _Binder:
    def __init__(self, stmt: A.SelectStatement, db: Database):
        self._stmt = stmt
        self._db = db

    def bind(self) -> LogicalPlan:
        stmt = self._stmt
        for name in stmt.tables:
            if name not in self._db:
                raise BindError(f"unknown table {name!r}")
        if len(set(stmt.tables)) != len(stmt.tables):
            raise PlanError("self-joins are not supported by A-Store")

        self._tables = list(stmt.tables)
        self._root, self._paths = self._find_root()
        self._column_owner = self._build_column_map()
        self._first_dim_of = self._map_first_level_dims()

        fact_conjuncts, dim_conjuncts = self._bind_where()
        group_keys = tuple(
            GroupKey(self._bind_column(c), c.name) for c in stmt.group_by
        )
        (group_keys, aggregates, output_order,
         projection) = self._bind_select(group_keys)
        order_by = self._bind_order(output_order, group_keys, aggregates)

        return LogicalPlan(
            root=self._root,
            tables=tuple(self._tables),
            paths=tuple(self._paths),
            fact_conjuncts=tuple(fact_conjuncts),
            dim_conjuncts=dim_conjuncts,
            group_keys=group_keys,
            aggregates=aggregates,
            output_order=output_order,
            order_by=order_by,
            limit=stmt.limit,
            projection_columns=projection,
        )

    # -- join graph ----------------------------------------------------------

    def _find_root(self):
        """Pick the FROM table from which every other FROM table is
        reachable through declared references."""
        table_set = set(self._tables)
        candidates = []
        for table in self._tables:
            try:
                paths = self._db.reference_paths(table, restrict_to=table_set)
            except Exception:
                continue
            reached = {p.leaf for p in paths} | {table}
            if table_set <= reached:
                candidates.append((table, paths))
        if not candidates:
            raise PlanError(
                f"tables {sorted(table_set)} do not form a single-rooted "
                "star/snowflake join graph"
            )
        if len(candidates) > 1:
            # prefer the largest table as the fact table (standard heuristic)
            candidates.sort(
                key=lambda c: self._db.table(c[0]).num_rows, reverse=True
            )
        root, paths = candidates[0]
        # keep only paths whose leaf the query actually lists
        paths = [p for p in paths if p.leaf in table_set]
        return root, paths

    def _map_first_level_dims(self) -> Dict[str, str]:
        """table -> first-level dimension of its path (root maps to itself)."""
        out = {self._root: self._root}
        for path in self._paths:
            first = path.references[0].parent_table
            for table in path.tables[1:]:
                out.setdefault(table, first)
        return out

    # -- column resolution ------------------------------------------------------

    def _build_column_map(self) -> Dict[str, str]:
        owner: Dict[str, Optional[str]] = {}
        for table in self._tables:
            for column in self._db.table(table).column_names:
                if column in owner:
                    owner[column] = None  # ambiguous
                else:
                    owner[column] = table
        return owner

    def _bind_column(self, ref: A.ColumnRef) -> BoundColumn:
        if ref.table is not None:
            if ref.table not in self._tables:
                raise BindError(f"table {ref.table!r} not in FROM clause")
            if ref.name not in self._db.table(ref.table):
                raise BindError(f"no column {ref.name!r} in {ref.table!r}")
            return BoundColumn(ref.table, ref.name)
        owner = self._column_owner.get(ref.name)
        if owner is None:
            if ref.name in self._column_owner:
                raise BindError(f"ambiguous column {ref.name!r}")
            raise BindError(f"unknown column {ref.name!r}")
        return BoundColumn(owner, ref.name)

    def _bind_expr(self, expr: A.Expression) -> BoundExpression:
        if isinstance(expr, A.ColumnRef):
            return self._bind_column(expr)
        if isinstance(expr, A.Literal):
            return BoundLiteral(expr.value)
        if isinstance(expr, A.BinaryOp):
            return BoundArith(expr.op, self._bind_expr(expr.left),
                              self._bind_expr(expr.right))
        if isinstance(expr, A.Comparison):
            return BoundCompare(expr.op, self._bind_expr(expr.left),
                                self._bind_expr(expr.right))
        if isinstance(expr, A.Between):
            return BoundBetween(self._bind_expr(expr.expr),
                                self._bind_expr(expr.low),
                                self._bind_expr(expr.high), expr.negated)
        if isinstance(expr, A.InList):
            return BoundIn(self._bind_expr(expr.expr),
                           tuple(v.value for v in expr.values), expr.negated)
        if isinstance(expr, A.Like):
            return BoundLike(self._bind_expr(expr.expr), expr.pattern,
                             expr.negated)
        if isinstance(expr, A.And):
            return BoundAnd(tuple(self._bind_expr(t) for t in expr.terms))
        if isinstance(expr, A.Or):
            return BoundOr(tuple(self._bind_expr(t) for t in expr.terms))
        if isinstance(expr, A.Not):
            return BoundNot(self._bind_expr(expr.term))
        if isinstance(expr, A.Aggregate):
            raise PlanError("aggregate calls are not allowed here")
        raise PlanError(f"unsupported expression {expr!r}")

    # -- WHERE splitting -----------------------------------------------------

    def _bind_where(self):
        fact: List[BoundExpression] = []
        dims: Dict[str, List[BoundExpression]] = {}
        where = self._stmt.where
        conjuncts = list(where.terms) if isinstance(where, A.And) else (
            [where] if where is not None else []
        )
        for conjunct in conjuncts:
            if self._is_join_predicate(conjunct):
                continue  # joins are carried by the storage model (AIR)
            bound = self._bind_expr(conjunct)
            touched = tables_of(bound)
            if not touched or touched == {self._root}:
                fact.append(bound)
                continue
            firsts = {self._first_dim_of[t] for t in touched}
            if len(firsts) != 1 or self._root in touched:
                raise PlanError(
                    "a predicate may not span multiple reference paths: "
                    f"{sorted(touched)}"
                )
            dims.setdefault(firsts.pop(), []).append(bound)
        return fact, dims

    def _is_join_predicate(self, conjunct: A.Expression) -> bool:
        """Recognize ``fk = pk`` equality conjuncts and validate them
        against the declared references."""
        if not (isinstance(conjunct, A.Comparison) and conjunct.op == "="
                and isinstance(conjunct.left, A.ColumnRef)
                and isinstance(conjunct.right, A.ColumnRef)):
            return False
        left = self._bind_column(conjunct.left)
        right = self._bind_column(conjunct.right)
        if left.table == right.table:
            return False
        for child, parent in ((left, right), (right, left)):
            ref = self._db.reference_for(child.table, child.name)
            if ref is not None and ref.parent_table == parent.table:
                if ref.parent_key is not None and ref.parent_key != parent.name:
                    raise PlanError(
                        f"join {child} = {parent} does not match the declared "
                        f"reference {ref}"
                    )
                return True
        raise PlanError(
            f"join predicate {left} = {right} has no declared array index "
            "reference; A-Store supports only PK-FK joins"
        )

    # -- SELECT classification ---------------------------------------------------

    def _bind_select(self, group_keys: Tuple[GroupKey, ...]):
        aggregates: List[AggSpec] = []
        out_keys: List[GroupKey] = list(group_keys)
        output_order: List[str] = []
        plain: List[GroupKey] = []
        has_agg = any(
            A.has_aggregate(item.expr) for item in self._stmt.items
        )
        taken = set()

        for item in self._stmt.items:
            if isinstance(item.expr, A.Aggregate):
                agg = item.expr
                if agg.distinct:
                    raise PlanError("DISTINCT aggregates are not supported")
                expr = self._bind_expr(agg.arg) if agg.arg is not None else None
                if agg.func != "COUNT" and expr is None:
                    raise PlanError(f"{agg.func} requires an argument")
                name = item.alias or self._default_agg_name(agg, taken)
                if name in taken:
                    raise BindError(f"duplicate output column {name!r}")
                taken.add(name)
                aggregates.append(AggSpec(agg.func, expr, name))
                output_order.append(name)
            elif isinstance(item.expr, A.ColumnRef):
                column = self._bind_column(item.expr)
                name = item.alias or item.expr.name
                if name in taken:
                    raise BindError(f"duplicate output column {name!r}")
                taken.add(name)
                if has_agg or self._stmt.group_by:
                    match = next(
                        (i for i, k in enumerate(out_keys) if k.column == column),
                        None,
                    )
                    if match is None:
                        raise PlanError(
                            f"column {column} must appear in GROUP BY"
                        )
                    out_keys[match] = GroupKey(column, name)
                else:
                    plain.append(GroupKey(column, name))
                output_order.append(name)
            elif A.has_aggregate(item.expr):
                raise PlanError(
                    "expressions over aggregates are not supported; "
                    "alias the aggregate instead"
                )
            else:
                raise PlanError(
                    "non-aggregate select expressions must be plain columns"
                )
        if has_agg and plain:
            raise PlanError("cannot mix aggregates and ungrouped columns")
        return tuple(out_keys), tuple(aggregates), tuple(output_order), tuple(plain)

    @staticmethod
    def _default_agg_name(agg: A.Aggregate, taken: set) -> str:
        if agg.arg is not None and isinstance(agg.arg, A.ColumnRef):
            base = f"{agg.func.lower()}_{agg.arg.name}"
        else:
            base = agg.func.lower()
        name, i = base, 2
        while name in taken:
            name = f"{base}_{i}"
            i += 1
        return name

    # -- ORDER BY ------------------------------------------------------------

    def _bind_order(self, output_order, group_keys, aggregates):
        names = set(output_order)
        # group keys are also addressable by their underlying column name
        by_column = {k.column.name: k.name for k in group_keys}
        keys: List[OrderKey] = []
        for item in self._stmt.order_by:
            expr = item.expr
            if isinstance(expr, A.ColumnRef) and expr.table is None:
                if expr.name in names:
                    keys.append(OrderKey(expr.name, item.descending))
                    continue
                if expr.name in by_column:
                    keys.append(OrderKey(by_column[expr.name], item.descending))
                    continue
            if isinstance(expr, A.Aggregate):
                match = self._match_aggregate(expr, aggregates)
                if match is not None:
                    keys.append(OrderKey(match, item.descending))
                    continue
            raise BindError(
                f"ORDER BY key must name an output column: {expr}"
            )
        return tuple(keys)

    def _match_aggregate(self, agg: A.Aggregate, aggregates) -> Optional[str]:
        expr = self._bind_expr(agg.arg) if agg.arg is not None else None
        for spec in aggregates:
            if spec.func == agg.func and spec.expr == expr:
                return spec.name
        return None

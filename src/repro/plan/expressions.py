"""Bound expression trees.

The binder rewrites parser AST nodes into *bound* nodes whose column
references carry their resolved table.  Bound trees are what the engine's
vectorized evaluator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class BoundColumn:
    """A column resolved to its owning table."""

    table: str
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}"


@dataclass(frozen=True)
class BoundLiteral:
    value: Union[int, float, str]


@dataclass(frozen=True)
class BoundArith:
    op: str  # + - * / %
    left: "BoundExpression"
    right: "BoundExpression"


@dataclass(frozen=True)
class BoundCompare:
    op: str  # = <> < <= > >=
    left: "BoundExpression"
    right: "BoundExpression"


@dataclass(frozen=True)
class BoundBetween:
    expr: "BoundExpression"
    low: "BoundExpression"
    high: "BoundExpression"
    negated: bool = False


@dataclass(frozen=True)
class BoundIn:
    expr: "BoundExpression"
    values: Tuple[Union[int, float, str], ...]
    negated: bool = False


@dataclass(frozen=True)
class BoundLike:
    expr: "BoundExpression"
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class BoundAnd:
    terms: Tuple["BoundExpression", ...]


@dataclass(frozen=True)
class BoundOr:
    terms: Tuple["BoundExpression", ...]


@dataclass(frozen=True)
class BoundNot:
    term: "BoundExpression"


BoundExpression = Union[
    BoundColumn, BoundLiteral, BoundArith, BoundCompare, BoundBetween,
    BoundIn, BoundLike, BoundAnd, BoundOr, BoundNot,
]


def bound_walk(expr: BoundExpression):
    """Yield *expr* and all sub-expressions, depth-first."""
    yield expr
    if isinstance(expr, (BoundArith, BoundCompare)):
        children = (expr.left, expr.right)
    elif isinstance(expr, BoundBetween):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, (BoundIn, BoundLike)):
        children = (expr.expr,)
    elif isinstance(expr, (BoundAnd, BoundOr)):
        children = expr.terms
    elif isinstance(expr, BoundNot):
        children = (expr.term,)
    else:
        children = ()
    for child in children:
        yield from bound_walk(child)


def bound_columns(expr: BoundExpression) -> list[BoundColumn]:
    """All bound column references inside *expr* (in order)."""
    return [e for e in bound_walk(expr) if isinstance(e, BoundColumn)]


def tables_of(expr: BoundExpression) -> set[str]:
    """The set of tables an expression touches."""
    return {c.table for c in bound_columns(expr)}

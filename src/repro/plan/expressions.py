"""Bound expression trees.

The binder rewrites parser AST nodes into *bound* nodes whose column
references carry their resolved table.  Bound trees are what the engine's
vectorized evaluator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class BoundColumn:
    """A column resolved to its owning table."""

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    table: str
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}"


@dataclass(frozen=True)
class BoundLiteral:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    value: Union[int, float, str]


@dataclass(frozen=True)
class BoundArith:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    op: str  # + - * / %
    left: "BoundExpression"
    right: "BoundExpression"


@dataclass(frozen=True)
class BoundCompare:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    op: str  # = <> < <= > >=
    left: "BoundExpression"
    right: "BoundExpression"


@dataclass(frozen=True)
class BoundBetween:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    expr: "BoundExpression"
    low: "BoundExpression"
    high: "BoundExpression"
    negated: bool = False


@dataclass(frozen=True)
class BoundIn:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    expr: "BoundExpression"
    values: Tuple[Union[int, float, str], ...]
    negated: bool = False


@dataclass(frozen=True)
class BoundLike:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    expr: "BoundExpression"
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class BoundAnd:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    terms: Tuple["BoundExpression", ...]


@dataclass(frozen=True)
class BoundOr:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    terms: Tuple["BoundExpression", ...]


@dataclass(frozen=True)
class BoundNot:

    __portable__ = True  # pickled across process/node boundaries (astore lint)
    term: "BoundExpression"


BoundExpression = Union[
    BoundColumn, BoundLiteral, BoundArith, BoundCompare, BoundBetween,
    BoundIn, BoundLike, BoundAnd, BoundOr, BoundNot,
]


def bound_walk(expr: BoundExpression):
    """Yield *expr* and all sub-expressions, depth-first."""
    yield expr
    if isinstance(expr, (BoundArith, BoundCompare)):
        children = (expr.left, expr.right)
    elif isinstance(expr, BoundBetween):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, (BoundIn, BoundLike)):
        children = (expr.expr,)
    elif isinstance(expr, (BoundAnd, BoundOr)):
        children = expr.terms
    elif isinstance(expr, BoundNot):
        children = (expr.term,)
    else:
        children = ()
    for child in children:
        yield from bound_walk(child)


def bound_columns(expr: BoundExpression) -> list[BoundColumn]:
    """All bound column references inside *expr* (in order)."""
    return [e for e in bound_walk(expr) if isinstance(e, BoundColumn)]


def tables_of(expr: BoundExpression) -> set[str]:
    """The set of tables an expression touches."""
    return {c.table for c in bound_columns(expr)}


@dataclass(frozen=True)
class ColumnInterval:
    """A value interval implied by a predicate over one column.

    Rows passing the predicate satisfy ``lo <= column <= hi`` (``None``
    bounds are unbounded) — a *necessary* condition, which is what makes
    interval-vs-zone-map disjointness a sound skip.  ``exact`` marks
    intervals that are also *sufficient*: every value inside the
    interval passes (true for pure range/equality predicates, false for
    the IN-list superset interval), which is what allows a block whose
    zone-map range lies entirely inside the interval to be accepted
    without evaluating the predicate.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    column: BoundColumn
    lo: Optional[float] = None
    hi: Optional[float] = None
    exact: bool = True


def _interval_literal(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def predicate_interval(expr: BoundExpression) -> Optional[ColumnInterval]:
    """The :class:`ColumnInterval` implied by *expr*, or ``None``.

    Recognizes single-column comparisons against numeric literals
    (``=``, ``<``, ``<=``, ``>``, ``>=``, either operand order),
    non-negated BETWEEN with literal bounds, and non-negated IN over
    numeric literals (as a superset interval).  Anything else — LIKE,
    disjunctions, negations, arithmetic, string bounds — is not interval-
    prunable and returns ``None``.
    """
    if isinstance(expr, BoundCompare):
        left, right, op = expr.left, expr.right, expr.op
        if (isinstance(right, BoundColumn)
                and isinstance(left, BoundLiteral)):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            op = flipped.get(op, op)
        if not (isinstance(left, BoundColumn)
                and isinstance(right, BoundLiteral)
                and _interval_literal(right.value)):
            return None
        value = right.value
        if op == "=":
            return ColumnInterval(left, value, value)
        if op == "<":
            return ColumnInterval(left, None, value, exact=False)
        if op == "<=":
            return ColumnInterval(left, None, value)
        if op == ">":
            return ColumnInterval(left, value, None, exact=False)
        if op == ">=":
            return ColumnInterval(left, value, None)
        return None  # <> implies no interval
    if isinstance(expr, BoundBetween) and not expr.negated:
        if (isinstance(expr.expr, BoundColumn)
                and isinstance(expr.low, BoundLiteral)
                and isinstance(expr.high, BoundLiteral)
                and _interval_literal(expr.low.value)
                and _interval_literal(expr.high.value)):
            return ColumnInterval(expr.expr, expr.low.value, expr.high.value)
        return None
    if isinstance(expr, BoundIn) and not expr.negated:
        if (isinstance(expr.expr, BoundColumn) and expr.values
                and all(_interval_literal(v) for v in expr.values)):
            return ColumnInterval(expr.expr, min(expr.values),
                                  max(expr.values), exact=False)
    return None


@dataclass(frozen=True)
class CodeSetPredicate:
    """A membership set implied by a predicate over one column.

    Rows passing the predicate have ``column`` equal to one of
    ``values`` — both necessary and sufficient, so against a per-block
    code-set summary a disjoint block SKIPs and (with an exact summary)
    a subset block fully ACCEPTs.  Unlike :class:`ColumnInterval` this
    admits string literals: dictionary-coded columns resolve values to
    codes at verdict time, which is exactly where min/max maps go blind.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    column: BoundColumn
    values: Tuple[Union[int, float, str], ...]


def _code_set_literal(value) -> bool:
    return isinstance(value, (int, str)) and not isinstance(value, bool)


def predicate_code_set(expr: BoundExpression) -> Optional[CodeSetPredicate]:
    """The :class:`CodeSetPredicate` implied by *expr*, or ``None``.

    Recognizes single-column equality against an integer or string
    literal (either operand order) and non-negated IN over such
    literals.  Ranges, LIKE, disjunctions, and negations carry no
    finite membership set and return ``None``.
    """
    if isinstance(expr, BoundCompare) and expr.op == "=":
        left, right = expr.left, expr.right
        if isinstance(right, BoundColumn) and isinstance(left, BoundLiteral):
            left, right = right, left
        if (isinstance(left, BoundColumn) and isinstance(right, BoundLiteral)
                and _code_set_literal(right.value)):
            return CodeSetPredicate(left, (right.value,))
        return None
    if isinstance(expr, BoundIn) and not expr.negated:
        if (isinstance(expr.expr, BoundColumn) and expr.values
                and all(_code_set_literal(v) for v in expr.values)):
            return CodeSetPredicate(expr.expr, tuple(expr.values))
    return None

"""Physical planning: predicate ordering and the paper's two cache-aware
decisions.

The optimizer makes exactly the choices Section 4 describes:

1. **Predicate order** — the most selective predicates are evaluated first
   so the selection vector shrinks as early as possible (Section 4.1).
   Selectivities are estimated by evaluating each conjunct on a small
   evenly-spaced row sample.
2. **Predicate filter vs. direct probe** (Section 4.2) — a dimension gets
   a bit-vector predicate filter only if that filter fits in the last
   level cache; otherwise the dimension is probed through AIR during the
   scan (the paper's ``order`` table example).
3. **Array vs. hash aggregation** (Section 4.3) — the multidimensional
   aggregation array is used only when its estimated size fits the LLC
   budget; sparse/huge group spaces fall back to hash aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core import Database
from ..core.column import DictColumn
from ..errors import PlanError
from .binder import GroupKey, LogicalPlan
from .expressions import (
    BoundAnd,
    BoundExpression,
    predicate_code_set,
    predicate_interval,
)


@dataclass(frozen=True)
class CacheModel:
    """A last-level-cache budget used for the fit decisions.

    The default models a modern server LLC (the paper's Xeon E5-2670 has
    20 MB; its argument sizes predicate filters against a 45 MB LLC).
    """

    llc_bytes: int = 32 * 1024 * 1024

    def filter_fits(self, dim_rows: int) -> bool:
        """Does a packed predicate filter over *dim_rows* fit the LLC?"""
        return (dim_rows + 7) // 8 <= self.llc_bytes

    def aggregation_array_fits(self, ngroups: int, cell_bytes: int = 8) -> bool:
        """Does a *ngroups*-cell aggregation array fit the LLC?"""
        return ngroups * cell_bytes <= self.llc_bytes


@dataclass(frozen=True)
class DimDecision:
    """Per-dimension filtering strategy chosen by the optimizer."""

    first_dim: str
    predicate: BoundExpression
    use_filter: bool           # True: predicate vector; False: direct probe
    estimated_selectivity: float


@dataclass(frozen=True)
class OpSpec:
    """One node of the physical operator DAG.

    Purely declarative — the engine layer binds each spec to a concrete
    :mod:`repro.engine.operators` operator (and variants may rewrite the
    spec list first).  ``op`` names the operator kind, ``detail`` is the
    human-readable argument shown by ``explain()``, ``payload`` carries
    the bound object the engine needs (an expression, a
    :class:`DimDecision`, …), and ``selectivity`` is the optimizer's
    estimate used for ordering filter-like nodes.

    ``prune`` annotates nodes the data-skipping layer can evaluate
    against block summaries alone: ``("interval", ColumnInterval)`` for
    fact predicates with a literal interval, ``("codes-eq",
    CodeSetPredicate)`` for fact equality/IN predicates over coded
    columns (the code-set summaries of dictionary columns), and
    ``("codes", first_dim)`` for dimension probes whose predicate
    vector exists at bind time — the engine intersects the FK column's
    code-set summary with the vector, falling back to an FK-range pass
    count where no summary applies.
    """

    __portable__ = True  # pickled across process/node boundaries (astore lint)

    op: str
    detail: str = ""
    payload: object = None
    selectivity: Optional[float] = None
    prune: Optional[tuple] = None

    def render(self) -> str:
        text = f"{self.op}({self.detail})" if self.detail else self.op
        if self.selectivity is not None:
            text += f" [sel~{self.selectivity:.4f}]"
        if self.prune is not None:
            if self.prune[0] == "interval":
                iv = self.prune[1]
                lo = "-inf" if iv.lo is None else iv.lo
                hi = "+inf" if iv.hi is None else iv.hi
                text += f" [prune {iv.column.name} in {lo}..{hi}]"
            elif self.prune[0] == "codes-eq":
                cs = self.prune[1]
                shown = ", ".join(str(v) for v in cs.values[:4])
                if len(cs.values) > 4:
                    shown += ", ..."
                text += f" [prune codes {cs.column.name} in ({shown})]"
            else:
                text += f" [prune code-set/fk-range via {self.prune[1]}]"
        return text


@dataclass
class PhysicalPlan:
    """The logical plan plus the optimizer's ordered, costed choices.

    ``pipeline`` is the explicit operator DAG: a scan source followed by
    filter/probe nodes in estimated-selectivity order, then grouping,
    aggregation, and result-shaping nodes.  The engine layer consumes it
    via ``repro.engine.executor`` (which also applies per-variant DAG
    rewrites) and the baselines reshape the same node kinds.
    """

    logical: LogicalPlan
    fact_conjuncts: Tuple[Tuple[BoundExpression, float], ...]
    dim_decisions: Tuple[DimDecision, ...]
    use_array_agg: bool
    estimated_groups: int
    axis_cardinalities: Tuple[int, ...] = field(default=())
    pipeline: Tuple[OpSpec, ...] = field(default=())

    def explain(self) -> str:
        """A compact, human-readable plan description."""
        lines = [f"root: {self.logical.root}"]
        for path in self.logical.paths:
            lines.append(f"path: {path}")
        for expr, sel in self.fact_conjuncts:
            lines.append(f"fact predicate (sel~{sel:.4f}): {expr}")
        for dd in self.dim_decisions:
            mode = "predicate-vector" if dd.use_filter else "direct-probe"
            lines.append(
                f"dim {dd.first_dim} [{mode}] "
                f"(sel~{dd.estimated_selectivity:.4f}): {dd.predicate}"
            )
        agg = "array" if self.use_array_agg else "hash"
        lines.append(
            f"aggregation: {agg} (estimated groups: {self.estimated_groups})"
        )
        if self.pipeline:
            lines.append("pipeline:")
            for i, spec in enumerate(self.pipeline):
                arrow = "   " if i == 0 else " ->"
                lines.append(f" {arrow} {spec.render()}")
        return "\n".join(lines)


def build_pipeline(logical: LogicalPlan,
                   fact_conjuncts: Tuple[Tuple[BoundExpression, float], ...],
                   dim_decisions: Tuple[DimDecision, ...],
                   use_array_agg: bool) -> Tuple[OpSpec, ...]:
    """The default (column-wise AIRScan) operator DAG for a plan."""
    specs: List[OpSpec] = [OpSpec("scan", logical.root)]
    steps: List[OpSpec] = []
    for expr, sel in fact_conjuncts:
        interval = predicate_interval(expr)
        prune = None
        if interval is not None and interval.column.table == logical.root:
            prune = ("interval", interval)
        else:
            code_set = predicate_code_set(expr)
            if (code_set is not None
                    and code_set.column.table == logical.root):
                prune = ("codes-eq", code_set)
        steps.append(OpSpec("filter", str(expr), payload=expr,
                            selectivity=sel, prune=prune))
    for dd in dim_decisions:
        mode = "vector" if dd.use_filter else "predicate"
        steps.append(OpSpec("air-probe", f"{dd.first_dim}:{mode}",
                            payload=dd,
                            selectivity=dd.estimated_selectivity,
                            prune=("codes", dd.first_dim) if dd.use_filter
                            else None))
    steps.sort(key=lambda s: s.selectivity)
    specs.extend(steps)
    if logical.is_projection:
        specs.append(OpSpec(
            "project", ", ".join(k.name for k in logical.projection_columns)))
    else:
        if logical.group_keys:
            specs.append(OpSpec(
                "group-combine",
                ", ".join(k.name for k in logical.group_keys)))
        agg = "array" if use_array_agg else "hash"
        specs.append(OpSpec(
            "aggregate", agg,
            payload=tuple(spec.name for spec in logical.aggregates)))
    if logical.order_by:
        specs.append(OpSpec(
            "order-by",
            ", ".join(key.output + (" desc" if key.descending else "")
                      for key in logical.order_by)))
    if logical.limit is not None:
        specs.append(OpSpec("limit", str(logical.limit)))
    return tuple(specs)


def optimize(logical: LogicalPlan, db: Database,
             cache: CacheModel = CacheModel(),
             use_predicate_filter: bool = True,
             array_agg: object = "auto",
             sample_size: int = 4096) -> PhysicalPlan:
    """Produce a :class:`PhysicalPlan` for *logical* over *db*.

    *array_agg* is ``True``/``False`` to force a strategy or ``"auto"``
    for the cache-model decision; *use_predicate_filter* globally disables
    predicate vectors (the AIRScan_R / AIRScan_C variants of Table 6).
    """
    fact_conjuncts = _order_fact_conjuncts(logical, db, sample_size)
    dim_decisions = _decide_dims(logical, db, cache, use_predicate_filter,
                                 sample_size)
    cards = tuple(
        _axis_cardinality(key, db, logical, sample_size)
        for key in logical.group_keys
    )
    estimated = 1
    for c in cards:
        estimated *= max(1, c)
    if array_agg == "auto":
        use_array = cache.aggregation_array_fits(estimated)
    elif isinstance(array_agg, bool):
        use_array = array_agg
    else:
        raise PlanError(f"invalid array_agg option {array_agg!r}")
    return PhysicalPlan(
        logical=logical,
        fact_conjuncts=fact_conjuncts,
        dim_decisions=dim_decisions,
        use_array_agg=use_array,
        estimated_groups=estimated,
        axis_cardinalities=cards,
        pipeline=build_pipeline(logical, fact_conjuncts, dim_decisions,
                                use_array),
    )


# -- estimation internals ------------------------------------------------------


def _sample_positions(n: int, sample_size: int) -> np.ndarray:
    if n <= sample_size:
        return np.arange(n, dtype=np.int64)
    return np.linspace(0, n - 1, sample_size).astype(np.int64)


def _order_fact_conjuncts(logical, db, sample_size):
    from ..engine.expression import evaluate_predicate
    from ..engine.slice import universal_provider

    root = db.table(logical.root)
    if not logical.fact_conjuncts:
        return ()
    sample = _sample_positions(root.num_rows, sample_size)
    provider = universal_provider(db, logical.root, logical.paths, sample)
    scored = []
    for expr in logical.fact_conjuncts:
        mask = evaluate_predicate(expr, provider)
        sel = float(mask.mean()) if len(mask) else 1.0
        scored.append((expr, sel))
    scored.sort(key=lambda pair: pair[1])
    return tuple(scored)


def _decide_dims(logical, db, cache, use_predicate_filter, sample_size):
    from ..engine.expression import evaluate_predicate
    from ..engine.slice import dimension_provider

    decisions: List[DimDecision] = []
    for first_dim, preds in logical.dim_conjuncts.items():
        predicate = preds[0] if len(preds) == 1 else BoundAnd(tuple(preds))
        dim_rows = db.table(first_dim).num_rows
        sample = _sample_positions(dim_rows, sample_size)
        provider = dimension_provider(db, first_dim, logical.paths, sample)
        mask = evaluate_predicate(predicate, provider)
        sel = float(mask.mean()) if len(mask) else 1.0
        use_filter = use_predicate_filter and cache.filter_fits(dim_rows)
        decisions.append(DimDecision(first_dim, predicate, use_filter, sel))
    decisions.sort(key=lambda d: d.estimated_selectivity)
    return tuple(decisions)


def _axis_cardinality(key: GroupKey, db: Database, logical,
                      sample_size: int) -> int:
    from ..core.statistics import statistics_for

    collected = statistics_for(db, key.column.table, key.column.name)
    if collected is not None and not collected.is_estimate:
        return max(1, collected.distinct)
    table = db.table(key.column.table)
    column = table[key.column.name]
    if isinstance(column, DictColumn):
        return max(1, column.cardinality)
    values = column.values()
    if key.column.table == logical.root and len(values) > sample_size:
        sample = values[_sample_positions(len(values), sample_size)]
        distinct = len(np.unique(sample))
        if distinct >= 0.9 * len(sample):
            # near-unique in the sample: assume a huge domain
            return len(values)
        return distinct
    if len(values) > 4_000_000:
        return len(values)
    return max(1, len(np.unique(values)))

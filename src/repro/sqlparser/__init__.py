"""SQL front-end: tokenizer, AST, and parser for the SPJGA dialect."""

from .ast import (
    Aggregate,
    And,
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    SelectItem,
    SelectStatement,
    column_refs,
    has_aggregate,
    walk,
)
from .parser import parse
from .tokenizer import Token, TokenType, tokenize

__all__ = [
    "Aggregate", "And", "Between", "BinaryOp", "ColumnRef", "Comparison",
    "column_refs", "Expression", "has_aggregate", "InList", "Like",
    "Literal", "Not", "Or", "OrderItem", "parse", "SelectItem",
    "SelectStatement", "Token", "tokenize", "TokenType", "walk",
]

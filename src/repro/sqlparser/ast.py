"""Abstract syntax tree for the SPJGA SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference (``lineorder.lo_revenue``)."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant."""

    value: Union[int, float, str]


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic: ``+ - * / %``."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Comparison:
    """``= <> < <= > >=`` between two expressions."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Between:
    """``expr BETWEEN low AND high`` (inclusive), or its negation."""

    expr: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, ...)``, or its negation."""

    expr: "Expression"
    values: Tuple[Literal, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like:
    """``expr LIKE pattern`` with ``%``/``_`` wildcards."""

    expr: "Expression"
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class And:
    """N-ary conjunction."""

    terms: Tuple["Expression", ...]


@dataclass(frozen=True)
class Or:
    """N-ary disjunction."""

    terms: Tuple["Expression", ...]


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    term: "Expression"


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call; ``arg is None`` means ``COUNT(*)``."""

    func: str
    arg: Optional["Expression"]
    distinct: bool = False


Expression = Union[ColumnRef, Literal, BinaryOp, Comparison, Between,
                   InList, Like, And, Or, Not, Aggregate]


@dataclass(frozen=True)
class SelectItem:
    """One projection of the SELECT list."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key (an output column name/alias or an expression)."""

    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SPJGA query."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[str, ...]
    where: Optional[Expression] = None
    group_by: Tuple[ColumnRef, ...] = field(default=())
    order_by: Tuple[OrderItem, ...] = field(default=())
    limit: Optional[int] = None


def walk(expr: Expression):
    """Yield *expr* and every sub-expression, depth-first."""
    yield expr
    children: tuple
    if isinstance(expr, BinaryOp) or isinstance(expr, Comparison):
        children = (expr.left, expr.right)
    elif isinstance(expr, Between):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.expr, *expr.values)
    elif isinstance(expr, Like):
        children = (expr.expr,)
    elif isinstance(expr, (And, Or)):
        children = expr.terms
    elif isinstance(expr, Not):
        children = (expr.term,)
    elif isinstance(expr, Aggregate):
        children = (expr.arg,) if expr.arg is not None else ()
    else:
        children = ()
    for child in children:
        yield from walk(child)


def column_refs(expr: Expression) -> list[ColumnRef]:
    """All column references inside *expr* (with duplicates, in order)."""
    return [e for e in walk(expr) if isinstance(e, ColumnRef)]


def has_aggregate(expr: Expression) -> bool:
    """True if *expr* contains an aggregate call."""
    return any(isinstance(e, Aggregate) for e in walk(expr))

"""Recursive-descent parser for the SPJGA SQL dialect.

The dialect covers the query class A-Store supports (Section 3 of the
paper): SELECT with aggregates and arithmetic, a FROM list (joins are
expressed as WHERE equality predicates, star-schema style), WHERE with
AND/OR/NOT, BETWEEN, IN, LIKE, GROUP BY, ORDER BY, and LIMIT.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from .ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    And,
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from .tokenizer import Token, TokenType, tokenize


def parse(sql: str) -> SelectStatement:
    """Parse *sql* into a :class:`SelectStatement`.

    Raises :class:`~repro.errors.ParseError` with the offending source
    position on malformed input.
    """
    return _Parser(tokenize(sql)).parse_select()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise ParseError(
                f"expected {name}, found {self._current.value!r}",
                self._current.position,
            )
        return self._advance()

    def _expect(self, ttype: TokenType) -> Token:
        if self._current.type != ttype:
            raise ParseError(
                f"expected {ttype.value}, found {self._current.value!r}",
                self._current.position,
            )
        return self._advance()

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._current.type == TokenType.COMMA:
            self._advance()
            items.append(self._select_item())

        self._expect_keyword("FROM")
        tables = [self._expect(TokenType.IDENT).value.lower()]
        while self._current.type == TokenType.COMMA:
            self._advance()
            tables.append(self._expect(TokenType.IDENT).value.lower())

        where = None
        if self._accept_keyword("WHERE"):
            where = self._or_expr()

        group_by: list[ColumnRef] = []
        order_by: list[OrderItem] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self._current.type == TokenType.COMMA:
                self._advance()
                group_by.append(self._column_ref())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._current.type == TokenType.COMMA:
                self._advance()
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)
        if self._current.type != TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
        )

    def _select_item(self) -> SelectItem:
        expr = self._additive()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value.lower()
        elif self._current.type == TokenType.IDENT and not self._current.is_keyword():
            # bare alias: "sum(x) revenue"
            alias = self._advance().value.lower()
        return SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> OrderItem:
        expr = self._additive()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    def _column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENT).value
        if self._current.type == TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENT).value
            return ColumnRef(name=second.lower(), table=first.lower())
        return ColumnRef(name=first.lower())

    # -- boolean expressions ---------------------------------------------------

    def _or_expr(self) -> Expression:
        terms = [self._and_expr()]
        while self._accept_keyword("OR"):
            terms.append(self._and_expr())
        return terms[0] if len(terms) == 1 else Or(tuple(terms))

    def _and_expr(self) -> Expression:
        terms = [self._not_expr()]
        while self._accept_keyword("AND"):
            terms.append(self._not_expr())
        return terms[0] if len(terms) == 1 else And(tuple(terms))

    def _not_expr(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        token = self._current
        if token.type == TokenType.OPERATOR and token.value in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            right = self._additive()
            return Comparison(op=token.value, left=left, right=right)
        negated = False
        if token.is_keyword("NOT"):
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("BETWEEN", "IN", "LIKE"):
                self._advance()
                negated = True
                token = self._current
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return Between(expr=left, low=low, high=high, negated=negated)
        if token.is_keyword("IN"):
            self._advance()
            self._expect(TokenType.LPAREN)
            values = [self._literal()]
            while self._current.type == TokenType.COMMA:
                self._advance()
                values.append(self._literal())
            self._expect(TokenType.RPAREN)
            return InList(expr=left, values=tuple(values), negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._expect(TokenType.STRING).value
            return Like(expr=left, pattern=pattern, negated=negated)
        return left

    def _literal(self) -> Literal:
        token = self._current
        if token.type == TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type == TokenType.NUMBER:
            self._advance()
            return Literal(_number(token.value))
        if token.type == TokenType.OPERATOR and token.value == "-":
            self._advance()
            num = self._expect(TokenType.NUMBER)
            return Literal(-_number(num.value))
        raise ParseError(f"expected literal, found {token.value!r}",
                         token.position)

    # -- arithmetic ----------------------------------------------------------

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while (self._current.type == TokenType.OPERATOR
               and self._current.value in ("+", "-")):
            op = self._advance().value
            left = BinaryOp(op=op, left=left, right=self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while (self._current.type == TokenType.STAR
               or (self._current.type == TokenType.OPERATOR
                   and self._current.value in ("/", "%"))):
            op = "*" if self._current.type == TokenType.STAR else self._current.value
            self._advance()
            left = BinaryOp(op=op, left=left, right=self._unary())
        return left

    def _unary(self) -> Expression:
        if self._current.type == TokenType.OPERATOR and self._current.value == "-":
            self._advance()
            operand = self._unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return BinaryOp(op="-", left=Literal(0), right=operand)
        return self._primary()

    def _primary(self) -> Expression:
        token = self._current
        if token.type == TokenType.LPAREN:
            self._advance()
            inner = self._or_expr()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type == TokenType.NUMBER:
            self._advance()
            return Literal(_number(token.value))
        if token.type == TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword(*AGGREGATE_FUNCTIONS):
            func = self._advance().value
            self._expect(TokenType.LPAREN)
            distinct = bool(self._accept_keyword("DISTINCT"))
            if self._current.type == TokenType.STAR:
                self._advance()
                arg = None
            elif self._current.type == TokenType.RPAREN and func == "COUNT":
                arg = None  # count() shorthand used in the paper
            else:
                arg = self._additive()
            self._expect(TokenType.RPAREN)
            return Aggregate(func=func, arg=arg, distinct=distinct)
        if token.type == TokenType.IDENT:
            return self._column_ref()
        raise ParseError(f"unexpected token {token.value!r}", token.position)


def _number(text: str):
    return float(text) if "." in text else int(text)

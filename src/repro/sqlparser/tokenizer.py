"""Tokenizer for the SPJGA SQL dialect.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive; identifiers keep their original spelling but compare
case-insensitively during binding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AS", "AND", "OR",
    "NOT", "BETWEEN", "IN", "LIKE", "ASC", "DESC", "LIMIT", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "DISTINCT", "NULL",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    STAR = "star"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names


_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "/", "%")


def tokenize(sql: str) -> list[Token]:
    """Convert *sql* into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i : i + 2] == "--":  # line comment
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            # support '' escaping inside string literals
            literal = []
            j = i + 1
            while True:
                end = sql.find("'", j)
                if end < 0:
                    raise ParseError("unterminated string literal", i)
                literal.append(sql[j:end])
                if sql[end : end + 2] == "''":
                    literal.append("'")
                    j = end + 2
                    continue
                break
            tokens.append(Token(TokenType.STRING, "".join(literal), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[j] == "."
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == ";":
            i += 1
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                value = "<>" if op == "!=" else op
                tokens.append(Token(TokenType.OPERATOR, value, i))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens

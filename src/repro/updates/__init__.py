"""Update handling and MVCC snapshot isolation."""

from .mvcc import TransactionManager, WriteBatch

__all__ = ["TransactionManager", "WriteBatch"]

"""Update handling and snapshot isolation (Section 4.4 of the paper).

A-Store handles updates with append insertion (plus deleted-slot reuse),
lazy deletion bit vectors, and in-place updates; OLAP queries run against
MVCC snapshots so real-time analytics sees a consistent version while
writers proceed.  The paper sketches Hyper-style copy-on-write MVCC; this
implementation versions insertions and deletions explicitly (per-slot
insert/delete versions on :class:`~repro.core.Table`), which gives the
same reader guarantees for the OLAP-relevant operations.

In-place attribute updates are *not* versioned (the paper updates in place
precisely to avoid touching foreign keys); snapshot readers of an updated
measure see the newest value.  This matches A-Store's design point:
deletion/insertion visibility is what aggregation correctness needs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..core import Database
from ..core.column import AIRColumn
from ..errors import UpdateError


class TransactionManager:
    """Versioned writes over a database whose tables use ``mvcc=True``.

    Every mutating call commits atomically under a fresh version number;
    :meth:`snapshot` returns a version that OLAP queries can pass to
    :meth:`~repro.engine.AStoreEngine.query` for repeatable reads.
    """

    def __init__(self, db: Database):
        self.db = db
        self._version = 0
        self._pinned: dict[int, int] = {}  # snapshot -> refcount

    @property
    def current_version(self) -> int:
        """The last committed version."""
        return self._version

    def snapshot(self) -> int:
        """A pinned snapshot token covering everything committed so far.

        While a snapshot is pinned, slots of tuples it can still see are
        never recycled, so queries at the snapshot remain exact.  Call
        :meth:`release` when a long-lived snapshot is no longer needed.
        """
        self._pinned[self._version] = self._pinned.get(self._version, 0) + 1
        return self._version

    def release(self, snapshot: int) -> None:
        """Unpin a snapshot, letting its deleted slots be recycled."""
        count = self._pinned.get(snapshot, 0)
        if count <= 1:
            self._pinned.pop(snapshot, None)
        else:
            self._pinned[snapshot] = count - 1

    def _reuse_horizon(self) -> int:
        """Oldest version any pinned snapshot may still read."""
        return min(self._pinned) if self._pinned else self._version

    def _next(self) -> int:
        self._version += 1
        return self._version

    # -- write operations -------------------------------------------------------

    def insert(self, table_name: str, rows: Mapping[str, Sequence]) -> np.ndarray:
        """Insert rows (appending, reusing deleted slots); returns positions."""
        table = self.db.table(table_name)
        horizon = self._reuse_horizon()
        version = self._next()
        try:
            return table.insert(rows, version=version, reuse_horizon=horizon)
        except Exception:
            self._version -= 1
            raise

    def delete(self, table_name: str, positions: Iterable[int],
               check_references: bool = False) -> int:
        """Lazily delete rows; optionally enforce the FK constraint.

        With ``check_references=True``, deletion of a dimension row still
        referenced by a live child row raises :class:`UpdateError` — the
        reference constraint the paper relies on ("we normally do not
        delete dimensional tuples ... due to the reference constraint").
        """
        positions = np.asarray(list(positions) if not isinstance(positions, np.ndarray)
                               else positions, dtype=np.int64)
        if check_references:
            self._assert_unreferenced(table_name, positions)
        version = self._next()
        try:
            return self.db.table(table_name).delete(positions, version=version)
        except Exception:
            self._version -= 1
            raise

    def update(self, table_name: str, positions: Iterable[int],
               changes: Mapping[str, Sequence]) -> None:
        """In-place update (never touches foreign keys pointing here)."""
        table = self.db.table(table_name)
        for name in changes:
            if isinstance(table[name], AIRColumn):
                raise UpdateError(
                    f"refusing to update AIR column {table_name}.{name}; "
                    "repoint references explicitly instead"
                )
        self._next()
        try:
            table.update(positions, changes)
        except Exception:
            self._version -= 1
            raise

    def consolidate(self, table_name: str) -> np.ndarray:
        """Compact a table and rewrite incoming AIR references.

        The expensive maintenance operation of the paper's Table 1 — run
        it when the system is idle.  Returns the old→new mapping.
        """
        self._next()
        return self.db.consolidate(table_name)

    # -- constraint checking -------------------------------------------------------

    def _assert_unreferenced(self, table_name: str,
                             positions: np.ndarray) -> None:
        if len(positions) == 0:
            return
        targets = set(int(p) for p in positions)
        for ref in self.db.incoming(table_name):
            child = self.db.table(ref.child_table)
            column = child[ref.child_column]
            if not isinstance(column, AIRColumn):
                continue
            live = child.live_mask()
            referenced = column.values()[live]
            hits = np.isin(referenced, positions)
            if hits.any():
                bad = int(referenced[hits][0])
                raise UpdateError(
                    f"cannot delete {table_name}[{bad}]: still referenced "
                    f"by live rows of {ref.child_table}"
                )
        del targets


class WriteBatch:
    """Group several writes under one version (a mini-transaction).

    Usage::

        with WriteBatch(manager) as batch:
            batch.insert("lineorder", rows)
            batch.delete("lineorder", [0, 1])

    All operations in the batch share a single commit version, so a
    snapshot taken before the batch sees none of them and a snapshot taken
    after sees all of them.  There is no rollback (the paper's update
    model has none); an exception aborts subsequent operations but already
    applied ones remain, mirroring the sketch in Section 4.4.
    """

    def __init__(self, manager: TransactionManager):
        self._manager = manager
        self._version: Optional[int] = None

    def __enter__(self) -> "WriteBatch":
        self._version = self._manager._next()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._version = None

    def _require_open(self) -> int:
        if self._version is None:
            raise UpdateError("WriteBatch used outside its context")
        return self._version

    def insert(self, table_name: str, rows: Mapping[str, Sequence]) -> np.ndarray:
        version = self._require_open()
        return self._manager.db.table(table_name).insert(
            rows, version=version,
            reuse_horizon=self._manager._reuse_horizon())

    def delete(self, table_name: str, positions: Iterable[int]) -> int:
        version = self._require_open()
        return self._manager.db.table(table_name).delete(positions,
                                                         version=version)

    def update(self, table_name: str, positions: Iterable[int],
               changes: Mapping[str, Sequence]) -> None:
        self._require_open()
        self._manager.db.table(table_name).update(positions, changes)

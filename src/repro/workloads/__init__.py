"""Benchmark workloads: the 13 SSB queries and the paper's microbenchmarks."""

from .micro import (
    GROUPING_QUERY,
    JoinCase,
    PREDICATE_SELECTIVITIES,
    TABLE2_JOINS,
    fkpk_join_query,
    generate_join_inputs,
    predicate_workload,
)
from .tpch_queries import TPCH_QUERIES
from .ssb_queries import (
    QUERY_GROUPS,
    SSB_QUERIES,
    denormalize_query,
    star_join_query,
    validate_queries,
)

__all__ = [
    "denormalize_query",
    "fkpk_join_query",
    "generate_join_inputs",
    "GROUPING_QUERY",
    "JoinCase",
    "PREDICATE_SELECTIVITIES",
    "predicate_workload",
    "QUERY_GROUPS",
    "SSB_QUERIES",
    "star_join_query",
    "TABLE2_JOINS",
    "TPCH_QUERIES",
    "validate_queries",
]

"""Micro-benchmark workloads from the paper's Section 6.1.

* :func:`predicate_workload` — the Table 3 predicate-processing queries:
  four fact-table predicate columns whose combined selectivity sweeps
  (1/2)^4, (1/4)^4, (1/8)^4, (1/16)^4;
* :data:`TABLE2_JOINS` — the 19 PK–FK join pairs of Table 2 (SSB, TPC-H,
  TPC-DS) plus the synthetic workloads A and B of Balkesen et al. [7];
* :func:`grouping_workload` — the Table 3 group-by query
  (``select count(*), lo_discount, lo_tax … group by lo_discount, lo_tax``,
  99 groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..datagen.distributions import rng_for, uniform_keys


def predicate_workload(fraction_inverse: int) -> str:
    """The Table 3 predicate query at per-column selectivity ``1/k``.

    Four fact columns are filtered at selectivity ``1/k`` each, giving the
    paper's combined ``(1/k)^4``.  Uses the SSB fact columns whose domains
    allow those cuts: quantity (1-50), discount (0-10), tax (0-8) and
    extendedprice (90k-10M).
    """
    k = fraction_inverse
    qty_hi = max(1, round(50 / k))            # quantity in [1, 50]
    disc_hi = max(0, round(11 / k) - 1)       # discount in [0, 10]
    tax_hi = max(0, round(9 / k) - 1)         # tax in [0, 8]
    price_hi = 90_000 + round((10_000_000 - 90_000) / k)
    return f"""
        SELECT count(*) AS n FROM lineorder
        WHERE lo_quantity <= {qty_hi}
          AND lo_discount <= {disc_hi}
          AND lo_tax <= {tax_hi}
          AND lo_extendedprice <= {price_hi}
    """


PREDICATE_SELECTIVITIES = (2, 4, 8, 16)

GROUPING_QUERY = """
    SELECT count(*) AS n, lo_discount, lo_tax
    FROM lineorder
    GROUP BY lo_discount, lo_tax
"""


@dataclass(frozen=True)
class JoinCase:
    """One Table 2 row: a fact/dimension pair with SF=100 cardinalities.

    ``fact_rows``/``dim_rows`` are the paper's sizes; the harness scales
    them by its own factor before generating keys.
    """

    name: str
    benchmark: str
    fact_rows: int
    dim_rows: int


TABLE2_JOINS: Tuple[JoinCase, ...] = (
    JoinCase("lineorder-date", "SSB", 600_000_000, 2_555),
    JoinCase("lineorder-part", "SSB", 600_000_000, 1_528_771),
    JoinCase("lineorder-supplier", "SSB", 600_000_000, 200_000),
    JoinCase("lineorder-customer", "SSB", 600_000_000, 3_000_000),
    JoinCase("lineitem-part", "TPC-H", 600_000_000, 20_000_000),
    JoinCase("lineitem-supplier", "TPC-H", 600_000_000, 1_000_000),
    JoinCase("orders-customer", "TPC-H", 150_000_000, 15_000_000),
    JoinCase("lineitem-order", "TPC-H", 600_000_000, 150_000_000),
    JoinCase("store_sales-store", "TPC-DS", 287_997_024, 402),
    JoinCase("store_sales-date_dim", "TPC-DS", 287_997_024, 73_094),
    JoinCase("store_sales-time_dim", "TPC-DS", 287_997_024, 86_400),
    JoinCase("store_sales-household_demographics", "TPC-DS", 287_997_024, 7_200),
    JoinCase("store_sales-customer_demographics", "TPC-DS", 287_997_024, 1_920_800),
    JoinCase("store_sales-customer", "TPC-DS", 287_997_024, 2_000_000),
    JoinCase("store_sales-item", "TPC-DS", 287_997_024, 204_000),
    JoinCase("store_sales-promotion", "TPC-DS", 287_997_024, 1_000),
    JoinCase("store_sales-store_return", "TPC-DS", 287_997_024, 28_795_080),
    JoinCase("workload-A", "[7]", 268_435_456, 16_777_216),
    JoinCase("workload-B", "[7]", 128_000_000, 128_000_000),
)


def generate_join_inputs(case: JoinCase, scale: float = 1e-3,
                         seed: int = 42) -> Dict[str, np.ndarray]:
    """Scaled key arrays for one Table 2 join.

    Returns ``dim_keys`` (a shuffled dense key domain — primary keys),
    ``fact_keys`` (uniform FKs drawn from that domain) and ``fact_refs``
    (the same FKs as array index references, i.e. dimension positions),
    so every algorithm joins exactly the same logical data.
    """
    rng = rng_for(seed, f"join.{case.name}")
    dim_rows = max(2, int(case.dim_rows * scale))
    fact_rows = max(2, int(case.fact_rows * scale))
    dim_keys = rng.permutation(dim_rows * 2)[:dim_rows].astype(np.int64)
    refs = uniform_keys(rng, fact_rows, dim_rows)
    return {
        "dim_keys": dim_keys,
        "fact_keys": dim_keys[refs],
        "fact_refs": refs,
    }


def fkpk_join_query(fact: str, fk: str, dim: str, pk: str) -> str:
    """The Fig. 8 column-join form: ``select count(*) from A, B where fk=pk``."""
    return f"SELECT count(*) AS n FROM {fact}, {dim} WHERE {fk} = {pk}"

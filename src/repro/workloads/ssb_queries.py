"""The 13 Star Schema Benchmark queries (Q1.1 – Q4.3).

``SSB_QUERIES`` holds the normalized (joined) SQL used against the star
schema; :func:`denormalize_query` mechanically rewrites any of them for a
materialized universal table (drop join predicates, FROM the wide table) —
the form used by the paper's ``*_D`` engine variants.

``STAR_JOIN_QUERIES`` are the paper's Table 3 star-join microbenchmark
forms: the same queries with the aggregation replaced by ``count(*)`` and
GROUP BY removed.
"""

from __future__ import annotations

from ..core import Database
from ..errors import PlanError
from ..sqlparser import ast as A
from ..sqlparser.parser import parse

SSB_QUERIES: dict[str, str] = {
    "Q1.1": """
        SELECT sum(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, date
        WHERE lo_orderdate = d_datekey
          AND d_year = 1993
          AND lo_discount BETWEEN 1 AND 3
          AND lo_quantity < 25
    """,
    "Q1.2": """
        SELECT sum(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, date
        WHERE lo_orderdate = d_datekey
          AND d_yearmonthnum = 199401
          AND lo_discount BETWEEN 4 AND 6
          AND lo_quantity BETWEEN 26 AND 35
    """,
    "Q1.3": """
        SELECT sum(lo_extendedprice * lo_discount) AS revenue
        FROM lineorder, date
        WHERE lo_orderdate = d_datekey
          AND d_weeknuminyear = 6 AND d_year = 1994
          AND lo_discount BETWEEN 5 AND 7
          AND lo_quantity BETWEEN 26 AND 35
    """,
    "Q2.1": """
        SELECT sum(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, date, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_category = 'MFGR#12'
          AND s_region = 'AMERICA'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1
    """,
    "Q2.2": """
        SELECT sum(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, date, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'
          AND s_region = 'ASIA'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1
    """,
    "Q2.3": """
        SELECT sum(lo_revenue) AS revenue, d_year, p_brand1
        FROM lineorder, date, part, supplier
        WHERE lo_orderdate = d_datekey
          AND lo_partkey = p_partkey
          AND lo_suppkey = s_suppkey
          AND p_brand1 = 'MFGR#2239'
          AND s_region = 'EUROPE'
        GROUP BY d_year, p_brand1
        ORDER BY d_year, p_brand1
    """,
    "Q3.1": """
        SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue
        FROM customer, lineorder, supplier, date
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_region = 'ASIA' AND s_region = 'ASIA'
          AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_nation, s_nation, d_year
        ORDER BY d_year ASC, revenue DESC
    """,
    "Q3.2": """
        SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
        FROM customer, lineorder, supplier, date
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
          AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC
    """,
    "Q3.3": """
        SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
        FROM customer, lineorder, supplier, date
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_city IN ('UNITED KI1', 'UNITED KI5')
          AND s_city IN ('UNITED KI1', 'UNITED KI5')
          AND d_year >= 1992 AND d_year <= 1997
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC
    """,
    "Q3.4": """
        SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue
        FROM customer, lineorder, supplier, date
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_orderdate = d_datekey
          AND c_city IN ('UNITED KI1', 'UNITED KI5')
          AND s_city IN ('UNITED KI1', 'UNITED KI5')
          AND d_yearmonth = 'Dec1997'
        GROUP BY c_city, s_city, d_year
        ORDER BY d_year ASC, revenue DESC
    """,
    "Q4.1": """
        SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit
        FROM date, customer, supplier, part, lineorder
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA' AND s_region = 'AMERICA'
          AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, c_nation
        ORDER BY d_year, c_nation
    """,
    "Q4.2": """
        SELECT d_year, s_nation, p_category,
               sum(lo_revenue - lo_supplycost) AS profit
        FROM date, customer, supplier, part, lineorder
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA' AND s_region = 'AMERICA'
          AND d_year IN (1997, 1998)
          AND p_mfgr IN ('MFGR#1', 'MFGR#2')
        GROUP BY d_year, s_nation, p_category
        ORDER BY d_year, s_nation, p_category
    """,
    "Q4.3": """
        SELECT d_year, s_city, p_brand1,
               sum(lo_revenue - lo_supplycost) AS profit
        FROM date, customer, supplier, part, lineorder
        WHERE lo_custkey = c_custkey
          AND lo_suppkey = s_suppkey
          AND lo_partkey = p_partkey
          AND lo_orderdate = d_datekey
          AND c_region = 'AMERICA'
          AND s_nation = 'UNITED STATES'
          AND d_year IN (1997, 1998)
          AND p_category = 'MFGR#14'
        GROUP BY d_year, s_city, p_brand1
        ORDER BY d_year, s_city, p_brand1
    """,
}

QUERY_GROUPS = {
    "Q1": ("Q1.1", "Q1.2", "Q1.3"),
    "Q2": ("Q2.1", "Q2.2", "Q2.3"),
    "Q3": ("Q3.1", "Q3.2", "Q3.3", "Q3.4"),
    "Q4": ("Q4.1", "Q4.2", "Q4.3"),
}


def star_join_query(query_id: str) -> str:
    """The paper's Table 3 star-join form: ``count(*)``, no grouping.

    "we simplified the SSB queries by using count() instead of other
    aggregation expression and eliminating all group-by clauses."
    """
    stmt = parse(SSB_QUERIES[query_id])
    count = A.SelectItem(A.Aggregate("COUNT", None), alias="n")
    simplified = A.SelectStatement(
        items=(count,),
        tables=stmt.tables,
        where=stmt.where,
        group_by=(),
        order_by=(),
        limit=None,
    )
    return simplified


STAR_JOIN_QUERY_IDS = tuple(SSB_QUERIES)


def denormalize_query(sql_or_id: str, db: Database,
                      table_name: str = "universal") -> A.SelectStatement:
    """Rewrite a normalized SSB query for a materialized universal table.

    Join predicates (``fk = pk`` equalities matching a declared reference
    in *db*) are dropped and the FROM clause is replaced by *table_name* —
    this is how the paper produced the ``*_D`` workloads.
    """
    sql = SSB_QUERIES.get(sql_or_id, sql_or_id)
    stmt = sql if isinstance(sql, A.SelectStatement) else parse(sql)
    where = stmt.where
    conjuncts = (list(where.terms) if isinstance(where, A.And)
                 else ([where] if where is not None else []))
    kept = [c for c in conjuncts if not _is_join_conjunct(c, db, stmt.tables)]
    if not kept:
        new_where = None
    elif len(kept) == 1:
        new_where = kept[0]
    else:
        new_where = A.And(tuple(kept))
    return A.SelectStatement(
        items=stmt.items,
        tables=(table_name,),
        where=new_where,
        group_by=stmt.group_by,
        order_by=stmt.order_by,
        limit=stmt.limit,
    )


def _is_join_conjunct(conjunct: A.Expression, db: Database, tables) -> bool:
    if not (isinstance(conjunct, A.Comparison) and conjunct.op == "="
            and isinstance(conjunct.left, A.ColumnRef)
            and isinstance(conjunct.right, A.ColumnRef)):
        return False
    names = {conjunct.left.name, conjunct.right.name}
    for ref in db.references:
        if ref.parent_key is None:
            continue
        if {ref.child_column, ref.parent_key} == names:
            return True
    return False


def validate_queries(db: Database) -> None:
    """Bind every SSB query against *db*, raising on any mismatch."""
    from ..plan.binder import bind

    for query_id, sql in SSB_QUERIES.items():
        try:
            bind(sql, db)
        except Exception as exc:  # pragma: no cover - diagnostic path
            raise PlanError(f"{query_id} failed to bind: {exc}") from exc

"""SPJGA-adapted TPC-H queries over the snowflake subset.

A-Store handles the SPJGA fragment of TPC-H (Section 3: it can serve as
an auxiliary OLAP engine for such queries or sub-queries).  These four
queries follow the paper's adaptation style — the Fig. 3 example *is*
``Q3_ADAPTED`` — and all run on the :func:`repro.datagen.generate_tpch`
schema.
"""

from __future__ import annotations

TPCH_QUERIES: dict[str, str] = {
    # pricing summary in the spirit of TPC-H Q1 (our lineitem has no
    # returnflag/linestatus; quantity buckets give a stable group space)
    "Q1-like": """
        SELECT l_quantity, count(*) AS order_count,
               sum(l_extendedprice) AS gross,
               sum(l_extendedprice * (1 - l_discount)) AS discounted,
               avg(l_discount) AS avg_discount
        FROM lineitem
        WHERE l_quantity <= 25
        GROUP BY l_quantity
        ORDER BY l_quantity
    """,
    # the paper's Fig. 3 snowflake query, verbatim structure
    "Q3-adapted": """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer, lineitem, orders, nation, region
        WHERE o_custkey = c_custkey
          AND l_orderkey = o_orderkey
          AND c_nationkey = n_nationkey
          AND n_regionkey = r_regionkey
          AND r_name = 'ASIA'
          AND o_price >= 800
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    # local-supplier volume in the spirit of TPC-H Q5 (the original's
    # s_nationkey = c_nationkey side condition is a non-PK-FK join that
    # A-Store excludes by design; the adaptation drops it)
    "Q5-like": """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, orders, customer, nation, region
        WHERE l_orderkey = o_orderkey
          AND o_custkey = c_custkey
          AND c_nationkey = n_nationkey
          AND n_regionkey = r_regionkey
          AND r_name = 'EUROPE'
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    # forecast revenue change, TPC-H Q6 structure verbatim
    "Q6-like": """
        SELECT sum(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
}

"""Shared fixtures: small seeded SSB/TPC-H databases and a tiny star schema."""

import pytest

from repro.core import Database
from repro.datagen import generate_ssb, generate_tpch


@pytest.fixture(scope="session")
def ssb_air():
    """A small AIR-loaded SSB database."""
    return generate_ssb(sf=0.01, seed=11)


@pytest.fixture(scope="session")
def ssb_raw():
    """The same SSB data with key-valued FKs (for the baselines)."""
    return generate_ssb(sf=0.01, seed=11, airify=False)


@pytest.fixture(scope="session")
def tpch_air():
    return generate_tpch(sf=0.004, seed=11)


def build_tiny_star(mvcc: bool = False) -> Database:
    """A fully hand-checkable star schema.

    lineorder(8 rows) -> date(3), customer(4); every aggregate below is
    verifiable by hand.
    """
    db = Database("tiny")
    db.create_table("date", {
        "d_datekey": [19970101, 19970102, 19980101],
        "d_year": [1997, 1997, 1998],
        "d_month": ["Jan", "Jan", "Jan"],
    }, dict_threshold=1.0, mvcc=mvcc)
    db.create_table("customer", {
        "c_custkey": [1, 2, 3, 4],
        "c_region": ["ASIA", "ASIA", "EUROPE", "AMERICA"],
        "c_nation": ["CHINA", "JAPAN", "FRANCE", "BRAZIL"],
    }, dict_threshold=1.0, mvcc=mvcc)
    db.create_table("lineorder", {
        "lo_orderkey": [1, 2, 3, 4, 5, 6, 7, 8],
        "lo_custkey": [1, 2, 3, 4, 1, 2, 3, 4],
        "lo_orderdate": [19970101, 19970101, 19970102, 19970102,
                         19980101, 19980101, 19970101, 19980101],
        "lo_revenue": [10, 20, 30, 40, 50, 60, 70, 80],
        "lo_discount": [1, 2, 3, 4, 1, 2, 3, 4],
        "lo_quantity": [5, 10, 15, 20, 25, 30, 35, 40],
    }, mvcc=mvcc)
    db.add_reference("lineorder", "lo_custkey", "customer", "c_custkey")
    db.add_reference("lineorder", "lo_orderdate", "date", "d_datekey")
    db.airify()
    return db


@pytest.fixture
def tiny_star():
    return build_tiny_star()


@pytest.fixture
def tiny_star_mvcc():
    return build_tiny_star(mvcc=True)


def build_tiny_snowflake() -> Database:
    """lineitem -> orders -> customer -> nation -> region, hand-checkable."""
    db = Database("snow")
    db.create_table("region", {
        "r_regionkey": [0, 1], "r_name": ["ASIA", "EUROPE"]}, dict_threshold=1.0)
    db.create_table("nation", {
        "n_nationkey": [0, 1, 2],
        "n_name": ["CHINA", "FRANCE", "JAPAN"],
        "n_regionkey": [0, 1, 0]}, dict_threshold=1.0)
    db.create_table("customer", {
        "c_custkey": [7, 8, 9], "c_nationkey": [0, 1, 2]})
    db.create_table("orders", {
        "o_orderkey": [70, 71, 72, 73],
        "o_custkey": [7, 8, 9, 7],
        "o_price": [100, 900, 850, 500]})
    db.create_table("lineitem", {
        "l_orderkey": [70, 70, 71, 72, 73, 73],
        "l_extendedprice": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        "l_discount": [0.0, 0.5, 0.1, 0.0, 0.2, 0.5]})
    db.add_reference("nation", "n_regionkey", "region", "r_regionkey")
    db.add_reference("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_reference("orders", "o_custkey", "customer", "c_custkey")
    db.add_reference("lineitem", "l_orderkey", "orders", "o_orderkey")
    db.airify()
    return db


@pytest.fixture
def tiny_snowflake():
    return build_tiny_snowflake()

"""Seeded async-hygiene violation: time.sleep on the event loop."""

import time


async def respond(payload):
    time.sleep(0.01)
    return payload

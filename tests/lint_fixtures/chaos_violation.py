"""Seeded chaos-coverage violation: raw recv, no dominating site."""

CHAOS_SCOPE = True


def read_reply(sock):
    return sock.recv(4096)

"""Seeded lock-discipline violation: guarded read outside the lock."""

import threading

_REGISTRY = {}
_REGISTRY_LOCK = threading.Lock()

GUARDED_BY = {"_REGISTRY": "_REGISTRY_LOCK"}


def lookup(key):
    if key in _REGISTRY:  # check-then-act without the lock
        return _REGISTRY[key]
    return None


def store(key, value):
    with _REGISTRY_LOCK:
        _REGISTRY[key] = value

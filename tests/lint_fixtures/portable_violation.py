"""Seeded plan-portability violation: a lambda on a portable class."""


class MiniSpec:
    __portable__ = True

    def __init__(self, column):
        self.column = column

    def bind(self):
        self.extract = lambda row: row[self.column]

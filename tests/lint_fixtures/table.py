"""Seeded stamp-protocol violation: the basename makes this file a
consecrated mutation module, so the public entry point below must bump
the stamp — and deliberately does not."""


class MiniTable:
    def __init__(self):
        self._nrows = 0
        self._deleted = []
        self._mutation_count = 0

    def truncate(self):
        self._nrows = 0
        self._deleted = []

"""Property-based and unit tests for the aggregation kernels.

Key invariants:

* array aggregation == hash aggregation on the same inputs;
* partitioned aggregation + merge == single-shot aggregation (the
  correctness of the Section 5 multicore merge);
* both agree with a plain Python dict-of-lists oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregate import (
    array_aggregate,
    finalize,
    hash_aggregate,
)
from repro.errors import ExecutionError
from repro.plan.binder import AggSpec
from repro.plan.expressions import BoundColumn

SPECS = (
    AggSpec("COUNT", None, "n"),
    AggSpec("SUM", BoundColumn("t", "m"), "s"),
    AggSpec("AVG", BoundColumn("t", "m"), "a"),
    AggSpec("MIN", BoundColumn("t", "m"), "lo"),
    AggSpec("MAX", BoundColumn("t", "m"), "hi"),
)


def oracle(codes, values):
    groups = {}
    for code, value in zip(codes, values):
        groups.setdefault(int(code), []).append(float(value))
    out = {}
    for code, vals in sorted(groups.items()):
        out[code] = {
            "n": len(vals), "s": sum(vals), "a": sum(vals) / len(vals),
            "lo": min(vals), "hi": max(vals),
        }
    return out


def run(kind, codes, values, ngroups):
    measures = {"s": values, "a": values, "lo": values, "hi": values}
    if kind == "array":
        state = array_aggregate(SPECS, measures, codes, ngroups)
    else:
        state = hash_aggregate(SPECS, measures, codes)
    ids, out = finalize(state)
    return {
        int(g): {name: out[name][i] for name in ("n", "s", "a", "lo", "hi")}
        for i, g in enumerate(ids)
    }


class TestKernels:
    def test_simple_sums(self):
        codes = np.array([0, 1, 0, 1, 2])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        for kind in ("array", "hash"):
            got = run(kind, codes, values, 3)
            assert got[0]["s"] == 4.0 and got[1]["s"] == 6.0
            assert got[2]["n"] == 1

    def test_empty_groups_dropped(self):
        codes = np.array([5])
        values = np.array([1.0])
        got = run("array", codes, values, 10)
        assert list(got) == [5]

    def test_int_sums_stay_int(self):
        state = array_aggregate(
            (AggSpec("SUM", BoundColumn("t", "m"), "s"),),
            {"s": np.array([1, 2, 3], dtype=np.int64)},
            np.array([0, 0, 0]), 1)
        _, out = finalize(state)
        assert out["s"].dtype == np.int64 and out["s"][0] == 6

    def test_unsupported_func_rejected(self):
        with pytest.raises(ExecutionError):
            array_aggregate(
                (AggSpec("MEDIAN", BoundColumn("t", "m"), "x"),),
                {"x": np.array([1.0])}, np.array([0]), 1)

    def test_merge_type_mismatch_rejected(self):
        dense = array_aggregate(SPECS[:1], {}, np.array([0]), 1)
        sparse = hash_aggregate(SPECS[:1], {}, np.array([0]))
        with pytest.raises(ExecutionError):
            dense.merge(sparse)


DATA_STRATEGY = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12),
              st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=300)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=DATA_STRATEGY)
    def test_array_matches_oracle(self, data):
        codes = np.array([c for c, _ in data], dtype=np.int64)
        values = np.array([v for _, v in data])
        expected = oracle(codes, values)
        got = run("array", codes, values, 13)
        assert set(got) == set(expected)
        for g in expected:
            assert got[g]["n"] == expected[g]["n"]
            assert got[g]["s"] == pytest.approx(expected[g]["s"], rel=1e-9,
                                                abs=1e-6)
            assert got[g]["lo"] == expected[g]["lo"]
            assert got[g]["hi"] == expected[g]["hi"]

    @settings(max_examples=60, deadline=None)
    @given(data=DATA_STRATEGY)
    def test_hash_matches_array(self, data):
        codes = np.array([c for c, _ in data], dtype=np.int64)
        values = np.array([v for _, v in data])
        a = run("array", codes, values, 13)
        h = run("hash", codes, values, 13)
        assert set(a) == set(h)
        for g in a:
            for field in ("n", "s", "lo", "hi"):
                assert a[g][field] == pytest.approx(h[g][field], rel=1e-9,
                                                    abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(data=DATA_STRATEGY)
    def test_partition_merge_equals_single_shot(self, data):
        codes = np.array([c for c, _ in data], dtype=np.int64)
        values = np.array([v for _, v in data])
        measures = {"s": values, "a": values, "lo": values, "hi": values}
        whole = array_aggregate(SPECS, measures, codes, 13)
        cut = len(codes) // 2
        left = array_aggregate(
            SPECS, {k: v[:cut] for k, v in measures.items()},
            codes[:cut], 13)
        right = array_aggregate(
            SPECS, {k: v[cut:] for k, v in measures.items()},
            codes[cut:], 13)
        merged = left.merge(right)
        ids_w, out_w = finalize(whole)
        ids_m, out_m = finalize(merged)
        assert np.array_equal(ids_w, ids_m)
        for name in out_w:
            assert np.allclose(out_w[name].astype(float),
                               out_m[name].astype(float))

    @settings(max_examples=60, deadline=None)
    @given(data=DATA_STRATEGY)
    def test_sparse_partition_merge(self, data):
        codes = np.array([c for c, _ in data], dtype=np.int64)
        values = np.array([v for _, v in data])
        measures = {"s": values, "a": values, "lo": values, "hi": values}
        whole = hash_aggregate(SPECS, measures, codes)
        cut = max(1, len(codes) // 3)
        left = hash_aggregate(
            SPECS, {k: v[:cut] for k, v in measures.items()}, codes[:cut])
        right = hash_aggregate(
            SPECS, {k: v[cut:] for k, v in measures.items()}, codes[cut:])
        merged = left.merge(right) if len(codes) > cut else left
        ids_w, out_w = finalize(whole)
        ids_m, out_m = finalize(merged)
        assert np.array_equal(ids_w, ids_m)
        for name in out_w:
            assert np.allclose(out_w[name].astype(float),
                               out_m[name].astype(float))

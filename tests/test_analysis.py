"""Tests for the static invariant analyzer (``astore lint``).

Per rule: a seeded positive, a clean negative, and a suppression; plus
framework behaviour (baseline round-trip, fingerprint drift stability,
holds/alias handling), the CLI surface (json, --rule, --explain,
--list-rules, --baseline), the committed CI-gate fixtures, and the
self-run asserting ``src/repro`` is clean modulo the committed
baseline.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    default_baseline_path,
    explain_rule,
    rule_ids,
    run_lint,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

RULES = (
    "lock-discipline",
    "plan-portability",
    "stamp-protocol",
    "chaos-coverage",
    "async-hygiene",
)


def lint_source(tmp_path, source, filename="mod.py", rules=None):
    (tmp_path / filename).write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, rules=rules)


def rules_of(report):
    return sorted({f.rule for f in report.new})


# -- framework ---------------------------------------------------------------


def test_rule_ids_match_the_documented_set():
    assert tuple(rule_ids()) == RULES


def test_explain_rule_api():
    text = explain_rule("stamp-protocol")
    assert "mutation_count" in text
    assert explain_rule("no-such-rule") is None


def test_unknown_rule_is_an_error(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(root=tmp_path, rules=["no-such-rule"])


def test_clean_tree_is_clean(tmp_path):
    report = lint_source(tmp_path, "x = 1\n")
    assert report.ok and not report.findings


def test_wildcard_suppression(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import time

        async def handler():
            time.sleep(1)  # astore: ignore[*]
        """,
    )
    assert report.ok
    assert report.suppressed == 1


def test_baseline_round_trip(tmp_path):
    source = """
    import time

    async def handler():
        time.sleep(1)
    """
    report = lint_source(tmp_path, source)
    assert len(report.new) == 1
    baseline_file = tmp_path / "baseline.json"
    Baseline.save(baseline_file, report.findings)

    again = run_lint(root=tmp_path, baseline_path=baseline_file)
    assert again.ok
    assert len(again.baselined) == 1

    # a second, new violation is NOT absolved by the old baseline
    (tmp_path / "other.py").write_text(
        "import time\n\n\nasync def g():\n    time.sleep(2)\n",
    )
    worse = run_lint(root=tmp_path, baseline_path=baseline_file)
    assert not worse.ok
    assert len(worse.new) == 1 and len(worse.baselined) == 1


def test_fingerprint_survives_line_drift(tmp_path):
    source = "import time\n\n\nasync def handler():\n    time.sleep(1)\n"
    (tmp_path / "mod.py").write_text(source)
    report = run_lint(root=tmp_path)
    baseline_file = tmp_path / "baseline.json"
    Baseline.save(baseline_file, report.findings)

    # insert unrelated lines above: line number moves, fingerprint stays
    (tmp_path / "mod.py").write_text("# a comment\nX = 1\n" + source)
    drifted = run_lint(root=tmp_path, baseline_path=baseline_file)
    assert drifted.ok
    assert drifted.baselined[0].line != report.findings[0].line


def test_baseline_multiplicity_is_consumed(tmp_path):
    # two identical violations on identical lines share a fingerprint;
    # a baseline carrying it once absolves only one of them
    source = """
    import time

    async def a():
        time.sleep(1)

    async def b():
        time.sleep(1)
    """
    report = lint_source(tmp_path, source)
    assert len(report.new) == 2
    fp = {f.fingerprint for f in report.new}
    assert len(fp) == 2  # symbol differs -> distinct fingerprints
    baseline_file = tmp_path / "baseline.json"
    Baseline.save(baseline_file, report.findings[:1])
    partial = run_lint(root=tmp_path, baseline_path=baseline_file)
    assert len(partial.new) == 1 and len(partial.baselined) == 1


# -- lock-discipline ---------------------------------------------------------


LOCK_PREAMBLE = textwrap.dedent(
    """
    import threading

    _STATE = {}
    _LOCK = threading.Lock()

    GUARDED_BY = {"_STATE": "_LOCK", "Box._items": "self._lock"}
    """
)


def lock_mod(body):
    return LOCK_PREAMBLE + textwrap.dedent(body)


def test_lock_discipline_flags_unguarded_global(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        def bad(key):
            if key in _STATE:
                return _STATE[key]
        """
        ),
        rules=["lock-discipline"],
    )
    assert len(report.new) == 2
    assert "check-then-act" in report.new[0].message


def test_lock_discipline_accepts_with_block_and_alias(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        def good(key):
            with _LOCK:
                return _STATE.get(key)

        def aliased(key):
            lock = _LOCK
            with lock:
                return _STATE.get(key)
        """
        ),
        rules=["lock-discipline"],
    )
    assert report.ok


def test_lock_discipline_holds_annotation(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        def helper(key):  # astore: holds[_LOCK]
            return _STATE.get(key)
        """
        ),
        rules=["lock-discipline"],
    )
    assert report.ok


def test_lock_discipline_instance_attrs_and_init_exemption(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []          # construction: exempt

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def bad_len(self):
                return len(self._items)   # unguarded
        """
        ),
        rules=["lock-discipline"],
    )
    assert len(report.new) == 1
    assert report.new[0].symbol == "self._items"


def test_lock_discipline_outer_with_does_not_leak_into_closure(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        def outer():
            with _LOCK:
                def later():
                    return _STATE.get("k")   # runs after the with exits
                return later
        """
        ),
        rules=["lock-discipline"],
    )
    assert len(report.new) == 1


def test_lock_discipline_suppression(tmp_path):
    report = lint_source(
        tmp_path,
        lock_mod(
            """
        def stats_only():
            return len(_STATE)  # astore: ignore[lock-discipline]
        """
        ),
        rules=["lock-discipline"],
    )
    assert report.ok and report.suppressed == 1


# -- plan-portability --------------------------------------------------------


def test_portability_flags_bad_annotation_and_lambda(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from typing import Callable


        class Runtime:
            pass


        class Spec:
            __portable__ = True

            hook: Callable[[int], int]
            runtime: "Runtime"

            def bind(self):
                self.fn = lambda x: x
        """,
        rules=["plan-portability"],
    )
    messages = " | ".join(f.message for f in report.new)
    assert len(report.new) == 3
    assert "Callable" in messages and "Runtime" in messages and "lambda" in messages


def test_portability_ignores_unmarked_classes_and_getstate_popped(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from typing import Callable


        class NotPortable:
            hook: Callable[[int], int]   # fine: never pickled by contract


        class Spec:
            __portable__ = True

            name: str

            def attach(self):
                self._runtime = lambda x: x   # popped below: exempt

            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("_runtime", None)
                return state
        """,
        rules=["plan-portability"],
    )
    assert report.ok


def test_portability_marked_portable_reference_is_accepted(tmp_path):
    report = lint_source(
        tmp_path,
        """
        class Leaf:
            __portable__ = True

            name: str


        class Spec:
            __portable__ = True

            leaf: Leaf
        """,
        rules=["plan-portability"],
    )
    assert report.ok


# -- stamp-protocol ----------------------------------------------------------


def test_stamp_flags_foreign_buffer_write(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def evil(table):
            table._deleted[3] = True
        """,
        rules=["stamp-protocol"],
    )
    assert len(report.new) == 1
    assert "_deleted" in report.new[0].message


def test_stamp_entry_point_must_bump(tmp_path):
    report = lint_source(
        tmp_path,
        """
        class T:
            def truncate(self):
                self._nrows = 0

            def delete(self, pos):
                self._deleted[pos] = True
                self._mutation_count += 1

            def _grow(self):
                self._nrows += 16   # private helper: exempt
        """,
        filename="table.py",
        rules=["stamp-protocol"],
    )
    assert len(report.new) == 1
    assert report.new[0].symbol == "truncate"


def test_stamp_classmethod_constructor_exempt(tmp_path):
    report = lint_source(
        tmp_path,
        """
        class T:
            @classmethod
            def from_arrays(cls, n):
                t = cls()
                t._nrows = n
                return t
        """,
        filename="table.py",
        rules=["stamp-protocol"],
    )
    assert report.ok


def test_stamp_suppression(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def load(table, buf):
            table._deleted = buf  # astore: ignore[stamp-protocol]
        """,
        rules=["stamp-protocol"],
    )
    assert report.ok and report.suppressed == 1


# -- chaos-coverage ----------------------------------------------------------


def test_chaos_flags_uncovered_raw_io(tmp_path):
    report = lint_source(
        tmp_path,
        """
        CHAOS_SCOPE = True


        def read_reply(sock):
            return sock.recv(4096)
        """,
        rules=["chaos-coverage"],
    )
    assert len(report.new) == 1


def test_chaos_scope_opt_out_by_default(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def read_reply(sock):
            return sock.recv(4096)
        """,
        rules=["chaos-coverage"],
    )
    assert report.ok  # not a network module, no CHAOS_SCOPE


def test_chaos_own_site_covers(tmp_path):
    report = lint_source(
        tmp_path,
        """
        CHAOS_SCOPE = True


        def chaos_point(site, payload=None):
            pass


        def read_reply(sock):
            chaos_point("node.recv")
            return sock.recv(4096)
        """,
        rules=["chaos-coverage"],
    )
    # chaos_point itself has no raw ops; read_reply is covered
    assert report.ok


def test_chaos_caller_coverage_propagates(tmp_path):
    report = lint_source(
        tmp_path,
        """
        CHAOS_SCOPE = True


        def chaos_point(site, payload=None):
            pass


        def _recv_exact(sock, n):
            return sock.recv(n)      # covered: only caller has a site


        def recv_frame(sock):
            chaos_point("coordinator.recv")
            return _recv_exact(sock, 4)
        """,
        rules=["chaos-coverage"],
    )
    assert report.ok


def test_chaos_siteless_frame_helper_call_does_not_cover(tmp_path):
    source = """
        import socket

        CHAOS_SCOPE = True


        def chaos_point(site, payload=None):
            pass


        def send_frame(sock, message, site=None):
            if site:
                chaos_point(site)
            sock.sendall(message)


        def sited(address, message):
            with socket.create_connection(address) as sock:
                send_frame(sock, message, site="coordinator.send")


        def siteless(address, message):
            with socket.create_connection(address) as sock:
                send_frame(sock, message)
    """
    report = lint_source(tmp_path, source, rules=["chaos-coverage"])
    # `sited` passes a site -> its create_connection is covered;
    # `siteless` calls the helper without one -> flagged
    assert len(report.new) == 1
    assert report.new[0].symbol == "siteless"


def test_chaos_suppression(tmp_path):
    report = lint_source(
        tmp_path,
        """
        CHAOS_SCOPE = True


        def teardown(pipe):
            return pipe.recv()  # astore: ignore[chaos-coverage]
        """,
        rules=["chaos-coverage"],
    )
    assert report.ok and report.suppressed == 1


# -- async-hygiene -----------------------------------------------------------


def test_async_flags_blocking_calls(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import subprocess
        import time


        async def handler(sock):
            time.sleep(1)
            subprocess.run(["true"])
            sock.recv(16)
        """,
        rules=["async-hygiene"],
    )
    assert len(report.new) == 3


def test_async_accepts_asyncio_and_nested_sync_defs(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import asyncio
        import time


        async def handler():
            await asyncio.sleep(1)

            def blocking_helper():
                time.sleep(1)   # runs in an executor, not the loop

            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, blocking_helper)


        def plain():
            time.sleep(1)       # sync code may block freely
        """,
        rules=["async-hygiene"],
    )
    assert report.ok


def test_async_suppression(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import time


        async def warmup():
            time.sleep(0)  # astore: ignore[async-hygiene]
        """,
        rules=["async-hygiene"],
    )
    assert report.ok and report.suppressed == 1


# -- committed CI-gate fixtures ----------------------------------------------


def test_seeded_fixtures_trip_every_rule():
    report = run_lint(root=FIXTURES)
    assert not report.ok
    assert set(rules_of(report)) == set(RULES)


# -- the self-run: src/repro is clean ----------------------------------------


def test_src_repro_is_clean_modulo_baseline():
    report = run_lint()
    detail = "\n".join(f"{f.anchor()}: [{f.rule}] {f.message}" for f in report.new)
    assert report.ok, f"new lint findings in src/repro:\n{detail}"
    assert report.files > 50  # really scanned the package


def test_committed_baseline_is_empty():
    # the strongest statement the repo can make: every violation the
    # analyzer surfaced was fixed or given a reasoned suppression
    assert len(Baseline.load(default_baseline_path())) == 0


# -- CLI ---------------------------------------------------------------------


def test_cli_lint_json_on_violations(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\n\nasync def f():\n    time.sleep(1)\n",
    )
    code = main(["lint", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts"]["new"] == 1
    assert payload["new"][0]["rule"] == "async-hygiene"
    assert payload["new"][0]["fingerprint"]


def test_cli_lint_rule_filter_and_text_output(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\n\nasync def f():\n    time.sleep(1)\n",
    )
    code = main(["lint", str(tmp_path), "--rule", "lock-discipline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_lint_explain_every_rule(capsys):
    for rule in RULES:
        assert main(["lint", "--explain", rule]) == 0
        out = capsys.readouterr().out
        assert rule in out
        assert "Violation:" in out and "Fix:" in out
        assert f"ignore[{rule}]" in out


def test_cli_lint_explain_unknown_rule(capsys):
    assert main(["lint", "--explain", "nope"]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out.split()
    assert out == list(RULES)


def test_cli_lint_baseline_write_and_reconcile(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\n\nasync def f():\n    time.sleep(1)\n",
    )
    baseline_file = tmp_path / "baseline.json"
    assert (
        main(
            [
                "lint",
                str(tmp_path),
                "--baseline",
                "--baseline-file",
                str(baseline_file),
            ],
        )
        == 0
    )
    assert "baseline written" in capsys.readouterr().out
    assert (
        main(["lint", str(tmp_path), "--baseline-file", str(baseline_file)]) == 0
    )
    out = capsys.readouterr().out
    assert "1 baselined" in out

"""Tests for the baseline engines beyond cross-engine agreement."""

import numpy as np
import pytest

from repro.baselines import (
    DenormalizedEngine,
    FusedEngine,
    MaterializingEngine,
    VectorizedPipelineEngine,
    materialize_universal,
)
from repro.baselines.common import HashJoinProvider, build_hash_tables
from repro.datagen import generate_ssb
from repro.errors import PlanError, SchemaError
from repro.plan import bind

from .conftest import build_tiny_snowflake


def tiny_star_raw():
    """Tiny star with key-valued FKs (manual construction, no airify)."""
    from repro.core import Database

    db = Database("tiny_raw")
    db.create_table("date", {
        "d_datekey": [19970101, 19970102, 19980101],
        "d_year": [1997, 1997, 1998],
    })
    db.create_table("customer", {
        "c_custkey": [1, 2, 3, 4],
        "c_region": ["ASIA", "ASIA", "EUROPE", "AMERICA"],
    }, dict_threshold=1.0)
    db.create_table("lineorder", {
        "lo_custkey": [1, 2, 3, 4, 1, 2, 3, 4],
        "lo_orderdate": [19970101, 19970101, 19970102, 19970102,
                         19980101, 19980101, 19970101, 19980101],
        "lo_revenue": [10, 20, 30, 40, 50, 60, 70, 80],
    })
    db.add_reference("lineorder", "lo_custkey", "customer", "c_custkey")
    db.add_reference("lineorder", "lo_orderdate", "date", "d_datekey")
    return db


class TestHashJoinProvider:
    def test_resolves_dim_positions_by_probe(self):
        db = tiny_star_raw()
        logical = bind("SELECT count(*) FROM lineorder, customer", db)
        tables = build_hash_tables(db, logical)
        from repro.engine.slice import chain_map

        provider = HashJoinProvider(
            db, "lineorder", chain_map(logical.paths, "lineorder"), tables,
            np.array([0, 3]))
        # rows 0,3 have custkeys 1,4 -> customer positions 0,3
        assert provider.positions_for("customer").tolist() == [0, 3]

    def test_fetch_dim_attribute(self):
        db = tiny_star_raw()
        logical = bind("SELECT count(*) FROM lineorder, customer", db)
        tables = build_hash_tables(db, logical)
        from repro.engine.slice import chain_map

        provider = HashJoinProvider(
            db, "lineorder", chain_map(logical.paths, "lineorder"), tables,
            None)
        values = list(provider.fetch("customer", "c_region").decode())
        assert values == ["ASIA", "ASIA", "EUROPE", "AMERICA"] * 2


class TestBaselineBasics:
    @pytest.mark.parametrize("engine_cls", [
        MaterializingEngine, FusedEngine, VectorizedPipelineEngine])
    def test_simple_star_query(self, engine_cls):
        db = tiny_star_raw()
        result = engine_cls(db).query(
            "SELECT d_year, sum(lo_revenue) AS s FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year")
        assert result.rows() == [(1997, 170), (1998, 190)]

    @pytest.mark.parametrize("engine_cls", [
        MaterializingEngine, FusedEngine, VectorizedPipelineEngine])
    def test_empty_selection(self, engine_cls):
        db = tiny_star_raw()
        result = engine_cls(db).query(
            "SELECT count(*) AS n FROM lineorder WHERE lo_revenue > 9999")
        assert result.to_dicts()[0]["n"] == 0

    @pytest.mark.parametrize("engine_cls", [
        MaterializingEngine, FusedEngine, VectorizedPipelineEngine])
    def test_projection_rejected(self, engine_cls):
        db = tiny_star_raw()
        with pytest.raises(PlanError):
            engine_cls(db).query("SELECT lo_revenue FROM lineorder")

    def test_stats_populated(self):
        db = tiny_star_raw()
        result = MaterializingEngine(db).query(
            "SELECT count(*) AS n FROM lineorder, customer "
            "WHERE c_region = 'ASIA'")
        stats = result.stats
        assert stats.variant == "materializing"
        assert stats.rows_scanned == 8 and stats.rows_selected == 4
        assert stats.total_seconds > 0

    def test_deleted_rows_excluded(self):
        db = tiny_star_raw()
        db.table("lineorder").delete([0])
        n = FusedEngine(db).query(
            "SELECT count(*) AS n FROM lineorder").to_dicts()[0]["n"]
        assert n == 7

    def test_snowflake_on_baseline(self):
        db = build_tiny_snowflake()
        # baselines need key-valued FKs; rebuild without airify
        raw = _snowflake_raw()
        result = FusedEngine(raw).query("""
            SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
            FROM customer, lineitem, orders, nation, region
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey
              AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
              AND r_name = 'ASIA' AND o_price >= 800
            GROUP BY n_name ORDER BY revenue DESC
        """)
        from repro.engine import AStoreEngine

        expected = AStoreEngine(db).query("""
            SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
            FROM customer, lineitem, orders, nation, region
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey
              AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
              AND r_name = 'ASIA' AND o_price >= 800
            GROUP BY n_name ORDER BY revenue DESC
        """).rows()
        assert result.rows() == expected


def _snowflake_raw():
    from repro.core import Database

    db = Database("snow_raw")
    db.create_table("region", {
        "r_regionkey": [0, 1], "r_name": ["ASIA", "EUROPE"]},
        dict_threshold=1.0)
    db.create_table("nation", {
        "n_nationkey": [0, 1, 2],
        "n_name": ["CHINA", "FRANCE", "JAPAN"],
        "n_regionkey": [0, 1, 0]}, dict_threshold=1.0)
    db.create_table("customer", {
        "c_custkey": [7, 8, 9], "c_nationkey": [0, 1, 2]})
    db.create_table("orders", {
        "o_orderkey": [70, 71, 72, 73],
        "o_custkey": [7, 8, 9, 7],
        "o_price": [100, 900, 850, 500]})
    db.create_table("lineitem", {
        "l_orderkey": [70, 70, 71, 72, 73, 73],
        "l_extendedprice": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        "l_discount": [0.0, 0.5, 0.1, 0.0, 0.2, 0.5]})
    db.add_reference("nation", "n_regionkey", "region", "r_regionkey")
    db.add_reference("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_reference("orders", "o_custkey", "customer", "c_custkey")
    db.add_reference("lineitem", "l_orderkey", "orders", "o_orderkey")
    return db


class TestDenormalized:
    def test_footprint_exceeds_source(self):
        db = generate_ssb(sf=0.002, seed=5)
        engine = DenormalizedEngine(db)
        assert engine.nbytes > db.nbytes

    def test_multi_root_rejected(self):
        from repro.core import Database

        db = Database("two_roots")
        db.create_table("a", {"x": [1]})
        db.create_table("b", {"y": [1]})
        with pytest.raises(SchemaError):
            materialize_universal(db)

    def test_name_collisions_prefixed(self):
        from repro.core import Database

        db = Database("clash")
        db.create_table("dim", {"k": [0, 1], "value": [10, 20]})
        db.create_table("fact", {"fk": [0, 1, 1], "value": [1, 2, 3]})
        db.add_reference("fact", "fk", "dim", "k")
        db.airify()
        wide = materialize_universal(db)
        universal = wide.table("universal")
        assert "value" in universal and "dim_value" in universal
        assert universal["dim_value"].values().tolist() == [10, 20, 20]
